"""Serialization of taxonomies.

Two formats are supported:

* a JSON document (lossless round trip, used by the test fixtures), and
* a TSV edge list (``child_id, child_name, parent_id``) matching the way
  the real taxonomy dumps (Glottolog languoid table, NCBI ``nodes.dmp``)
  are distributed, so the synthetic generators can be swapped for the
  originals without touching downstream code.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TaxonomyError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy

_FORMAT_VERSION = 1


def taxonomy_to_dict(taxonomy: Taxonomy) -> dict:
    """Serialize to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": taxonomy.name,
        "domain": taxonomy.domain.value,
        "concept_noun": taxonomy.concept_noun,
        "nodes": [
            {
                "id": node.node_id,
                "name": node.name,
                "parent": node.parent_id,
            }
            for node in taxonomy
        ],
    }


def taxonomy_from_dict(payload: dict, validate: bool = True) -> Taxonomy:
    """Rebuild a taxonomy from :func:`taxonomy_to_dict` output."""
    try:
        name = payload["name"]
        domain = Domain(payload["domain"])
        raw_nodes = payload["nodes"]
    except (KeyError, ValueError) as exc:
        raise TaxonomyError(f"malformed taxonomy payload: {exc}") from exc

    nodes: dict[str, TaxonomyNode] = {}
    for raw in raw_nodes:
        nodes[raw["id"]] = TaxonomyNode(
            node_id=raw["id"], name=raw["name"], level=0,
            parent_id=raw.get("parent"))
    for node in nodes.values():
        if node.parent_id is not None:
            if node.parent_id not in nodes:
                raise TaxonomyError(
                    f"node {node.node_id}: dangling parent "
                    f"{node.parent_id}")
            nodes[node.parent_id].children_ids.append(node.node_id)
    _assign_levels(nodes)

    taxonomy = Taxonomy(name, domain, nodes,
                        concept_noun=payload.get("concept_noun", "concept"))
    if validate:
        validate_taxonomy(taxonomy)
    return taxonomy


def _assign_levels(nodes: dict[str, TaxonomyNode]) -> None:
    """Set node levels from parent chains (iterative, cycle-safe)."""
    for node in nodes.values():
        chain = []
        current = node
        while current.parent_id is not None:
            chain.append(current)
            current = nodes[current.parent_id]
            if len(chain) > len(nodes):
                raise TaxonomyError("cycle detected while assigning levels")
        depth = 0
        for member in reversed(chain):
            depth += 1
            member.level = depth


def save_json(taxonomy: Taxonomy, path: str | Path) -> None:
    """Write the taxonomy to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(taxonomy_to_dict(taxonomy), indent=1), encoding="utf-8")


def load_json(path: str | Path) -> Taxonomy:
    """Load a taxonomy previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return taxonomy_from_dict(payload)


def save_edge_tsv(taxonomy: Taxonomy, path: str | Path) -> None:
    """Write a ``child_id<TAB>child_name<TAB>parent_id`` edge list.

    Roots appear with an empty parent column.
    """
    lines = [f"{n.node_id}\t{n.name}\t{n.parent_id or ''}"
             for n in taxonomy]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_edge_tsv(path: str | Path, name: str, domain: Domain,
                  concept_noun: str = "concept") -> Taxonomy:
    """Load an edge-list TSV (the real-dump interchange format)."""
    nodes: dict[str, TaxonomyNode] = {}
    for line_no, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise TaxonomyError(
                f"{path}:{line_no}: expected 3 tab-separated fields")
        node_id, node_name, parent_id = parts
        nodes[node_id] = TaxonomyNode(
            node_id=node_id, name=node_name, level=0,
            parent_id=parent_id or None)
    for node in nodes.values():
        if node.parent_id is not None:
            if node.parent_id not in nodes:
                raise TaxonomyError(
                    f"node {node.node_id}: dangling parent "
                    f"{node.parent_id}")
            nodes[node.parent_id].children_ids.append(node.node_id)
    _assign_levels(nodes)
    taxonomy = Taxonomy(name, domain, nodes, concept_noun=concept_noun)
    validate_taxonomy(taxonomy)
    return taxonomy
