"""Taxonomy node model.

A taxonomy is a forest of named nodes linked by hypernymy ("Is-A")
edges.  Nodes are plain records; all graph navigation lives on
:class:`repro.taxonomy.taxonomy.Taxonomy` which owns the id -> node map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Domain(str, Enum):
    """Application domain of a taxonomy (paper Section 2.1)."""

    SHOPPING = "shopping"
    GENERAL = "general"
    COMPUTER_SCIENCE = "computer-science"
    GEOGRAPHY = "geography"
    LANGUAGE = "language"
    HEALTH = "health"
    MEDICAL = "medical"
    BIOLOGY = "biology"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class TaxonomyNode:
    """A single concept in a taxonomy.

    Attributes:
        node_id: Unique identifier within the taxonomy.
        name: Human-readable concept name (what question templates use).
        level: Depth of the node; roots are level 0.
        parent_id: Id of the hypernym, or ``None`` for roots.
        children_ids: Ids of direct hyponyms, in insertion order.
    """

    node_id: str
    name: str
    level: int
    parent_id: str | None = None
    children_ids: list[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    @property
    def is_leaf(self) -> bool:
        return not self.children_ids
