"""Structural validation of taxonomies.

A valid taxonomy is a forest: every non-root node has exactly one parent
that points back at it, levels equal the distance from the root, there
are no cycles, and names are non-empty.  ``validate_taxonomy`` collects
*all* problems before raising so data bugs surface in one pass.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.taxonomy.taxonomy import Taxonomy


def collect_problems(taxonomy: Taxonomy) -> list[str]:
    """Return a (possibly empty) list of structural problems."""
    problems: list[str] = []
    seen_child_links: set[str] = set()

    for node in taxonomy:
        if not node.name or not node.name.strip():
            problems.append(f"node {node.node_id}: empty name")

        if node.parent_id is None:
            if node.level != 0:
                problems.append(
                    f"node {node.node_id}: root with level {node.level}")
        else:
            if node.parent_id not in taxonomy:
                problems.append(
                    f"node {node.node_id}: dangling parent "
                    f"{node.parent_id}")
                continue
            parent = taxonomy.node(node.parent_id)
            if node.node_id not in parent.children_ids:
                problems.append(
                    f"node {node.node_id}: parent {parent.node_id} does "
                    f"not list it as a child")
            if node.level != parent.level + 1:
                problems.append(
                    f"node {node.node_id}: level {node.level} but parent "
                    f"level {parent.level}")

        for child_id in node.children_ids:
            if child_id in seen_child_links:
                problems.append(
                    f"node {child_id}: linked as a child more than once")
            seen_child_links.add(child_id)
            if child_id not in taxonomy:
                problems.append(
                    f"node {node.node_id}: dangling child {child_id}")
            elif taxonomy.node(child_id).parent_id != node.node_id:
                problems.append(
                    f"node {node.node_id}: child {child_id} points at a "
                    f"different parent")

    problems.extend(_cycle_problems(taxonomy))
    return problems


def _cycle_problems(taxonomy: Taxonomy) -> list[str]:
    """Detect parent chains that never reach a root."""
    status: dict[str, int] = {}  # 0 = in progress, 1 = safe
    problems: list[str] = []
    for node in taxonomy:
        path = []
        current: str | None = node.node_id
        while current is not None and current not in status:
            status[current] = 0
            path.append(current)
            parent = taxonomy.node(current).parent_id
            if parent is not None and parent not in taxonomy:
                parent = None  # dangling parents are reported elsewhere
            elif parent is not None and status.get(parent) == 0:
                problems.append(f"cycle through node {parent}")
                parent = None
            current = parent
        for visited in path:
            status[visited] = 1
    return problems


def validate_taxonomy(taxonomy: Taxonomy) -> None:
    """Raise :class:`ValidationError` when the taxonomy is malformed."""
    problems = collect_problems(taxonomy)
    if problems:
        raise ValidationError(problems)
