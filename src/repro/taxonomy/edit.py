"""Taxonomy editing with maintenance-cost accounting.

The paper's economic argument rests on "construction and maintenance
cost" being proportional to the number of curated nodes.  This module
provides the curation operations a taxonomy team performs — add,
rename, move, prune — on a mutable editor over a :class:`Taxonomy`,
and counts touched nodes so replacement savings (Section 5.3's 59%)
can be grounded in an operation log rather than a node-count ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TaxonomyError
from repro.taxonomy.node import TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy


@dataclass(frozen=True, slots=True)
class EditRecord:
    """One applied curation operation."""

    operation: str          # "add" | "rename" | "move" | "prune"
    node_id: str
    touched_nodes: int      # curation effort in node-touches


@dataclass(slots=True)
class MaintenanceLog:
    """Accumulated curation effort."""

    records: list[EditRecord] = field(default_factory=list)

    @property
    def total_touched(self) -> int:
        return sum(record.touched_nodes for record in self.records)

    def count(self, operation: str) -> int:
        return sum(1 for record in self.records
                   if record.operation == operation)


class TaxonomyEditor:
    """Mutable curation session over a taxonomy.

    All operations keep the forest valid (checked on ``commit``) and
    append to a :class:`MaintenanceLog`.  Moving or pruning a node
    touches its whole subtree — that is what makes deep, bushy levels
    expensive to maintain and motivates replacing them with an LLM.
    """

    def __init__(self, taxonomy: Taxonomy):
        self._base = taxonomy
        self._nodes: dict[str, TaxonomyNode] = {
            node.node_id: TaxonomyNode(
                node_id=node.node_id, name=node.name, level=node.level,
                parent_id=node.parent_id,
                children_ids=list(node.children_ids))
            for node in taxonomy
        }
        self._counter = len(self._nodes)
        self.log = MaintenanceLog()

    # ------------------------------------------------------------------
    def _require(self, node_id: str) -> TaxonomyNode:
        if node_id not in self._nodes:
            raise TaxonomyError(f"unknown node: {node_id!r}")
        return self._nodes[node_id]

    def _subtree_ids(self, node_id: str) -> list[str]:
        ids = [node_id]
        index = 0
        while index < len(ids):
            ids.extend(self._nodes[ids[index]].children_ids)
            index += 1
        return ids

    # ------------------------------------------------------------------
    def add(self, parent_id: str | None, name: str) -> str:
        """Add a concept (as a root when ``parent_id`` is None)."""
        if not name or not name.strip():
            raise TaxonomyError("node name must be non-empty")
        level = 0
        if parent_id is not None:
            level = self._require(parent_id).level + 1
        node_id = f"e{self._counter}"
        self._counter += 1
        self._nodes[node_id] = TaxonomyNode(
            node_id=node_id, name=name.strip(), level=level,
            parent_id=parent_id)
        if parent_id is not None:
            self._nodes[parent_id].children_ids.append(node_id)
        self.log.records.append(EditRecord("add", node_id, 1))
        return node_id

    def rename(self, node_id: str, name: str) -> None:
        """Rename a concept (touches just that node)."""
        if not name or not name.strip():
            raise TaxonomyError("node name must be non-empty")
        node = self._require(node_id)
        self._nodes[node_id] = TaxonomyNode(
            node_id=node.node_id, name=name.strip(), level=node.level,
            parent_id=node.parent_id, children_ids=node.children_ids)
        self.log.records.append(EditRecord("rename", node_id, 1))

    def move(self, node_id: str, new_parent_id: str) -> None:
        """Re-parent a subtree (touches every node in it)."""
        node = self._require(node_id)
        new_parent = self._require(new_parent_id)
        if node_id in self._subtree_ids(node_id)[0:] \
                and new_parent_id in self._subtree_ids(node_id):
            raise TaxonomyError("cannot move a node under itself")
        if node.parent_id is None:
            raise TaxonomyError("cannot move a root; prune and re-add")
        self._nodes[node.parent_id].children_ids.remove(node_id)
        new_parent.children_ids.append(node_id)
        node.parent_id = new_parent_id
        subtree = self._subtree_ids(node_id)
        shift = new_parent.level + 1 - node.level
        for member_id in subtree:
            self._nodes[member_id].level += shift
        self.log.records.append(
            EditRecord("move", node_id, len(subtree)))

    def prune(self, node_id: str) -> int:
        """Remove a subtree; returns the number of removed nodes."""
        node = self._require(node_id)
        subtree = self._subtree_ids(node_id)
        if node.parent_id is not None:
            self._nodes[node.parent_id].children_ids.remove(node_id)
        for member_id in subtree:
            del self._nodes[member_id]
        self.log.records.append(
            EditRecord("prune", node_id, len(subtree)))
        return len(subtree)

    def prune_below(self, cut_level: int) -> int:
        """Remove everything deeper than ``cut_level`` (Section 5.3)."""
        victims = [node_id for node_id, node in self._nodes.items()
                   if node.level == cut_level + 1]
        removed = 0
        for node_id in victims:
            removed += self.prune(node_id)
        return removed

    # ------------------------------------------------------------------
    def commit(self) -> Taxonomy:
        """Produce a validated taxonomy with the edits applied."""
        if not self._nodes:
            raise TaxonomyError("cannot commit an empty taxonomy")
        taxonomy = Taxonomy(self._base.name, self._base.domain,
                            {node_id: node for node_id, node
                             in self._nodes.items()},
                            concept_noun=self._base.concept_noun)
        validate_taxonomy(taxonomy)
        return taxonomy
