"""Incremental construction of validated taxonomies."""

from __future__ import annotations

from repro.errors import TaxonomyError, UnknownNodeError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy


class TaxonomyBuilder:
    """Builds a :class:`Taxonomy` one node at a time.

    Node ids are assigned automatically (``n0``, ``n1``, ...) unless an
    explicit id is supplied, which loaders of real dumps use to keep the
    source identifiers (e.g. Glottocodes, NCBI taxids).

    Example:
        >>> builder = TaxonomyBuilder("toy", Domain.GENERAL)
        >>> thing = builder.add_root("Thing")
        >>> builder.add_child(thing, "Animal")
        'n1'
        >>> taxonomy = builder.build()
        >>> taxonomy.num_levels
        2
    """

    def __init__(self, name: str, domain: Domain,
                 concept_noun: str = "concept"):
        self.name = name
        self.domain = domain
        self.concept_noun = concept_noun
        self._nodes: dict[str, TaxonomyNode] = {}
        self._counter = 0

    def _next_id(self) -> str:
        node_id = f"n{self._counter}"
        self._counter += 1
        return node_id

    def add_root(self, name: str, node_id: str | None = None) -> str:
        """Add a level-0 node and return its id."""
        return self._add(name, parent_id=None, node_id=node_id)

    def add_child(self, parent_id: str, name: str,
                  node_id: str | None = None) -> str:
        """Add a child under ``parent_id`` and return its id."""
        if parent_id not in self._nodes:
            raise UnknownNodeError(parent_id)
        return self._add(name, parent_id=parent_id, node_id=node_id)

    def add_path(self, names: list[str]) -> list[str]:
        """Add a root-to-leaf chain, reusing existing nodes by name.

        Convenient for loading path-per-line dumps such as the Google
        Product Category file ("A > B > C").  Returns the node ids along
        the path.
        """
        if not names:
            raise TaxonomyError("add_path requires at least one name")
        path_ids: list[str] = []
        parent_id: str | None = None
        for level, name in enumerate(names):
            existing = self._find(name, parent_id, level)
            if existing is None:
                if parent_id is None:
                    existing = self.add_root(name)
                else:
                    existing = self.add_child(parent_id, name)
            path_ids.append(existing)
            parent_id = existing
        return path_ids

    def _find(self, name: str, parent_id: str | None,
              level: int) -> str | None:
        if parent_id is None:
            pool = (n for n in self._nodes.values() if n.is_root)
        else:
            pool = (self._nodes[c]
                    for c in self._nodes[parent_id].children_ids)
        for node in pool:
            if node.name == name and node.level == level:
                return node.node_id
        return None

    def _add(self, name: str, parent_id: str | None,
             node_id: str | None) -> str:
        if not name or not name.strip():
            raise TaxonomyError("node name must be non-empty")
        if node_id is None:
            node_id = self._next_id()
        if node_id in self._nodes:
            raise TaxonomyError(f"duplicate node id: {node_id!r}")
        level = 0
        if parent_id is not None:
            level = self._nodes[parent_id].level + 1
        node = TaxonomyNode(node_id=node_id, name=name.strip(), level=level,
                            parent_id=parent_id)
        self._nodes[node_id] = node
        if parent_id is not None:
            self._nodes[parent_id].children_ids.append(node_id)
        return node_id

    def __len__(self) -> int:
        return len(self._nodes)

    def build(self, validate: bool = True) -> Taxonomy:
        """Finalize into a :class:`Taxonomy`; validates by default."""
        if not self._nodes:
            raise TaxonomyError("cannot build an empty taxonomy")
        taxonomy = Taxonomy(self.name, self.domain, dict(self._nodes),
                            concept_noun=self.concept_noun)
        if validate:
            validate_taxonomy(taxonomy)
        return taxonomy
