"""The Taxonomy container: a validated forest of Is-A edges.

The class exposes exactly the navigation the paper's question design
needs (Section 2.2):

* ``parent(child)`` for **positive** questions,
* ``nodes_at_level(parent_level)`` minus the parent for **negative-easy**,
* ``uncles(child)`` (siblings of the parent) for **negative-hard** and
  MCQ distractors,
* ``ancestors(node)`` for instance typing (Section 4.5).

Navigation is index-backed: per-level node arrays and level positions
are precomputed at construction, and sibling/uncle/ancestor/root
lookups are memoized the first time they are computed, so the question
generators' hot loops (which call ``nodes_at_level`` and ``uncles``
once per sampled child) cost O(1) per call instead of rebuilding
level-width lists — the difference between linear and quadratic dataset
builds on 20k-wide NCBI levels.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import TaxonomyError, UnknownNodeError
from repro.taxonomy.node import Domain, TaxonomyNode

_EMPTY_LEVEL: tuple[TaxonomyNode, ...] = ()


class Taxonomy:
    """An immutable-by-convention forest of :class:`TaxonomyNode`.

    Build instances through :class:`repro.taxonomy.builder.TaxonomyBuilder`
    (which validates) or :func:`repro.taxonomy.io.taxonomy_from_dict`.
    Navigation results are cached; mutate nodes only by building a new
    taxonomy (see :class:`repro.taxonomy.edit.TaxonomyEditor`).
    """

    def __init__(self, name: str, domain: Domain,
                 nodes: dict[str, TaxonomyNode],
                 concept_noun: str = "concept"):
        if not name:
            raise TaxonomyError("taxonomy name must be non-empty")
        self.name = name
        self.domain = domain
        #: Noun used by question templates, e.g. "products" for shopping.
        self.concept_noun = concept_noun
        self._nodes = nodes
        self._roots = [n.node_id for n in nodes.values() if n.is_root]
        # Index tables (the generators' hot paths): per-level node
        # arrays and each node's position inside its level array.
        level_lists: dict[int, list[TaxonomyNode]] = {}
        positions: dict[str, int] = {}
        for node in nodes.values():
            bucket = level_lists.setdefault(node.level, [])
            positions[node.node_id] = len(bucket)
            bucket.append(node)
        self._level_nodes: dict[int, tuple[TaxonomyNode, ...]] = {
            level: tuple(bucket) for level, bucket in level_lists.items()}
        self._positions = positions
        # Memoized relation tables, filled on first use so that cheap
        # construction (e.g. warm artifact loads) pays nothing up front.
        self._sibling_cache: dict[str, tuple[TaxonomyNode, ...]] = {}
        self._ancestor_cache: dict[str, tuple[TaxonomyNode, ...]] = {}
        self._root_cache: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[TaxonomyNode]:
        return iter(self._nodes.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Taxonomy({self.name!r}, domain={self.domain.value}, "
                f"entities={len(self)}, levels={self.num_levels}, "
                f"trees={self.num_trees})")

    def node(self, node_id: str) -> TaxonomyNode:
        """Return the node for ``node_id`` or raise UnknownNodeError."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def node_ids(self) -> Iterable[str]:
        return self._nodes.keys()

    @property
    def roots(self) -> list[TaxonomyNode]:
        return [self._nodes[i] for i in self._roots]

    @property
    def num_trees(self) -> int:
        return len(self._roots)

    @property
    def num_levels(self) -> int:
        """Number of levels including the root level (Table 1 convention)."""
        return max(self._level_nodes) + 1 if self._level_nodes else 0

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def parent(self, node_id: str) -> TaxonomyNode | None:
        """Return the direct hypernym, or None for roots."""
        node = self.node(node_id)
        if node.parent_id is None:
            return None
        return self._nodes[node.parent_id]

    def children(self, node_id: str) -> list[TaxonomyNode]:
        """Return the direct hyponyms of ``node_id``."""
        node = self.node(node_id)
        return [self._nodes[c] for c in node.children_ids]

    def siblings(self, node_id: str) -> tuple[TaxonomyNode, ...]:
        """Nodes that share the node's parent (other roots for a root).

        Computed once per node, then served from the index table.
        """
        cached = self._sibling_cache.get(node_id)
        if cached is None:
            node = self.node(node_id)
            pool = (self._roots if node.parent_id is None
                    else self._nodes[node.parent_id].children_ids)
            cached = tuple(self._nodes[i] for i in pool if i != node_id)
            self._sibling_cache[node_id] = cached
        return cached

    def uncles(self, node_id: str) -> tuple[TaxonomyNode, ...]:
        """Siblings of the node's parent (paper notation ``(e_n.p).s``).

        These are the hard-negative candidates: same level as the true
        parent and close to it in the tree.  O(1) after the parent's
        sibling tuple is first built.
        """
        node = self.node(node_id)
        if node.parent_id is None:
            return _EMPTY_LEVEL
        return self.siblings(node.parent_id)

    def ancestors(self, node_id: str) -> tuple[TaxonomyNode, ...]:
        """Ancestors from direct parent up to (and including) the root."""
        cached = self._ancestor_cache.get(node_id)
        if cached is None:
            nodes = self._nodes
            chain = []
            parent_id = self.node(node_id).parent_id
            while parent_id is not None:
                current = nodes[parent_id]
                chain.append(current)
                parent_id = current.parent_id
            cached = tuple(chain)
            self._ancestor_cache[node_id] = cached
        return cached

    def root_of(self, node_id: str) -> TaxonomyNode:
        """The root of the tree containing ``node_id``."""
        cached = self._root_cache.get(node_id)
        if cached is None:
            node = self.node(node_id)
            while node.parent_id is not None:
                node = self._nodes[node.parent_id]
            cached = node.node_id
            self._root_cache[node_id] = cached
        return self._nodes[cached]

    def nodes_at_level(self, level: int) -> tuple[TaxonomyNode, ...]:
        """All nodes at ``level`` (0 = roots); empty when absent.

        Returns the precomputed level array — no per-call rebuild.
        """
        return self._level_nodes.get(level, _EMPTY_LEVEL)

    def position_in_level(self, node_id: str) -> int:
        """Index of the node inside :meth:`nodes_at_level` of its level.

        Lets samplers draw "any node at this level except X" with a
        single bounded RNG draw instead of a rejection loop.
        """
        try:
            return self._positions[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def level_width(self, level: int) -> int:
        return len(self._level_nodes.get(level, _EMPTY_LEVEL))

    def level_widths(self) -> list[int]:
        """Per-level node counts, root level first (Table 1 column)."""
        return [self.level_width(level) for level in range(self.num_levels)]

    def leaves(self) -> list[TaxonomyNode]:
        return [n for n in self._nodes.values() if n.is_leaf]

    def edges(self) -> Iterator[tuple[TaxonomyNode, TaxonomyNode]]:
        """Yield every (child, parent) Is-A edge."""
        for node in self._nodes.values():
            if node.parent_id is not None:
                yield node, self._nodes[node.parent_id]

    def descendants(self, node_id: str) -> Iterator[TaxonomyNode]:
        """Yield all strict descendants of ``node_id``, breadth-first."""
        queue = deque(self.node(node_id).children_ids)
        while queue:
            node = self._nodes[queue.popleft()]
            queue.extend(node.children_ids)
            yield node

    def is_ancestor(self, ancestor_id: str, node_id: str) -> bool:
        """True when ``ancestor_id`` lies on the path from node to root."""
        ancestor = self.node(ancestor_id)
        node = self.node(node_id)
        if ancestor.level >= node.level:
            return False
        nodes = self._nodes
        parent_id = node.parent_id
        while parent_id is not None:
            if parent_id == ancestor_id:
                return True
            parent_id = nodes[parent_id].parent_id
        return False
