"""The Taxonomy container: a validated forest of Is-A edges.

The class exposes exactly the navigation the paper's question design
needs (Section 2.2):

* ``parent(child)`` for **positive** questions,
* ``nodes_at_level(parent_level)`` minus the parent for **negative-easy**,
* ``uncles(child)`` (siblings of the parent) for **negative-hard** and
  MCQ distractors,
* ``ancestors(node)`` for instance typing (Section 4.5).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.errors import TaxonomyError, UnknownNodeError
from repro.taxonomy.node import Domain, TaxonomyNode


class Taxonomy:
    """An immutable-by-convention forest of :class:`TaxonomyNode`.

    Build instances through :class:`repro.taxonomy.builder.TaxonomyBuilder`
    (which validates) or :func:`repro.taxonomy.io.taxonomy_from_dict`.
    """

    def __init__(self, name: str, domain: Domain,
                 nodes: dict[str, TaxonomyNode],
                 concept_noun: str = "concept"):
        if not name:
            raise TaxonomyError("taxonomy name must be non-empty")
        self.name = name
        self.domain = domain
        #: Noun used by question templates, e.g. "products" for shopping.
        self.concept_noun = concept_noun
        self._nodes = nodes
        self._roots = [n.node_id for n in nodes.values() if n.is_root]
        self._levels: dict[int, list[str]] = {}
        for node in nodes.values():
            self._levels.setdefault(node.level, []).append(node.node_id)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[TaxonomyNode]:
        return iter(self._nodes.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Taxonomy({self.name!r}, domain={self.domain.value}, "
                f"entities={len(self)}, levels={self.num_levels}, "
                f"trees={self.num_trees})")

    def node(self, node_id: str) -> TaxonomyNode:
        """Return the node for ``node_id`` or raise UnknownNodeError."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def node_ids(self) -> Iterable[str]:
        return self._nodes.keys()

    @property
    def roots(self) -> list[TaxonomyNode]:
        return [self._nodes[i] for i in self._roots]

    @property
    def num_trees(self) -> int:
        return len(self._roots)

    @property
    def num_levels(self) -> int:
        """Number of levels including the root level (Table 1 convention)."""
        return max(self._levels) + 1 if self._levels else 0

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def parent(self, node_id: str) -> TaxonomyNode | None:
        """Return the direct hypernym, or None for roots."""
        node = self.node(node_id)
        if node.parent_id is None:
            return None
        return self._nodes[node.parent_id]

    def children(self, node_id: str) -> list[TaxonomyNode]:
        """Return the direct hyponyms of ``node_id``."""
        node = self.node(node_id)
        return [self._nodes[c] for c in node.children_ids]

    def siblings(self, node_id: str) -> list[TaxonomyNode]:
        """Nodes that share the node's parent (other roots for a root)."""
        node = self.node(node_id)
        if node.parent_id is None:
            pool = self._roots
        else:
            pool = self._nodes[node.parent_id].children_ids
        return [self._nodes[i] for i in pool if i != node_id]

    def uncles(self, node_id: str) -> list[TaxonomyNode]:
        """Siblings of the node's parent (paper notation ``(e_n.p).s``).

        These are the hard-negative candidates: same level as the true
        parent and close to it in the tree.
        """
        node = self.node(node_id)
        if node.parent_id is None:
            return []
        return self.siblings(node.parent_id)

    def ancestors(self, node_id: str) -> list[TaxonomyNode]:
        """Ancestors from direct parent up to (and including) the root."""
        chain = []
        current = self.parent(node_id)
        while current is not None:
            chain.append(current)
            current = self.parent(current.node_id)
        return chain

    def root_of(self, node_id: str) -> TaxonomyNode:
        """The root of the tree containing ``node_id``."""
        node = self.node(node_id)
        while node.parent_id is not None:
            node = self._nodes[node.parent_id]
        return node

    def nodes_at_level(self, level: int) -> list[TaxonomyNode]:
        """All nodes at ``level`` (0 = roots); empty list when absent."""
        return [self._nodes[i] for i in self._levels.get(level, [])]

    def level_width(self, level: int) -> int:
        return len(self._levels.get(level, []))

    def level_widths(self) -> list[int]:
        """Per-level node counts, root level first (Table 1 column)."""
        return [self.level_width(level) for level in range(self.num_levels)]

    def leaves(self) -> list[TaxonomyNode]:
        return [n for n in self._nodes.values() if n.is_leaf]

    def edges(self) -> Iterator[tuple[TaxonomyNode, TaxonomyNode]]:
        """Yield every (child, parent) Is-A edge."""
        for node in self._nodes.values():
            if node.parent_id is not None:
                yield node, self._nodes[node.parent_id]

    def descendants(self, node_id: str) -> Iterator[TaxonomyNode]:
        """Yield all strict descendants of ``node_id``, breadth-first."""
        queue = deque(self.node(node_id).children_ids)
        while queue:
            node = self._nodes[queue.popleft()]
            queue.extend(node.children_ids)
            yield node

    def is_ancestor(self, ancestor_id: str, node_id: str) -> bool:
        """True when ``ancestor_id`` lies on the path from node to root."""
        self.node(ancestor_id)
        current = self.parent(node_id)
        while current is not None:
            if current.node_id == ancestor_id:
                return True
            current = self.parent(current.node_id)
        return False
