"""Taxonomy substrate: forest data structures, validation, stats, io."""

from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.edit import (EditRecord, MaintenanceLog,
                                 TaxonomyEditor)
from repro.taxonomy.io import (load_edge_tsv, load_json, save_edge_tsv,
                               save_json, taxonomy_from_dict,
                               taxonomy_to_dict)
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.stats import (TaxonomyStatistics, branching_factors,
                                  compute_statistics)
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import collect_problems, validate_taxonomy

__all__ = [
    "Domain",
    "TaxonomyEditor",
    "EditRecord",
    "MaintenanceLog",
    "TaxonomyNode",
    "Taxonomy",
    "TaxonomyBuilder",
    "TaxonomyStatistics",
    "branching_factors",
    "compute_statistics",
    "collect_problems",
    "validate_taxonomy",
    "taxonomy_to_dict",
    "taxonomy_from_dict",
    "save_json",
    "load_json",
    "save_edge_tsv",
    "load_edge_tsv",
]
