"""Taxonomy statistics (paper Table 1).

For each taxonomy the paper reports the number of entities, the number
of levels, the number of trees and the per-level node counts.  The same
summary is computed here for any :class:`Taxonomy`, and used by the
Table 1 benchmark to reproduce the paper's statistics table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class TaxonomyStatistics:
    """Summary of a taxonomy's shape (one row of Table 1)."""

    name: str
    domain: str
    num_entities: int
    num_levels: int
    num_trees: int
    level_widths: tuple[int, ...]

    @property
    def widths_label(self) -> str:
        """The "13-110-472" style rendering used by Table 1."""
        return "-".join(str(w) for w in self.level_widths)

    def as_row(self) -> dict[str, object]:
        return {
            "domain": self.domain,
            "taxonomy": self.name,
            "entities": self.num_entities,
            "levels": self.num_levels,
            "trees": self.num_trees,
            "widths": self.widths_label,
        }


def compute_statistics(taxonomy: Taxonomy) -> TaxonomyStatistics:
    """Compute the Table 1 row for ``taxonomy``."""
    return TaxonomyStatistics(
        name=taxonomy.name,
        domain=taxonomy.domain.value,
        num_entities=len(taxonomy),
        num_levels=taxonomy.num_levels,
        num_trees=taxonomy.num_trees,
        level_widths=tuple(taxonomy.level_widths()),
    )


def branching_factors(taxonomy: Taxonomy) -> list[float]:
    """Average branching factor per level (width ratio level+1/level).

    Useful for sanity-checking generated taxonomies against the paper's
    specs; not reported in the paper directly.
    """
    widths = taxonomy.level_widths()
    return [widths[i + 1] / widths[i]
            for i in range(len(widths) - 1) if widths[i]]
