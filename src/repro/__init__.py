"""TaxoGlimpse reproduction — are LLMs a good replacement of taxonomies?

Reproduces the VLDB 2024 benchmark study end to end: ten synthetic
taxonomies matching the paper's shapes, the True/False + MCQ question
design, eighteen calibrated simulated LLMs behind a real chat-model
interface, the evaluation harness, and every table/figure experiment.

Quickstart:

    >>> from repro import TaxoGlimpse, DatasetKind
    >>> bench = TaxoGlimpse(sample_size=40)
    >>> result = bench.run("GPT-4", "ebay", DatasetKind.HARD)
    >>> result.metrics.accuracy > 0.8
    True
"""

from repro.core import (EvaluationRunner, Metrics, PoolResult,
                        QuestionRecord, RetrievalMetrics, TaxoGlimpse,
                        TAXONOMY_LABELS)
from repro.engine import (EngineConfig, EngineStats, EvaluationEngine,
                          ResponseCache, RetryPolicy)
from repro.errors import (CalibrationError, ExperimentError,
                          LedgerCorruptError, ModelError,
                          ModelTimeoutError, ModelTransientError,
                          PromptError, QuestionGenerationError,
                          ReproError, RunError, TaxonomyError,
                          UnknownModelError, UnknownNodeError,
                          UnknownRunError, ValidationError)
from repro.generators import (ALL_SPECS, TAXONOMY_KEYS, build_all,
                              build_taxonomy, get_spec)
from repro.hybrid import (CaseStudyConfig, CaseStudyResult,
                          HybridTaxonomy, MembershipModel,
                          run_case_study)
from repro.llm import (MODEL_NAMES, ChatModel, PromptSetting,
                       SimulatedLLM, TaxonomyOracle, all_models,
                       get_model, get_profile, surface_baseline)
from repro.obs import (NULL_TRACER, MetricsRegistry, Tracer,
                       chrome_trace, configure_logging)
from repro.questions import (Answer, DatasetKind, Question,
                             QuestionKind, QuestionPool, QuestionType,
                             TaxonomyPools, build_pools,
                             render_question)
from repro.runs import (RunLedger, RunRegistry, RunRequest, RunResult,
                        diff_runs, execute_run, load_run, resume_run)
from repro.store import (ArtifactStore, build_all_datasets,
                         default_store, spec_fingerprint)
from repro.taxonomy import (Domain, Taxonomy, TaxonomyBuilder,
                            TaxonomyNode, compute_statistics)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # facade
    "TaxoGlimpse",
    "TAXONOMY_LABELS",
    "EvaluationRunner",
    "Metrics",
    "RetrievalMetrics",
    "PoolResult",
    "QuestionRecord",
    # taxonomy
    "Domain",
    "Taxonomy",
    "TaxonomyBuilder",
    "TaxonomyNode",
    "compute_statistics",
    "TAXONOMY_KEYS",
    "ALL_SPECS",
    "build_taxonomy",
    "build_all",
    "get_spec",
    # questions
    "Question",
    "QuestionKind",
    "QuestionType",
    "QuestionPool",
    "TaxonomyPools",
    "DatasetKind",
    "Answer",
    "build_pools",
    "render_question",
    # dataset store
    "ArtifactStore",
    "build_all_datasets",
    "default_store",
    "spec_fingerprint",
    # llm
    "ChatModel",
    "SimulatedLLM",
    "TaxonomyOracle",
    "PromptSetting",
    "MODEL_NAMES",
    "get_model",
    "get_profile",
    "all_models",
    "surface_baseline",
    # engine
    "EvaluationEngine",
    "EngineConfig",
    "EngineStats",
    "RetryPolicy",
    "ResponseCache",
    # observability
    "Tracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "chrome_trace",
    "configure_logging",
    # run ledger
    "RunLedger",
    "RunRegistry",
    "RunRequest",
    "RunResult",
    "diff_runs",
    "execute_run",
    "load_run",
    "resume_run",
    # hybrid
    "HybridTaxonomy",
    "MembershipModel",
    "CaseStudyConfig",
    "CaseStudyResult",
    "run_case_study",
    # errors
    "ReproError",
    "TaxonomyError",
    "UnknownNodeError",
    "ValidationError",
    "QuestionGenerationError",
    "PromptError",
    "ModelError",
    "ModelTransientError",
    "ModelTimeoutError",
    "UnknownModelError",
    "ExperimentError",
    "CalibrationError",
    "RunError",
    "UnknownRunError",
    "LedgerCorruptError",
]
