"""Synthetic product instances for shopping categories.

The paper crawls product names from Google Shopping and Browsenodes to
use as instances (Section 4.5) and as the retrieval corpus of the case
study (Section 5.3).  Offline we synthesize products deterministically
per category: "<Brand> <category head noun> <model code>", e.g.
"Kradon Wireless Headphones X-240".  Products of a category embed the
category's head noun, so membership is decidable from text — the same
property real product titles have and the case-study retriever relies
on.
"""

from __future__ import annotations

import random

from repro.generators.names import WordForge
from repro.taxonomy.taxonomy import Taxonomy

_MODEL_LETTERS = "ABCDEFGHJKLMNPQRSTUVWX"


def _brand(rng: random.Random) -> str:
    return WordForge(rng).proper(2, 2)


def _model_code(rng: random.Random) -> str:
    letter = rng.choice(_MODEL_LETTERS)
    number = rng.randint(10, 990)
    return f"{letter}-{number}"


def category_head(category_name: str) -> str:
    """The trailing noun phrase a product title inherits.

    For "Wireless Over-Ear Headphones" this is "Headphones"; two words
    are kept when the category is a two-word compound.
    """
    words = category_name.split(" ")
    return " ".join(words[-2:]) if len(words) >= 2 else words[-1]


def product_names(category_name: str, count: int,
                  seed: str = "") -> list[str]:
    """``count`` deterministic product titles for one category."""
    rng = random.Random(f"products|{seed}|{category_name}")
    head = category_head(category_name)
    titles = []
    for _ in range(count):
        titles.append(f"{_brand(rng)} {head} {_model_code(rng)}")
    return titles


def products_for_node(taxonomy: Taxonomy, node_id: str, count: int,
                      seed: str = "") -> list[str]:
    """Product titles for the category node ``node_id``."""
    return product_names(taxonomy.node(node_id).name, count, seed=seed)
