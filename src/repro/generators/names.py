"""Deterministic synthetic name forging.

The offline substitute for the real taxonomy dumps needs names that

* are deterministic given a seed (reproducible benchmarks),
* look like the domain they imitate (Latin binomials, CamelCase types,
  retail category phrases, ...), and
* reproduce the *surface-form overlap* properties the paper leans on
  when explaining results (NCBI species names embed the genus name, OAE
  child concepts embed the parent concept name).

``WordForge`` produces pronounceable pseudo-words from syllables;
``PhraseForge`` produces unique phrases from vocabularies, falling back
to extra modifiers and finally roman-numeral suffixes when a pool is
exhausted.
"""

from __future__ import annotations

import random

_ONSETS = [
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gl", "gr",
    "h", "k", "kr", "l", "m", "n", "p", "pl", "pr", "qu", "r", "s",
    "sc", "sh", "st", "str", "t", "th", "tr", "v", "z",
]
_NUCLEI = ["a", "e", "i", "o", "u", "ai", "au", "ea", "ei", "io", "ou"]
_CODAS = ["", "", "", "l", "m", "n", "r", "s", "t", "x", "nd", "rn", "st"]


class WordForge:
    """Generates pronounceable pseudo-words from a private RNG stream."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    def word(self, min_syllables: int = 2, max_syllables: int = 3,
             suffix: str = "") -> str:
        """A lowercase pseudo-word, optionally with a fixed suffix."""
        count = self._rng.randint(min_syllables, max_syllables)
        parts = []
        for index in range(count):
            onset = self._rng.choice(_ONSETS)
            nucleus = self._rng.choice(_NUCLEI)
            # Only the final syllable takes a coda; keeps words smooth.
            coda = self._rng.choice(_CODAS) if index == count - 1 else ""
            parts.append(onset + nucleus + coda)
        return "".join(parts) + suffix

    def proper(self, min_syllables: int = 2, max_syllables: int = 3,
               suffix: str = "") -> str:
        """A capitalized pseudo-word (proper noun)."""
        return self.word(min_syllables, max_syllables, suffix).capitalize()


_ROMAN = ["II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X",
          "XI", "XII", "XIII", "XIV", "XV"]


class NamePool:
    """Tracks used names and disambiguates collisions deterministically.

    Call :meth:`claim` with a candidate factory; the pool retries the
    factory a few times, then appends roman numerals, guaranteeing a
    unique result without unbounded loops.
    """

    def __init__(self, max_retries: int = 8):
        self._used: set[str] = set()
        self._max_retries = max_retries

    def __len__(self) -> int:
        return len(self._used)

    def __contains__(self, name: str) -> bool:
        return name in self._used

    def claim(self, factory) -> str:
        """Return a unique name produced by ``factory()``."""
        candidate = factory()
        retries = 0
        while candidate in self._used and retries < self._max_retries:
            candidate = factory()
            retries += 1
        if candidate in self._used:
            base = candidate
            for numeral in _ROMAN:
                candidate = f"{base} {numeral}"
                if candidate not in self._used:
                    break
            else:  # pathological pool exhaustion: fall back to a counter
                serial = len(self._used)
                candidate = f"{base} {serial}"
                while candidate in self._used:
                    serial += 1
                    candidate = f"{base} {serial}"
        self._used.add(candidate)
        return candidate


class PhraseForge:
    """Builds unique phrases from vocabulary lists.

    The phrase shape grows with demand: ``noun``, then
    ``modifier noun``, then ``modifier modifier noun`` — mirroring how
    deep retail categories get wordier ("Mechanical Pencil Lead
    Refills").
    """

    def __init__(self, rng: random.Random, nouns: list[str],
                 modifiers: list[str], pool: NamePool | None = None):
        if not nouns or not modifiers:
            raise ValueError("nouns and modifiers must be non-empty")
        self._rng = rng
        self._nouns = nouns
        self._modifiers = modifiers
        self._pool = pool if pool is not None else NamePool()

    def phrase(self, words: int = 2, tail: str = "") -> str:
        """A unique phrase with ``words`` vocabulary words plus ``tail``."""

        def factory() -> str:
            picked = [self._rng.choice(self._modifiers)
                      for _ in range(max(0, words - 1))]
            picked.append(self._rng.choice(self._nouns))
            text = " ".join(picked)
            return f"{text} {tail}".strip() if tail else text

        return self._pool.claim(factory)


def title_case(text: str) -> str:
    """Capitalize each word, preserving inner punctuation."""
    return " ".join(part.capitalize() for part in text.split(" "))


def camel_case(*parts: str) -> str:
    """Join parts into a CamelCase identifier (Schema.org style)."""
    return "".join(part[:1].upper() + part[1:] for part in parts if part)
