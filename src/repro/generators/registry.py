"""Registry of the ten TaxoGlimpse taxonomies.

The registry is the single entry point downstream code uses; it keeps
the paper's ordering (common domains first, specialized last — the
order of every table's columns).
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ReproError
from repro.generators.acm_ccs import ACM_CCS_SPEC
from repro.generators.base import (DEFAULT_LEVEL_CAP, TaxonomySpec,
                                   generate_taxonomy)
from repro.generators.geonames import GEONAMES_SPEC
from repro.generators.glottolog import GLOTTOLOG_SPEC
from repro.generators.icd10 import ICD10CM_SPEC
from repro.generators.ncbi import NCBI_SPEC
from repro.generators.oae import OAE_SPEC
from repro.generators.schema_org import SCHEMA_SPEC
from repro.generators.shopping import AMAZON_SPEC, EBAY_SPEC, GOOGLE_SPEC
from repro.taxonomy.taxonomy import Taxonomy

#: Paper column order (Tables 4-7): common -> specialized.
ALL_SPECS: tuple[TaxonomySpec, ...] = (
    EBAY_SPEC,
    AMAZON_SPEC,
    GOOGLE_SPEC,
    SCHEMA_SPEC,
    ACM_CCS_SPEC,
    GEONAMES_SPEC,
    GLOTTOLOG_SPEC,
    ICD10CM_SPEC,
    OAE_SPEC,
    NCBI_SPEC,
)

TAXONOMY_KEYS: tuple[str, ...] = tuple(spec.key for spec in ALL_SPECS)

#: Taxonomies the paper groups as "common" vs "specialized" (Fig. 2).
COMMON_KEYS: tuple[str, ...] = ("ebay", "amazon", "google", "schema")
SPECIALIZED_KEYS: tuple[str, ...] = (
    "acm_ccs", "geonames", "glottolog", "icd10cm", "oae", "ncbi")

_SPECS_BY_KEY = {spec.key: spec for spec in ALL_SPECS}
_SPECS_BY_NAME = {spec.display_name: spec for spec in ALL_SPECS}


def get_spec(key: str) -> TaxonomySpec:
    """Spec by registry key ("ncbi") or display name ("NCBI")."""
    spec = _SPECS_BY_KEY.get(key) or _SPECS_BY_NAME.get(key)
    if spec is None:
        raise ReproError(
            f"unknown taxonomy: {key!r} (known: {', '.join(TAXONOMY_KEYS)})")
    return spec


@lru_cache(maxsize=64)
def build_taxonomy(key: str, scale: float = 1.0,
                   level_cap: int = DEFAULT_LEVEL_CAP) -> Taxonomy:
    """Materialize (and cache) the synthetic taxonomy for ``key``."""
    return generate_taxonomy(get_spec(key), scale=scale,
                             level_cap=level_cap)


def build_all(scale: float = 1.0,
              level_cap: int = DEFAULT_LEVEL_CAP) -> dict[str, Taxonomy]:
    """All ten taxonomies keyed by registry key, paper order."""
    return {key: build_taxonomy(key, scale, level_cap)
            for key in TAXONOMY_KEYS}
