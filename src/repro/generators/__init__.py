"""Synthetic taxonomy generators for the ten TaxoGlimpse taxonomies."""

from repro.generators.base import (DEFAULT_LEVEL_CAP, TaxonomySpec,
                                   generate_taxonomy, materialized_width)
from repro.generators.registry import (ALL_SPECS, COMMON_KEYS,
                                       SPECIALIZED_KEYS, TAXONOMY_KEYS,
                                       build_all, build_taxonomy, get_spec)

__all__ = [
    "DEFAULT_LEVEL_CAP",
    "TaxonomySpec",
    "generate_taxonomy",
    "materialized_width",
    "ALL_SPECS",
    "TAXONOMY_KEYS",
    "COMMON_KEYS",
    "SPECIALIZED_KEYS",
    "build_all",
    "build_taxonomy",
    "get_spec",
]
