"""NCBI Taxonomy (53 trees, 7 ranks, 2,190,125 entities in the spec).

Ranks follow the paper's level mapping: superkingdom/clade, phylum,
class, order, family, genus, species.  Rank-appropriate Latin suffixes
("-ales" orders, "-aceae"/"-idae" families) give mid levels the right
flavour, and species names are Latin binomials that embed the genus
name ("Verbascum" -> "Verbascum chaixii").  That containment is what
the paper credits for the surprising accuracy uplift at the
species->genus level (Figure 3(i)), so it is reproduced exactly.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import NCBI_LEVEL_SUFFIXES, NCBI_ROOTS
from repro.generators.names import WordForge
from repro.taxonomy.node import Domain

_GENUS_LEVEL = 5
_SPECIES_LEVEL = 6


class NcbiStyler:
    """Latin nomenclature with rank suffixes and genus-embedding species."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(NCBI_ROOTS):
            return NCBI_ROOTS[index]
        return WordForge(rng).proper(3, 4, suffix="ota")

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        forge = WordForge(rng)
        if level == _SPECIES_LEVEL:
            epithet = forge.word(2, 3)
            return f"{parent_name} {epithet}"
        if level == _GENUS_LEVEL:
            return forge.proper(2, 3)
        suffix = rng.choice(NCBI_LEVEL_SUFFIXES[level])
        return forge.proper(1, 2, suffix=suffix)


NCBI_SPEC = TaxonomySpec(
    key="ncbi",
    display_name="NCBI",
    domain=Domain.BIOLOGY,
    concept_noun="organism group",
    level_widths=(53, 309, 514, 1859, 10215, 107615, 2069560),
    styler=NcbiStyler(),
    seed=0x2C81,
)
