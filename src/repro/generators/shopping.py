"""Shopping taxonomies: eBay, Amazon, Google Product Category.

Shapes come from Table 1.  Names mimic retail categories: real-world
top-level departments, then "Wireless Headphones"-style phrases.  A
third of the children extend their parent's name with a modifier, which
mirrors real product trees ("Headphones" -> "Wireless Headphones") and
gives the simulated models' surface-form heuristic something realistic
to work with.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import (SHOPPING_MODIFIERS, SHOPPING_NOUNS,
                                       SHOPPING_ROOTS)
from repro.generators.names import WordForge, title_case
from repro.taxonomy.node import Domain


class ShoppingStyler:
    """Retail category names with moderate parent-name reuse."""

    #: Probability that a child name extends the parent name.
    parent_reuse = 0.3

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(SHOPPING_ROOTS):
            return SHOPPING_ROOTS[index]
        return title_case(WordForge(rng).word()) + " Department"

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        if rng.random() < self.parent_reuse and len(parent_name) < 42:
            modifier = title_case(rng.choice(SHOPPING_MODIFIERS))
            return f"{modifier} {parent_name}"
        word_count = 1 if level == 1 else (2 if level <= 3 else 3)
        modifiers = [rng.choice(SHOPPING_MODIFIERS)
                     for _ in range(word_count - 1)]
        noun = rng.choice(SHOPPING_NOUNS)
        return title_case(" ".join([*modifiers, noun]))


EBAY_SPEC = TaxonomySpec(
    key="ebay",
    display_name="eBay",
    domain=Domain.SHOPPING,
    concept_noun="products",
    level_widths=(13, 110, 472),
    styler=ShoppingStyler(),
    seed=0xEBA1,
)

AMAZON_SPEC = TaxonomySpec(
    key="amazon",
    display_name="Amazon",
    domain=Domain.SHOPPING,
    concept_noun="products",
    level_widths=(41, 507, 3910, 13579, 25777),
    styler=ShoppingStyler(),
    seed=0xA3A2,
)

GOOGLE_SPEC = TaxonomySpec(
    key="google",
    display_name="Google",
    domain=Domain.SHOPPING,
    concept_noun="products",
    level_widths=(21, 192, 1349, 2203, 1830),
    styler=ShoppingStyler(),
    seed=0x600613,
)
