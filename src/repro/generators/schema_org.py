"""Schema.org-style general taxonomy (3 trees, 6 levels, 1346 types).

Names are CamelCase type identifiers.  Children compose a prefix with
the trailing token of the parent name ("Action" -> "TradeAction" ->
"BuyTradeAction"-style), mirroring how Schema.org types specialize.
"""

from __future__ import annotations

import random
import re

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import SCHEMA_PREFIXES, SCHEMA_STEMS
from repro.generators.names import WordForge
from repro.taxonomy.node import Domain

_ROOTS = ["Thing", "DataType", "Meta"]
_CAMEL_TOKEN = re.compile(r"[A-Z][a-z0-9]*")


def camel_tail(name: str, max_tokens: int = 2) -> str:
    """Last CamelCase tokens of ``name`` (keeps child names bounded)."""
    tokens = _CAMEL_TOKEN.findall(name)
    if not tokens:
        return name
    return "".join(tokens[-max_tokens:])


class SchemaStyler:
    """CamelCase type names that embed the parent's trailing token."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(_ROOTS):
            return _ROOTS[index]
        return WordForge(rng).proper() + "Root"

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        if level == 1:
            return rng.choice(SCHEMA_STEMS)
        return rng.choice(SCHEMA_PREFIXES) + camel_tail(parent_name)


SCHEMA_SPEC = TaxonomySpec(
    key="schema",
    display_name="Schema",
    domain=Domain.GENERAL,
    concept_noun="entity type",
    level_widths=(3, 17, 215, 403, 436, 272),
    styler=SchemaStyler(),
    seed=0x5C7E3A,
)
