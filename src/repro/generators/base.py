"""Framework shared by the ten synthetic taxonomy generators.

Each generator is a :class:`TaxonomySpec`: the exact per-level widths
from the paper's Table 1, the domain, and a :class:`NameStyler` that
produces domain-flavoured names.  :func:`generate_taxonomy` materializes
a spec into a validated :class:`Taxonomy`:

* level widths follow the spec, optionally scaled down (``scale``) and
  capped (``level_cap``) so the 2.19M-node NCBI taxonomy stays
  laptop-sized while keeping its shape;
* children are attached to parents with Pareto-skewed weights, so some
  branches are bushy and some parents are childless (intermediate
  leaves), as in the real dumps;
* all randomness comes from one ``random.Random(seed)`` stream, making
  the output a pure function of ``(spec, scale, level_cap)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol

from repro.generators.names import NamePool
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.node import Domain
from repro.taxonomy.taxonomy import Taxonomy

#: Default cap on materialized nodes per level; levels wider than this
#: in the spec are subsampled.  20k per level keeps the whole suite of
#: ten taxonomies near 100k nodes.
DEFAULT_LEVEL_CAP = 20_000


class NameStyler(Protocol):
    """Produces candidate names; uniqueness is enforced by the caller."""

    def root_name(self, index: int, rng: random.Random) -> str:
        """Candidate name for root number ``index``."""

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        """Candidate name for a child at ``level`` under ``parent_name``."""


@dataclass(frozen=True)
class TaxonomySpec:
    """Static description of one of the paper's taxonomies (Table 1)."""

    key: str                     # registry key, e.g. "ncbi"
    display_name: str            # paper column header, e.g. "NCBI"
    domain: Domain
    concept_noun: str            # used by question templates
    level_widths: tuple[int, ...]
    styler: NameStyler
    seed: int

    @property
    def num_entities(self) -> int:
        return sum(self.level_widths)

    @property
    def num_levels(self) -> int:
        return len(self.level_widths)

    @property
    def num_trees(self) -> int:
        return self.level_widths[0]


def materialized_width(spec_width: int, scale: float,
                       level_cap: int) -> int:
    """Node count actually generated for a level of ``spec_width``."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    if level_cap <= 0:
        raise ValueError("level_cap must be positive")
    width = math.ceil(spec_width * scale)
    return max(1, min(width, spec_width, level_cap))


def generate_taxonomy(spec: TaxonomySpec, scale: float = 1.0,
                      level_cap: int = DEFAULT_LEVEL_CAP) -> Taxonomy:
    """Materialize ``spec`` into a validated taxonomy."""
    rng = random.Random(spec.seed)
    pool = NamePool()
    builder = TaxonomyBuilder(spec.display_name, spec.domain,
                              concept_noun=spec.concept_noun)
    names: dict[str, str] = {}

    previous_ids: list[str] = []
    for index in range(materialized_width(spec.level_widths[0],
                                          scale, level_cap)):
        name = pool.claim(lambda: spec.styler.root_name(index, rng))
        node_id = builder.add_root(name)
        names[node_id] = name
        previous_ids.append(node_id)

    for level in range(1, len(spec.level_widths)):
        count = materialized_width(spec.level_widths[level],
                                   scale, level_cap)
        parent_ids = _assign_parents(previous_ids, count, rng)
        level_ids: list[str] = []
        for index, parent_id in enumerate(parent_ids):
            parent_name = names[parent_id]
            name = pool.claim(
                lambda: spec.styler.child_name(level, index,
                                               parent_name, rng))
            node_id = builder.add_child(parent_id, name)
            names[node_id] = name
            level_ids.append(node_id)
        previous_ids = level_ids

    return builder.build()


#: Minimum average branching among parents that do get children.  Keeps
#: siblings (and therefore the paper's "uncle" hard negatives) common
#: even when a level is barely wider than the one above, by leaving the
#: excess parents childless (intermediate leaves), as real dumps do.
_TARGET_BRANCHING = 3


def _assign_parents(parent_ids: list[str], child_count: int,
                    rng: random.Random) -> list[str]:
    """Pick a parent for each child, concentrating on a fertile subset.

    Only ``child_count / _TARGET_BRANCHING`` parents (at least one)
    receive children; each fertile parent gets one child, the remainder
    follow Pareto weights so branch sizes vary like the real dumps.
    """
    fertile_count = max(1, min(len(parent_ids),
                               math.ceil(child_count / _TARGET_BRANCHING)))
    fertile = rng.sample(parent_ids, fertile_count)
    assigned = list(fertile[:child_count])
    remaining = child_count - len(assigned)
    if remaining > 0:
        # Bounded weights: branch sizes vary but stay near the target
        # (heavy-tailed weights would create huge size-biased families,
        # distorting uncle counts and the case-study sibling pools).
        weights = [0.5 + 2.0 * rng.random() for _ in fertile]
        assigned.extend(rng.choices(fertile, weights=weights,
                                    k=remaining))
    rng.shuffle(assigned)
    return assigned
