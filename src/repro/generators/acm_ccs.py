"""ACM Computing Classification System (13 trees, 5 levels, 2113 nodes).

Names are research-concept phrases ("Distributed algorithms",
"Privacy-preserving query optimization") composed from a CS vocabulary,
wordier as the level deepens, like the real CCS.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import ACM_MODIFIERS, ACM_NOUNS, ACM_ROOTS
from repro.taxonomy.node import Domain


class AcmStyler:
    """Sentence-case research concept phrases."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(ACM_ROOTS):
            return ACM_ROOTS[index]
        noun = rng.choice(ACM_NOUNS)
        return f"Emerging {noun}".capitalize()

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        modifier_count = 1 if level <= 2 else 2
        modifiers = [rng.choice(ACM_MODIFIERS)
                     for _ in range(modifier_count)]
        noun = rng.choice(ACM_NOUNS)
        phrase = " ".join([*modifiers, noun])
        return phrase[0].upper() + phrase[1:]


ACM_CCS_SPEC = TaxonomySpec(
    key="acm_ccs",
    display_name="ACM-CCS",
    domain=Domain.COMPUTER_SCIENCE,
    concept_noun="computer science research concept",
    level_widths=(13, 84, 543, 1087, 386),
    styler=AcmStyler(),
    seed=0xACC5,
)
