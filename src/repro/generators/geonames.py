"""GeoNames feature-code taxonomy (9 feature classes, 680 codes).

The real GeoNames taxonomy is two levels: feature classes (A, P, H, ...)
over feature codes ("first-order administrative division", "abandoned
canal").  Names follow the same lowercase descriptive style.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import GEO_MODIFIERS, GEO_NOUNS, GEO_ROOTS
from repro.taxonomy.node import Domain


class GeoNamesStyler:
    """Feature-class roots over "modifier noun" feature codes."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(GEO_ROOTS):
            return GEO_ROOTS[index]
        return f"{rng.choice(GEO_MODIFIERS)} feature class".capitalize()

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        modifier = rng.choice(GEO_MODIFIERS)
        noun = rng.choice(GEO_NOUNS)
        if rng.random() < 0.25:
            second = rng.choice(GEO_MODIFIERS)
            if second != modifier:
                return f"{modifier} {second} {noun}"
        return f"{modifier} {noun}"


GEONAMES_SPEC = TaxonomySpec(
    key="geonames",
    display_name="GeoNames",
    domain=Domain.GEOGRAPHY,
    concept_noun="geographical concept",
    level_widths=(9, 680),
    styler=GeoNamesStyler(),
    seed=0x6E0,
)
