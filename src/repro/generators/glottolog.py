"""Glottolog languoid taxonomy (245 families, 6 levels, 11969 languoids).

Names are forged proper nouns with language-family morphology
("Kradian", "Thonese").  Half of the intermediate nodes derive from
their parent with a directional or temporal modifier ("Middle
Kradian"), as real subgroup names do ("Middle-Modern-Sinitic"); leaf
dialects are mostly fresh words ("Hailu"), reproducing the paper's
observation that leaf languoids have little surface overlap with their
parents.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import LANGUAGE_SUFFIXES
from repro.generators.names import WordForge
from repro.taxonomy.node import Domain

_SUBGROUP_MODIFIERS = [
    "North", "South", "East", "West", "Central", "Upper", "Lower",
    "Old", "Middle", "Modern", "Proto", "Highland", "Lowland",
    "Coastal", "Inland", "Nuclear", "Greater", "Western", "Eastern",
]


def _family_word(rng: random.Random) -> str:
    forge = WordForge(rng)
    word = forge.proper(2, 3, suffix=rng.choice(LANGUAGE_SUFFIXES))
    if rng.random() < 0.3:
        second = forge.proper(1, 2, suffix=rng.choice(LANGUAGE_SUFFIXES))
        return f"{word}-{second}"
    return word


def _core_of(name: str) -> str:
    """Strip leading subgroup modifiers to recover the family core."""
    parts = name.split(" ")
    while len(parts) > 1 and parts[0] in _SUBGROUP_MODIFIERS:
        parts = parts[1:]
    return " ".join(parts)


class GlottologStyler:
    """Language-family morphology with parent-derived subgroups."""

    #: Probability that a non-leaf child derives from its parent name.
    subgroup_reuse = 0.5

    def root_name(self, index: int, rng: random.Random) -> str:
        return _family_word(rng)

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        is_leaf_level = level >= 5
        reuse = 0.15 if is_leaf_level else self.subgroup_reuse
        if rng.random() < reuse:
            core = _core_of(parent_name)
            modifier = rng.choice(_SUBGROUP_MODIFIERS)
            return f"{modifier} {core}"
        if is_leaf_level:
            # Dialect names are short and unrelated to the family name.
            return WordForge(rng).proper(2, 2)
        return _family_word(rng)


GLOTTOLOG_SPEC = TaxonomySpec(
    key="glottolog",
    display_name="Glottolog",
    domain=Domain.LANGUAGE,
    concept_noun="language",
    level_widths=(245, 712, 1048, 1205, 1366, 7393),
    styler=GlottologStyler(),
    seed=0x61077,
)
