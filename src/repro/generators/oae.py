"""OAE — Ontology of Adverse Events (181 trees, 5 levels, 9547 nodes).

The paper attributes the strong LLM performance on OAE to the high
surface similarity between parent and child concept names near the
leaves.  The generator reproduces that mechanically: the deeper the
level, the more likely a child is "<qualifier> <parent name>"
("cardiac arrhythmia AE" -> "severe cardiac arrhythmia AE").
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import (OAE_EVENTS, OAE_QUALIFIERS,
                                       OAE_SITES)
from repro.taxonomy.node import Domain

#: Parent-name-reuse probability per child level (index 1..4).
_REUSE_BY_LEVEL = {1: 0.35, 2: 0.55, 3: 0.75, 4: 0.9}


def _fresh_event(rng: random.Random) -> str:
    site = rng.choice(OAE_SITES)
    event = rng.choice(OAE_EVENTS)
    return f"{site} {event} AE"


class OaeStyler:
    """Adverse-event concepts with leafward parent-name containment."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(OAE_SITES):
            return f"{OAE_SITES[index]} adverse event"
        return _fresh_event(rng)

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        reuse = _REUSE_BY_LEVEL.get(level, 0.5)
        if rng.random() < reuse and len(parent_name) < 70:
            return f"{rng.choice(OAE_QUALIFIERS)} {parent_name}"
        return _fresh_event(rng)


OAE_SPEC = TaxonomySpec(
    key="oae",
    display_name="OAE",
    domain=Domain.MEDICAL,
    concept_noun="Adverse Events concept",
    level_widths=(181, 1854, 3817, 2587, 1108),
    styler=OaeStyler(),
    seed=0x0AE,
)
