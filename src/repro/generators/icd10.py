"""ICD-10-CM disease taxonomy (22 chapters, 4 levels, 4523 entities).

Roots are body-system chapters ("Diseases of the circulatory system");
mid levels are condition groups; the deepest level holds disease
entities with different causes, built by appending a cause clause to
the parent name ("Chronic nephritis due to medication") — exactly the
structure the paper describes for ICD level 3, and the reason
parent/child surface overlap is high there.
"""

from __future__ import annotations

import random

from repro.generators.base import TaxonomySpec
from repro.generators.lexicons import (ICD_CAUSES, ICD_CONDITIONS,
                                       ICD_MODIFIERS, ICD_SYSTEMS)
from repro.taxonomy.node import Domain


class IcdStyler:
    """Chapter -> condition group -> condition -> cause variants."""

    def root_name(self, index: int, rng: random.Random) -> str:
        if index < len(ICD_SYSTEMS):
            return f"Diseases of the {ICD_SYSTEMS[index]}"
        return f"Diseases of the {rng.choice(ICD_SYSTEMS)} (other)"

    def child_name(self, level: int, index: int, parent_name: str,
                   rng: random.Random) -> str:
        if level == 3:
            # Disease entities with different causes extend the parent.
            return f"{parent_name} {rng.choice(ICD_CAUSES)}"
        modifier_count = 1 if level == 1 else 2
        modifiers = [rng.choice(ICD_MODIFIERS)
                     for _ in range(modifier_count)]
        condition = rng.choice(ICD_CONDITIONS)
        phrase = " ".join([*modifiers, condition])
        return phrase[0].upper() + phrase[1:]


ICD10CM_SPEC = TaxonomySpec(
    key="icd10cm",
    display_name="ICD-10-CM",
    domain=Domain.HEALTH,
    concept_noun="disease",
    level_widths=(22, 155, 963, 3383),
    styler=IcdStyler(),
    seed=0x1CD10,
)
