"""Domain vocabularies used by the synthetic taxonomy generators.

Top-level names copy the flavour of the real taxonomies (real root
categories where they are public knowledge); deeper names are composed
from the noun/modifier pools below.  Only *shape and surface form*
matter for the benchmark: the question generator and the simulated
models never depend on the identity of a concept, just on the tree
around it and the textual overlap between related names.
"""

from __future__ import annotations

SHOPPING_ROOTS = [
    "Electronics", "Home & Garden", "Clothing & Accessories",
    "Sporting Goods", "Toys & Hobbies", "Health & Beauty", "Automotive",
    "Books & Magazines", "Music", "Office Products", "Pet Supplies",
    "Baby Products", "Jewelry & Watches", "Tools & Home Improvement",
    "Grocery & Gourmet Food", "Appliances", "Arts & Crafts",
    "Cell Phones & Plans", "Computers & Tablets", "Video Games",
    "Furniture", "Shoes", "Luggage & Travel Gear", "Industrial Supplies",
    "Software", "Musical Instruments", "Camera & Photo",
    "Outdoor Recreation", "Kitchen & Dining", "Patio & Lawn",
    "Collectibles", "Smart Home Devices", "Lighting", "Bedding & Bath",
    "Storage & Organization", "Party Supplies", "Craft Supplies",
    "Antiques", "Business Equipment", "Real Estate Services",
    "Gift Cards",
]

SHOPPING_NOUNS = [
    "chargers", "cables", "headphones", "speakers", "keyboards",
    "monitors", "printers", "cameras", "lenses", "tripods", "drones",
    "batteries", "adapters", "cases", "stands", "mounts", "sofas",
    "tables", "chairs", "desks", "shelves", "lamps", "rugs", "curtains",
    "blankets", "pillows", "mattresses", "cookware", "bakeware",
    "knives", "utensils", "blenders", "mixers", "kettles", "toasters",
    "jackets", "sweaters", "dresses", "jeans", "boots", "sandals",
    "sneakers", "backpacks", "wallets", "belts", "scarves", "gloves",
    "rackets", "balls", "bats", "helmets", "gloves sets", "weights",
    "treadmills", "bicycles", "tents", "sleeping bags", "coolers",
    "fishing rods", "puzzles", "dolls", "action figures", "board games",
    "building blocks", "vitamins", "supplements", "shampoos", "lotions",
    "razors", "brushes", "tires", "wipers", "filters", "spark plugs",
    "notebooks", "pens", "pencils", "markers", "staplers", "binders",
    "envelopes", "leashes", "aquariums", "bird feeders", "cat trees",
    "strollers", "car seats", "cribs", "bottles", "necklaces", "rings",
    "bracelets", "earrings", "drills", "saws", "hammers", "wrenches",
    "screwdrivers", "sanders", "coffee beans", "teas", "snacks",
    "sauces", "spices", "guitars", "violins", "drums", "amplifiers",
]

SHOPPING_MODIFIERS = [
    "wireless", "portable", "rechargeable", "ergonomic", "adjustable",
    "foldable", "stainless steel", "ceramic", "bamboo", "leather",
    "cotton", "wool", "waterproof", "insulated", "heavy duty",
    "compact", "professional", "vintage", "modern", "classic", "smart",
    "digital", "analog", "electric", "manual", "cordless", "outdoor",
    "indoor", "kids", "travel", "gaming", "studio", "premium",
    "eco-friendly", "reusable", "disposable", "magnetic", "LED",
    "solar", "mini", "oversized", "slim", "padded", "non-stick",
]

SCHEMA_STEMS = [
    "Action", "Event", "Place", "Person", "Organization", "Product",
    "CreativeWork", "Intangible", "MedicalEntity", "BioChemEntity",
    "Taxon", "Offer", "Review", "Rating", "Audience", "Brand",
    "Service", "Trip", "Reservation", "Role", "Quantity", "Enumeration",
    "StructuredValue", "Schedule", "Order", "Invoice", "Demand",
    "Grant", "Occupation", "Season", "Episode", "Clip", "Game", "Menu",
    "Recipe", "Article", "Report", "Book", "Movie", "Dataset", "Map",
    "Course", "Project", "Vehicle", "Accommodation", "Residence",
    "Store", "Payment", "Delivery", "Contact",
]

SCHEMA_PREFIXES = [
    "Achieve", "Assess", "Consume", "Control", "Create", "Find",
    "Interact", "Move", "Organize", "Play", "Search", "Trade",
    "Transfer", "Update", "Web", "Local", "Medical", "Financial",
    "Educational", "Government", "Sports", "Music", "Radio", "TV",
    "Digital", "Physical", "Aggregate", "Auto", "Child", "Exercise",
    "Food", "Health", "Home", "Legal", "Lodging", "News", "Social",
    "Travel", "Virtual", "Completed", "Pending", "Failed",
]

ACM_ROOTS = [
    "General and reference", "Hardware", "Computer systems organization",
    "Networks", "Software and its engineering", "Theory of computation",
    "Mathematics of computing", "Information systems",
    "Security and privacy", "Human-centered computing",
    "Computing methodologies", "Applied computing",
    "Social and professional topics",
]

ACM_NOUNS = [
    "algorithms", "architectures", "protocols", "models", "semantics",
    "verification", "optimization", "learning", "retrieval", "indexing",
    "compilers", "languages", "databases", "storage", "caching",
    "scheduling", "routing", "consistency", "replication", "recovery",
    "visualization", "interfaces", "interaction", "graphics",
    "vision", "recognition", "parsing", "translation", "generation",
    "cryptography", "authentication", "privacy", "testing", "debugging",
    "synthesis", "simulation", "benchmarking", "provenance", "mining",
    "clustering", "classification", "regression", "inference",
    "reasoning", "planning", "search", "compression", "streaming",
    "virtualization", "concurrency",
]

ACM_MODIFIERS = [
    "distributed", "parallel", "probabilistic", "approximate", "online",
    "incremental", "adaptive", "scalable", "secure", "robust",
    "neural", "symbolic", "statistical", "logical", "formal",
    "empirical", "quantum", "embedded", "real-time", "mobile",
    "graph-based", "declarative", "relational", "spatial", "temporal",
    "multimodal", "federated", "self-supervised", "energy-aware",
    "hardware-aware", "privacy-preserving", "fault-tolerant",
]

GEO_ROOTS = [
    "Administrative region", "Populated place", "Hydrographic feature",
    "Hypsographic feature", "Vegetation feature", "Spot feature",
    "Road and railroad", "Undersea feature", "Area feature",
]

GEO_NOUNS = [
    "division", "capital", "settlement", "village", "stream", "lake",
    "reservoir", "canal", "spring", "marsh", "glacier", "bay", "strait",
    "mountain", "hill", "valley", "plateau", "ridge", "peak", "cliff",
    "pass", "plain", "desert", "forest", "grove", "scrubland", "oasis",
    "station", "junction", "bridge", "tunnel", "harbor", "port",
    "airfield", "mine", "quarry", "farm", "estate", "ruin", "monument",
    "trench", "seamount", "shoal", "reef", "basin", "delta", "island",
    "archipelago", "lagoon", "fjord",
]

GEO_MODIFIERS = [
    "first-order", "second-order", "third-order", "fourth-order",
    "abandoned", "seasonal", "intermittent", "artificial", "coastal",
    "inland", "alpine", "subalpine", "volcanic", "karst", "tidal",
    "freshwater", "saline", "historical", "populated", "destroyed",
    "underground", "elevated", "dependent", "free-standing",
]

LANGUAGE_SUFFIXES = ["an", "ese", "ic", "ish", "i", "ean", "ara", "uan"]

ICD_SYSTEMS = [
    "circulatory system", "respiratory system", "digestive system",
    "nervous system", "musculoskeletal system", "genitourinary system",
    "skin and subcutaneous tissue", "eye and adnexa",
    "ear and mastoid process", "blood and blood-forming organs",
    "endocrine system", "mental and behavioural disorders",
    "infectious and parasitic diseases", "neoplasms",
    "pregnancy and childbirth", "perinatal period",
    "congenital malformations", "injury and poisoning",
    "external causes of morbidity", "symptoms and signs",
    "factors influencing health status", "codes for special purposes",
]

ICD_CONDITIONS = [
    "stenosis", "insufficiency", "occlusion", "embolism", "thrombosis",
    "aneurysm", "fibrillation", "infarction", "ischaemia",
    "inflammation", "infection", "ulcer", "lesion", "atrophy",
    "hypertrophy", "dysplasia", "neoplasm", "carcinoma", "adenoma",
    "sclerosis", "fibrosis", "stenopathy", "neuropathy", "myopathy",
    "dermatitis", "arthritis", "bronchitis", "gastritis", "nephritis",
    "hepatitis", "colitis", "sinusitis", "otitis", "conjunctivitis",
    "fracture", "dislocation", "sprain", "contusion", "laceration",
    "degeneration", "malformation", "obstruction", "perforation",
    "prolapse", "rupture", "syndrome", "disorder", "deficiency",
]

ICD_MODIFIERS = [
    "acute", "chronic", "recurrent", "congenital", "acquired",
    "bilateral", "unilateral", "primary", "secondary", "benign",
    "malignant", "unspecified", "viral", "bacterial", "fungal",
    "toxic", "traumatic", "idiopathic", "hereditary", "juvenile",
    "senile", "postprocedural", "drug-induced", "radiation-induced",
    "severe", "moderate", "mild", "diffuse", "focal", "generalized",
]

ICD_CAUSES = [
    "due to viral agents", "due to bacterial agents",
    "due to medication", "due to trauma", "due to radiation",
    "due to autoimmune response", "due to metabolic imbalance",
    "due to genetic mutation", "due to occupational exposure",
    "due to unknown cause", "following surgery", "following infection",
    "in diseases classified elsewhere", "with complications",
    "without complications", "with haemorrhage", "in remission",
]

OAE_SITES = [
    "cardiac", "vascular", "respiratory", "gastrointestinal", "hepatic",
    "renal", "neurological", "psychiatric", "dermatological", "ocular",
    "auditory", "musculoskeletal", "haematological", "immune",
    "endocrine", "metabolic", "reproductive", "urinary", "lymphatic",
    "oral", "nasal", "pharyngeal", "thoracic", "abdominal", "pelvic",
    "cutaneous", "mucosal", "systemic", "behavioural", "nutritional",
]

OAE_EVENTS = [
    "pain", "swelling", "bleeding", "rash", "lesion", "spasm",
    "inflammation", "necrosis", "oedema", "eruption", "discharge",
    "obstruction", "hypertrophy", "atrophy", "dysfunction", "failure",
    "arrest", "arrhythmia", "hypotension", "hypertension", "fever",
    "fatigue", "nausea", "dizziness", "headache", "tremor", "seizure",
    "paralysis", "numbness", "weakness", "infection", "ulceration",
    "irritation", "discoloration", "pruritus", "erythema",
]

OAE_QUALIFIERS = [
    "mild", "moderate", "severe", "acute", "chronic", "transient",
    "persistent", "recurrent", "localized", "generalized",
    "dose-dependent", "delayed-onset", "early-onset", "intermittent",
    "progressive", "reversible", "irreversible", "grade 1", "grade 2",
    "grade 3",
]

NCBI_ROOTS = [
    "Bacteria", "Archaea", "Eukaryota", "Viruses", "Viridiplantae",
    "Metazoa", "Fungi", "Alveolata", "Amoebozoa", "Apusozoa",
    "Breviatea", "Cryptophyceae", "Discoba", "Glaucocystophyceae",
    "Haptista", "Heterolobosea", "Jakobida", "Malawimonadida",
    "Metamonada", "Opisthokonta", "Rhizaria", "Rhodophyta",
    "Stramenopiles", "Picozoa", "Provora", "Sar", "Telonemida",
    "Choanoflagellata", "Filasterea", "Ichthyosporea", "Rotosphaerida",
    "Anaeramoebae", "Ancyromonadida", "CRuMs", "Hemimastigophora",
    "Duplornaviricota", "Kitrinoviricota", "Lenarviricota",
    "Negarnaviricota", "Pisuviricota", "Nucleocytoviricota",
    "Peploviricota", "Uroviricota", "Hofneiviricota", "Phixviricota",
    "Cossaviricota", "Cressdnaviricota", "Saleviricota",
    "Taleaviricota", "Dividoviricota", "Artverviricota",
    "Preplasmiviricota", "Ambiviricota",
]

NCBI_LEVEL_SUFFIXES = {
    1: ["ophyta", "omycota", "ozoa", "obacteria", "archaeota",
        "oviricota"],
    2: ["opsida", "omycetes", "ophyceae", "obacteriia", "ia", "oviricetes"],
    3: ["ales", "formes", "ida", "oviricales"],
    4: ["aceae", "idae", "oviridae"],
}
