"""The Amazon taxonomy-replacement case study (paper Section 5.3).

Level-4-and-below concepts of the Amazon Product Category are replaced
by an LLM while root..level-3 stay explicit.  For each sampled removed
concept the pipeline:

1. merges the concept's products with its siblings' products (the
   surviving level-3 parent's full inventory, e.g. all "Stationery"
   products),
2. asks the (simulated) Llama-2-70B filter to return the products that
   belong under the removed concept, and
3. scores precision/recall of the returned list.

The paper reports precision 0.713, recall 0.792 and a 59% maintenance
saving (25777 of 43814 entities removed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from statistics import fmean

from repro.core.metrics import RetrievalMetrics, retrieval_metrics
from repro.generators.products import products_for_node
from repro.generators.registry import build_taxonomy, get_spec
from repro.hybrid.membership import MembershipModel
from repro.stats.sampling import cochran_sample_size
from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class CaseStudyConfig:
    """Parameters of the replacement experiment."""

    taxonomy_key: str = "amazon"
    cut_level: int = 3              # keep root..level-3 explicit
    products_per_concept: int = 6
    sample_size: int | None = None  # None = Cochran 95%/5%
    membership: MembershipModel = field(default_factory=MembershipModel)
    seed: str = "case-study"


@dataclass(frozen=True, slots=True)
class CaseStudyResult:
    """Aggregate outcome of the replacement experiment."""

    precision: float
    recall: float
    f1: float
    maintenance_saving: float
    concepts_evaluated: int
    per_concept: tuple[RetrievalMetrics, ...] = ()


def spec_maintenance_saving(taxonomy_key: str, cut_level: int) -> float:
    """Fraction of *spec* entities removed (paper's 59% for Amazon)."""
    widths = get_spec(taxonomy_key).level_widths
    removed = sum(widths[cut_level + 1:])
    return removed / sum(widths)


def run_case_study(config: CaseStudyConfig | None = None,
                   taxonomy: Taxonomy | None = None,
                   keep_per_concept: bool = False) -> CaseStudyResult:
    """Execute the Section 5.3 pipeline and score it."""
    if config is None:
        config = CaseStudyConfig()
    if taxonomy is None:
        taxonomy = build_taxonomy(config.taxonomy_key)

    removed_level = config.cut_level + 1
    concepts = taxonomy.nodes_at_level(removed_level)
    sample_size = config.sample_size
    if sample_size is None:
        sample_size = cochran_sample_size(len(concepts))
    sample_size = min(sample_size, len(concepts))
    rng = random.Random(f"{config.seed}|{config.taxonomy_key}")
    sampled = rng.sample(concepts, sample_size)

    scores: list[RetrievalMetrics] = []
    for concept in sampled:
        members = products_for_node(taxonomy, concept.node_id,
                                    config.products_per_concept,
                                    seed=config.seed)
        others: list[str] = []
        for sibling in taxonomy.siblings(concept.node_id):
            others.extend(products_for_node(
                taxonomy, sibling.node_id,
                config.products_per_concept, seed=config.seed))
        retrieved = config.membership.filter_products(
            concept.name, members, others)
        scores.append(retrieval_metrics(retrieved, set(members)))

    precision = fmean(score.precision for score in scores)
    recall = fmean(score.recall for score in scores)
    f1 = (0.0 if precision + recall == 0.0
          else 2.0 * precision * recall / (precision + recall))
    return CaseStudyResult(
        precision=precision,
        recall=recall,
        f1=f1,
        maintenance_saving=spec_maintenance_saving(
            config.taxonomy_key, config.cut_level),
        concepts_evaluated=len(sampled),
        per_concept=tuple(scores) if keep_per_concept else (),
    )
