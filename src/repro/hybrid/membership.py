"""Simulated LLM product-membership filtering (case study substrate).

The case study asks Llama-2-70B to pick, out of a merged product list,
the products that belong under a removed leaf concept.  Offline the
filter is a calibrated deterministic classifier:

* a product that truly belongs under the concept is kept with
  probability ``recall_rate`` (the paper's measured recall, 0.792);
* a sibling product leaks in with probability ``false_positive_rate``
  (0.14 — calibrated so that with the Amazon tree's ~2.9 siblings per
  concept the mean per-concept precision lands at the paper's 0.713).

Draws are keyed on (model, product, concept): re-running the case
study, or asking about the same product twice, always gives the same
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.rng import unit_float

#: Paper-measured recall of the Llama-2-70B filter (Section 5.3).
DEFAULT_RECALL_RATE = 0.792
#: Leak-in rate calibrated against the paper's 0.713 precision.
DEFAULT_FALSE_POSITIVE_RATE = 0.14


@dataclass(frozen=True, slots=True)
class MembershipModel:
    """Deterministic calibrated membership classifier."""

    model_name: str = "Llama-2-70B"
    recall_rate: float = DEFAULT_RECALL_RATE
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE

    def __post_init__(self) -> None:
        for value, label in ((self.recall_rate, "recall_rate"),
                             (self.false_positive_rate,
                              "false_positive_rate")):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")

    def keeps(self, product: str, concept: str,
              is_member: bool) -> bool:
        """Does the simulated filter keep ``product`` under ``concept``?"""
        rate = (self.recall_rate if is_member
                else self.false_positive_rate)
        return unit_float(self.model_name, "member", concept,
                          product) < rate

    def filter_products(self, concept: str, members: list[str],
                        others: list[str]) -> set[str]:
        """The retrieved set over the merged product list."""
        kept = {product for product in members
                if self.keeps(product, concept, True)}
        kept.update(product for product in others
                    if self.keeps(product, concept, False))
        return kept
