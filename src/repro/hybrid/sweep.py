"""Cut-level sweep: the paper's "replace more layers" extension.

Section 5.3 closes with: "Note that we may replace more layers to
achieve lower taxonomy construction and maintenance costs" at some
accuracy price.  This module makes that trade-off measurable: it runs
the case-study pipeline at every possible cut level and reports the
(saving, precision, recall) frontier.

Shallower cuts replace more of the tree (higher saving) but force the
LLM filter to discriminate within much larger merged product pools
(descendants of a higher surviving ancestor), so precision decays —
the crossover the paper anticipates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import fmean

from repro.core.metrics import retrieval_metrics
from repro.generators.products import products_for_node
from repro.generators.registry import build_taxonomy, get_spec
from repro.hybrid.case_study import spec_maintenance_saving
from repro.hybrid.membership import MembershipModel
from repro.taxonomy.taxonomy import Taxonomy

#: Pool-dilution exponent: how fast the filter's false-positive rate
#: grows as the merged pool fans out beyond direct siblings.  Each
#: extra level between the removed concept and the surviving ancestor
#: multiplies confusable neighbours; the filter leaks proportionally.
_DILUTION_PER_LEVEL = 1.35


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """The replacement trade-off at one cut level."""

    cut_level: int
    maintenance_saving: float
    precision: float
    recall: float
    concepts_evaluated: int

    def as_row(self) -> dict[str, object]:
        return {
            "cut level": self.cut_level,
            "saving": f"{self.maintenance_saving:.0%}",
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
        }


def _pool_for(taxonomy: Taxonomy, concept_id: str, cut_level: int,
              per_concept: int, seed: str) -> tuple[list[str],
                                                    list[str], int]:
    """(member products, competitor products, dilution levels).

    The surviving ancestor at ``cut_level`` serves the query; its
    *other* deepest descendants contribute the competitor pool.  To
    keep the sweep tractable the competitor pool is subsampled to the
    sibling count times the fan-out ratio, while the dilution level
    count feeds the leak model.
    """
    node = taxonomy.node(concept_id)
    ancestors = taxonomy.ancestors(concept_id)
    survivor = next(a for a in ancestors if a.level == cut_level)
    dilution = node.level - cut_level - 1

    members = products_for_node(taxonomy, concept_id, per_concept,
                                seed=seed)
    rng = random.Random(f"{seed}|pool|{concept_id}|{cut_level}")
    competitors: list[str] = []
    competitor_nodes = [d for d in taxonomy.descendants(
        survivor.node_id)
        if d.level == node.level and d.node_id != concept_id]
    cap = 24  # bound pool size; dilution is modelled, not enumerated
    if len(competitor_nodes) > cap:
        competitor_nodes = rng.sample(competitor_nodes, cap)
    for other in competitor_nodes:
        competitors.extend(products_for_node(
            taxonomy, other.node_id, per_concept, seed=seed))
    return members, competitors, dilution


def sweep_cut_levels(taxonomy_key: str = "amazon",
                     sample_size: int = 120,
                     products_per_concept: int = 6,
                     membership: MembershipModel | None = None,
                     seed: str = "cut-sweep") -> list[SweepPoint]:
    """Evaluate the replacement at every cut level of the taxonomy."""
    taxonomy = build_taxonomy(taxonomy_key)
    if membership is None:
        membership = MembershipModel()
    removed_level = taxonomy.num_levels - 1
    concepts = taxonomy.nodes_at_level(removed_level)
    rng = random.Random(f"{seed}|{taxonomy_key}")
    sampled = rng.sample(concepts, min(sample_size, len(concepts)))

    points = []
    for cut_level in range(taxonomy.num_levels - 2, -1, -1):
        precisions = []
        recalls = []
        for concept in sampled:
            members, competitors, dilution = _pool_for(
                taxonomy, concept.node_id, cut_level,
                products_per_concept, seed)
            leak = min(0.95, membership.false_positive_rate
                       * _DILUTION_PER_LEVEL ** dilution)
            diluted = MembershipModel(
                model_name=membership.model_name,
                recall_rate=membership.recall_rate,
                false_positive_rate=leak)
            retrieved = diluted.filter_products(
                concept.name, members, competitors)
            metrics = retrieval_metrics(retrieved, set(members))
            precisions.append(metrics.precision)
            recalls.append(metrics.recall)
        points.append(SweepPoint(
            cut_level=cut_level,
            maintenance_saving=spec_maintenance_saving(
                taxonomy_key, cut_level),
            precision=fmean(precisions),
            recall=fmean(recalls),
            concepts_evaluated=len(sampled),
        ))
    return points


def saving_at_precision(points: list[SweepPoint],
                        floor: float) -> SweepPoint | None:
    """Deepest saving whose precision stays at or above ``floor``."""
    acceptable = [point for point in points if point.precision >= floor]
    if not acceptable:
        return None
    return max(acceptable, key=lambda point: point.maintenance_saving)
