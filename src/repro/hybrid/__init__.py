"""LLM-tree-combined taxonomy and the Section 5.3 case study."""

from repro.hybrid.case_study import (CaseStudyConfig, CaseStudyResult,
                                     run_case_study,
                                     spec_maintenance_saving)
from repro.hybrid.hybrid_taxonomy import HybridTaxonomy, MaintenanceSaving
from repro.hybrid.sweep import (SweepPoint, saving_at_precision,
                                sweep_cut_levels)
from repro.hybrid.membership import (DEFAULT_FALSE_POSITIVE_RATE,
                                     DEFAULT_RECALL_RATE,
                                     MembershipModel)

__all__ = [
    "HybridTaxonomy",
    "SweepPoint",
    "sweep_cut_levels",
    "saving_at_precision",
    "MaintenanceSaving",
    "MembershipModel",
    "DEFAULT_RECALL_RATE",
    "DEFAULT_FALSE_POSITIVE_RATE",
    "CaseStudyConfig",
    "CaseStudyResult",
    "run_case_study",
    "spec_maintenance_saving",
]
