"""The LLM-tree-combined taxonomy (paper Section 5.1).

The paper's proposed "next-generation taxonomy" keeps the levels near
the root as an explicit tree (for display, visualization and reliable
shallow reasoning) and delegates everything below a *cut level* to an
LLM.  :class:`HybridTaxonomy` implements that form:

* explicit navigation (`parent`, `children`, `nodes_at_level`) works
  down to the cut level exactly as on a full :class:`Taxonomy`;
* concepts below the cut are *virtual*: `locate` maps a removed
  concept's query string to its surviving ancestor by asking the LLM
  supertype questions against the explicit frontier, and `search`
  retrieves instances by LLM membership filtering (the Section 5.3
  pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TaxonomyError
from repro.llm.base import ChatModel
from repro.llm.parsing import parse_true_false
from repro.questions.model import Answer
from repro.questions.templates import true_false_prompt
from repro.taxonomy.node import TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class MaintenanceSaving:
    """How much of the tree the hybrid form stops maintaining."""

    removed_entities: int
    total_entities: int

    @property
    def fraction(self) -> float:
        if self.total_entities == 0:
            return 0.0
        return self.removed_entities / self.total_entities


class HybridTaxonomy:
    """A taxonomy whose deep levels are replaced by an LLM."""

    def __init__(self, taxonomy: Taxonomy, cut_level: int,
                 model: ChatModel):
        if cut_level < 0 or cut_level >= taxonomy.num_levels:
            raise TaxonomyError(
                f"cut level {cut_level} outside 0.."
                f"{taxonomy.num_levels - 1}")
        self.base = taxonomy
        self.cut_level = cut_level
        self.model = model
        self._explicit = {node.node_id for node in taxonomy
                          if node.level <= cut_level}

    # ------------------------------------------------------------------
    # Explicit part
    # ------------------------------------------------------------------
    def __contains__(self, node_id: str) -> bool:
        return node_id in self._explicit

    def __len__(self) -> int:
        return len(self._explicit)

    @property
    def saving(self) -> MaintenanceSaving:
        """Construction/maintenance saving of the replacement."""
        return MaintenanceSaving(
            removed_entities=len(self.base) - len(self._explicit),
            total_entities=len(self.base))

    def node(self, node_id: str) -> TaxonomyNode:
        if node_id not in self._explicit:
            raise TaxonomyError(
                f"{node_id} lies below the cut level and is virtual")
        return self.base.node(node_id)

    def parent(self, node_id: str) -> TaxonomyNode | None:
        return self.base.parent(self.node(node_id).node_id)

    def children(self, node_id: str) -> list[TaxonomyNode]:
        """Explicit children only; empty at the cut frontier."""
        return [child for child in self.base.children(node_id)
                if child.node_id in self._explicit]

    def frontier(self) -> list[TaxonomyNode]:
        """The deepest explicit nodes (candidates for LLM hand-off)."""
        return self.base.nodes_at_level(self.cut_level)

    # ------------------------------------------------------------------
    # Virtual part: LLM-backed navigation
    # ------------------------------------------------------------------
    def locate(self, concept_name: str,
               candidates: list[TaxonomyNode] | None = None
               ) -> TaxonomyNode | None:
        """Find the frontier concept that supertypes ``concept_name``.

        Asks the LLM a True/False supertype question per candidate
        (the case study's "ask about the parent concept of the query"
        step) and returns the first confirmed candidate.
        """
        pool = candidates if candidates is not None else self.frontier()
        for candidate in pool:
            prompt = true_false_prompt(self.base.domain, concept_name,
                                       candidate.name)
            answer = parse_true_false(self.model.generate(prompt))
            if answer is Answer.YES:
                return candidate
        return None
