"""Simulated taxonomy popularity (paper Figure 2)."""

from repro.popularity.estimator import (DEFAULT_SAMPLE,
                                        PopularityEstimate,
                                        concept_hits,
                                        estimate_popularity,
                                        popularity_ranking)

__all__ = [
    "PopularityEstimate",
    "concept_hits",
    "estimate_popularity",
    "popularity_ranking",
    "DEFAULT_SAMPLE",
]
