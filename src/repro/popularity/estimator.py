"""Simulated web-popularity estimation (paper Figure 2).

The paper measures taxonomy popularity as the average number of Google
results for 100 randomly sampled concept names (exact match).  Offline,
hit counts come from a deterministic log-normal corpus model whose
per-taxonomy means are the Figure 2 anchors: common taxonomies (eBay,
Schema.org, Amazon, Google) sit around 10^7 hits, specialized ones
(down to NCBI) orders of magnitude lower.  The estimator samples
concepts and averages exactly like the paper's crawler did, so the
common -> specialized ranking is measured, not asserted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.paper_figures import POPULARITY_LOG10_HITS
from repro.generators.registry import TAXONOMY_KEYS, build_taxonomy
from repro.llm.rng import unit_float
from repro.taxonomy.taxonomy import Taxonomy

#: Concepts sampled per taxonomy (paper samples 100).
DEFAULT_SAMPLE = 100
#: Log10 spread of hit counts within one taxonomy.
_SIGMA = 0.8


def concept_hits(taxonomy_key: str, concept_name: str) -> float:
    """Deterministic simulated exact-match hit count for one concept."""
    mean = POPULARITY_LOG10_HITS[taxonomy_key]
    # Box-Muller on two hash draws gives a deterministic gaussian.
    import math
    u1 = max(unit_float("hits-u1", taxonomy_key, concept_name), 1e-12)
    u2 = unit_float("hits-u2", taxonomy_key, concept_name)
    gaussian = math.sqrt(-2.0 * math.log(u1)) \
        * math.cos(2.0 * math.pi * u2)
    return 10.0 ** (mean + _SIGMA * gaussian)


@dataclass(frozen=True, slots=True)
class PopularityEstimate:
    """Average hit count over a sample of concepts (one Fig. 2 bar)."""

    taxonomy_key: str
    mean_hits: float
    sample_size: int


def estimate_popularity(taxonomy_key: str,
                        taxonomy: Taxonomy | None = None,
                        sample: int = DEFAULT_SAMPLE,
                        seed: str = "popularity") -> PopularityEstimate:
    """Sample concepts and average their simulated hit counts."""
    if taxonomy is None:
        taxonomy = build_taxonomy(taxonomy_key)
    rng = random.Random(f"{seed}|{taxonomy_key}")
    nodes = list(taxonomy.node_ids)
    picked = rng.sample(nodes, min(sample, len(nodes)))
    hits = [concept_hits(taxonomy_key, taxonomy.node(node_id).name)
            for node_id in picked]
    return PopularityEstimate(taxonomy_key, sum(hits) / len(hits),
                              len(hits))


def popularity_ranking(sample: int = DEFAULT_SAMPLE
                       ) -> list[PopularityEstimate]:
    """All taxonomies ranked most to least popular (Figure 2)."""
    estimates = [estimate_popularity(key, sample=sample)
                 for key in TAXONOMY_KEYS]
    return sorted(estimates, key=lambda est: est.mean_hits,
                  reverse=True)
