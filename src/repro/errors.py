"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TaxonomyError(ReproError):
    """Raised when a taxonomy is malformed or an operation is invalid."""


class UnknownNodeError(TaxonomyError):
    """Raised when a node id is not present in a taxonomy."""

    def __init__(self, node_id: str):
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class ValidationError(TaxonomyError):
    """Raised when taxonomy validation fails.

    Carries the full list of problems so callers can report all of them
    at once instead of fixing them one by one.
    """

    def __init__(self, problems: list[str]):
        super().__init__(
            "taxonomy validation failed: " + "; ".join(problems))
        self.problems = list(problems)


class QuestionGenerationError(ReproError):
    """Raised when a question pool cannot be generated as requested."""


class PromptError(ReproError):
    """Raised when a prompt cannot be built or parsed."""


class ModelError(ReproError):
    """Raised when an LLM backend fails or is misconfigured."""


class ModelTransientError(ModelError):
    """A model call failed in a way that is safe to retry.

    Retry contract: backends (and the engine's fault-injection
    middleware) raise this for failures that do not depend on the
    request itself — rate-limit rejections, dropped connections,
    5xx-style server hiccups.  ``engine.middleware.RetryingModel``
    catches it, sleeps one backoff step, and re-issues the *identical*
    prompt; after ``RetryPolicy.retries`` failed attempts it raises a
    plain :class:`ModelError` with this error as the cause.  Raising
    any other exception type opts a failure out of retrying.
    """


class ModelTimeoutError(ModelTransientError):
    """A model call exceeded its per-call time budget.

    Retry contract: raised by ``engine.middleware.TimeoutModel`` when
    one ``generate`` call runs longer than the configured timeout.  It
    subclasses :class:`ModelTransientError`, so the retry middleware
    treats a timeout exactly like any other transient fault: the same
    prompt is retried on a fresh attempt until the policy's budget is
    exhausted.

    Carries ``elapsed`` and ``timeout`` (seconds) for telemetry.
    """

    def __init__(self, elapsed: float, timeout: float):
        super().__init__(f"model call took {elapsed:.3f}s "
                         f"(timeout {timeout:.3f}s)")
        self.elapsed = elapsed
        self.timeout = timeout


class UnknownModelError(ModelError):
    """Raised when a model name is not present in the registry."""

    def __init__(self, name: str, known: list[str] | None = None):
        hint = f" (known: {', '.join(known)})" if known else ""
        super().__init__(f"unknown model: {name!r}{hint}")
        self.name = name


class ExperimentError(ReproError):
    """Raised when an experiment is configured inconsistently."""


class RunError(ReproError):
    """Raised when a ledgered run cannot be created, read or resumed."""


class UnknownRunError(RunError):
    """Raised when a run id is not present in the run registry."""

    def __init__(self, run_id: str, root: str | None = None):
        hint = f" (registry: {root})" if root else ""
        super().__init__(f"unknown run: {run_id!r}{hint}")
        self.run_id = run_id


class LedgerCorruptError(RunError):
    """Raised when a ledger file is unreadable beyond a torn tail.

    A torn *final* line is the expected signature of a crash mid-append
    and is silently dropped by the replayer; corruption anywhere else
    means the file was tampered with or the disk lied, and replaying
    past it could silently resurrect wrong records — so we refuse.
    """

    def __init__(self, path: str, line_number: int, reason: str):
        super().__init__(
            f"corrupt ledger {path}:{line_number}: {reason}")
        self.path = path
        self.line_number = line_number


class CalibrationError(ReproError):
    """Raised when a model profile cannot be calibrated."""
