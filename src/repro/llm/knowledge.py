"""Surface-form knowledge: similarity measures and a heuristic baseline.

The paper explains two anomalies — the NCBI species->genus uplift and
OAE's overall strength — by the surface similarity between child and
parent names.  This module makes the mechanism executable:

* :func:`surface_similarity` scores name overlap (token Jaccard plus a
  containment bonus), and
* :class:`SurfaceHeuristicBaseline` is a 19th "model" that answers
  *only* from name overlap, no knowledge at all.  Benchmarked next to
  the calibrated models it isolates how much of the leaf-level
  performance is surface form (the ablation bench for Finding 2).
"""

from __future__ import annotations

from repro.errors import PromptError
from repro.llm.base import BaseChatModel
from repro.llm.prompt_parsing import parse_prompt
from repro.questions.model import MCQ_LETTERS, QuestionType

#: Similarity at or above which the heuristic answers "Yes".
DEFAULT_THRESHOLD = 0.34


def _tokens(name: str) -> set[str]:
    return {token for token in name.lower().replace("-", " ").split()
            if token}


def surface_similarity(first: str, second: str) -> float:
    """Name-overlap score in [0, 1].

    Token Jaccard, with a 0.5 floor when one name contains the other
    ("Verbascum" in "Verbascum chaixii" scores at least 0.5).
    """
    tokens_a, tokens_b = _tokens(first), _tokens(second)
    if not tokens_a or not tokens_b:
        return 0.0
    jaccard = len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
    lowered_a, lowered_b = first.lower(), second.lower()
    if lowered_a in lowered_b or lowered_b in lowered_a:
        return max(jaccard, 0.5)
    return jaccard


class SurfaceHeuristicBaseline(BaseChatModel):
    """Answers hierarchy questions purely from name overlap.

    Never abstains (zero miss rate, like Flan-T5).  Strong exactly
    where the paper says surface form carries the signal (NCBI
    species->genus, OAE leaves) and near chance elsewhere.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        super().__init__("SurfaceHeuristic")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        self.threshold = threshold

    def _respond(self, prompt: str) -> str:
        try:
            parsed = parse_prompt(prompt)
        except PromptError:
            return "No."
        if parsed.qtype is QuestionType.MCQ:
            scores = [surface_similarity(parsed.child_name, option)
                      for option in parsed.options]
            best = max(range(len(scores)), key=scores.__getitem__)
            return f"{MCQ_LETTERS[best]}) {parsed.options[best]}"
        score = surface_similarity(parsed.child_name, parsed.asked_name)
        return "Yes." if score >= self.threshold else "No."
