"""Deterministic hash-based randomness for the simulated models.

Every stochastic decision a simulated model makes is a pure function of
a tuple of string/int parts (model name, question identity, decision
label).  SHA-256 gives uniform, platform-independent, seed-independent
draws — the whole benchmark is exactly reproducible and no global RNG
state is ever touched.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence


def _digest(parts: tuple) -> bytes:
    text = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).digest()


def unit_float(*parts) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``parts``."""
    raw = int.from_bytes(_digest(parts)[:8], "big")
    return raw / 2.0 ** 64


def stable_index(length: int, *parts) -> int:
    """A deterministic index into a sequence of ``length`` items."""
    if length <= 0:
        raise ValueError("length must be positive")
    return int(unit_float(*parts) * length)


def stable_choice(items: Sequence, *parts):
    """A deterministic pick from ``items`` keyed by ``parts``."""
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    return items[stable_index(len(items), *parts)]
