"""Prompting settings: zero-shot, few-shot and Chain-of-Thoughts.

Mirrors the paper's Figure 5:

* **few-shot** prepends five exemplar question/answer pairs drawn from
  the same taxonomy (positive and negative pairs with equal
  probability, uncle negatives as in the figure);
* **CoT** appends "Let's think step by step." after the question.
"""

from __future__ import annotations

import random
from enum import Enum

from repro.questions.model import (Question, QuestionKind, QuestionType)
from repro.questions.templates import render_question

COT_SUFFIX = "Let's think step by step."
FEW_SHOT_COUNT = 5


class PromptSetting(str, Enum):
    """The three prompting settings evaluated by the paper."""

    ZERO_SHOT = "zero-shot"
    FEW_SHOT = "few-shot"
    COT = "cot"


def few_shot_exemplars(pool_questions: tuple[Question, ...],
                       target: Question,
                       count: int = FEW_SHOT_COUNT) -> list[Question]:
    """Pick exemplars for ``target`` from its pool, balanced pos/neg.

    Exemplars never reuse the target's child entity, and positives and
    negatives are interleaved (the paper samples them with equal
    probability).  Deterministic per target question.
    """
    rng = random.Random(f"fewshot|{target.uid}")
    positives = [q for q in pool_questions
                 if q.kind is QuestionKind.POSITIVE
                 and q.child_id != target.child_id
                 and q.qtype is QuestionType.TRUE_FALSE]
    negatives = [q for q in pool_questions
                 if q.kind in (QuestionKind.NEGATIVE_HARD,
                               QuestionKind.NEGATIVE_EASY)
                 and q.child_id != target.child_id]
    rng.shuffle(positives)
    rng.shuffle(negatives)
    exemplars: list[Question] = []
    for index in range(count):
        source = positives if index % 2 == 0 else negatives
        fallback = negatives if index % 2 == 0 else positives
        if source:
            exemplars.append(source.pop())
        elif fallback:
            exemplars.append(fallback.pop())
    return exemplars


def _exemplar_block(exemplar: Question, variant: int) -> str:
    answer = ("Yes." if exemplar.kind is QuestionKind.POSITIVE
              else "No.")
    return f"Example: {render_question(exemplar, variant)}\n{answer}"


def build_prompt(question: Question, setting: PromptSetting,
                 pool_questions: tuple[Question, ...] = (),
                 variant: int = 0) -> str:
    """Render the full prompt for ``question`` under ``setting``."""
    text = render_question(question, variant)
    if setting is PromptSetting.ZERO_SHOT:
        return text
    if setting is PromptSetting.COT:
        return f"{text} {COT_SUFFIX}"
    blocks = [_exemplar_block(exemplar, variant) for exemplar in
              few_shot_exemplars(pool_questions, question)]
    blocks.append(text)
    return "\n".join(blocks)
