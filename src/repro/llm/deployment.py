"""GPU deployment planning (paper Section 3.2 substrate).

The paper deployed its open-source models on 8x GeForce RTX 3090
(24 GB) plus 4x NVIDIA A100 (80 GB).  This module plans such
deployments: given a GPU fleet and a set of models with fp16 RAM
requirements, it assigns each model a tensor-parallel shard set using
first-fit-decreasing packing, preferring the fewest GPUs per model.

Used by the scalability experiment to answer "does this model fit the
paper's testbed, and on how many cards?" — and usable standalone as a
capacity-planning utility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.llm.costs import cost_estimate

#: Fraction of a GPU's RAM usable for weights (activations, KV cache
#: and CUDA context take the rest).
USABLE_FRACTION = 0.9


@dataclass(frozen=True, slots=True)
class Gpu:
    """One accelerator in the fleet."""

    name: str
    ram_gb: float

    @property
    def usable_gb(self) -> float:
        return self.ram_gb * USABLE_FRACTION


def paper_fleet() -> list[Gpu]:
    """The paper's testbed: 8x RTX 3090 (24 GB) + 4x A100 (80 GB)."""
    fleet = [Gpu(f"rtx3090-{i}", 24.0) for i in range(8)]
    fleet += [Gpu(f"a100-{i}", 80.0) for i in range(4)]
    return fleet


@dataclass(frozen=True, slots=True)
class Placement:
    """Where one model's shards live."""

    model: str
    ram_gb: float
    gpus: tuple[str, ...]

    @property
    def tensor_parallel(self) -> int:
        return len(self.gpus)


@dataclass(slots=True)
class DeploymentPlan:
    """A full fleet assignment."""

    placements: list[Placement] = field(default_factory=list)
    unplaced: list[str] = field(default_factory=list)
    load_gb: dict[str, float] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return not self.unplaced

    def placement_for(self, model: str) -> Placement:
        for placement in self.placements:
            if placement.model == model:
                return placement
        raise ModelError(f"{model!r} is not placed in this plan")

    def as_rows(self) -> list[dict[str, object]]:
        return [{
            "model": placement.model,
            "ram_gb": round(placement.ram_gb, 1),
            "gpus": " ".join(placement.gpus),
            "tensor_parallel": placement.tensor_parallel,
        } for placement in self.placements]


def plan_deployment(models: list[str],
                    fleet: list[Gpu] | None = None) -> DeploymentPlan:
    """Place models on a fleet, big models first.

    Each model is sharded evenly over the smallest homogeneous GPU
    group that fits it (1, 2, 4, ... cards of the same type); shards
    stack on GPUs that still have head-room.
    """
    if fleet is None:
        fleet = paper_fleet()
    plan = DeploymentPlan(load_gb={gpu.name: 0.0 for gpu in fleet})
    by_gpu = {gpu.name: gpu for gpu in fleet}
    needs = sorted(
        ((name, cost_estimate(name).gpu_ram_gb) for name in models),
        key=lambda pair: pair[1], reverse=True)

    for model, ram_gb in needs:
        placed = _place_one(model, ram_gb, by_gpu, plan)
        if placed is None:
            plan.unplaced.append(model)
        else:
            plan.placements.append(placed)
    return plan


def _place_one(model: str, ram_gb: float, by_gpu: dict[str, Gpu],
               plan: DeploymentPlan) -> Placement | None:
    for shard_count in (1, 2, 4, 8):
        per_shard = ram_gb / shard_count
        candidates = [
            gpu.name for gpu in by_gpu.values()
            if gpu.usable_gb - plan.load_gb[gpu.name] >= per_shard
        ]
        if len(candidates) < shard_count:
            continue
        # Prefer the fullest GPUs that still fit (best-fit packing).
        candidates.sort(
            key=lambda name: by_gpu[name].usable_gb
            - plan.load_gb[name])
        chosen = tuple(candidates[:shard_count])
        for name in chosen:
            plan.load_gb[name] += per_shard
        return Placement(model=model, ram_gb=ram_gb, gpus=chosen)
    return None
