"""The chat-model interface every backend implements.

Real endpoints (OpenAI, Anthropic, a local HF pipeline) and the
calibrated simulators plug in behind the same two members: a ``name``
and ``generate(prompt) -> str``.  The evaluation harness knows nothing
else about its models.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class ChatModel(Protocol):
    """Minimal LLM interface used by the harness."""

    name: str

    def generate(self, prompt: str) -> str:
        """Return the model's raw text response to ``prompt``."""
        ...


class BaseChatModel(ABC):
    """Convenience base class with a usage counter.

    Subclasses implement :meth:`_respond`; the public :meth:`generate`
    wraps it with prompt-count bookkeeping that the scalability
    experiment and the tests use.  The counter is guarded by a lock:
    the execution engine calls ``generate`` from many worker threads
    at once, and ``+=`` on a plain int drops increments under
    contention.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("model name must be non-empty")
        self.name = name
        self.prompts_served = 0
        self._served_lock = threading.Lock()

    def generate(self, prompt: str) -> str:
        if not prompt or not prompt.strip():
            raise ValueError("prompt must be non-empty")
        with self._served_lock:
            self.prompts_served += 1
        return self._respond(prompt)

    @abstractmethod
    def _respond(self, prompt: str) -> str:
        """Produce the response text for one prompt."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True, slots=True)
class StaticResponder:
    """A trivial ChatModel returning a fixed string (test double)."""

    name: str
    response: str

    def generate(self, prompt: str) -> str:
        return self.response
