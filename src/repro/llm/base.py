"""The chat-model interface every backend implements.

Real endpoints (OpenAI, Anthropic, a local HF pipeline) and the
calibrated simulators plug in behind the same two members: a ``name``
and ``generate(prompt) -> str``.  The evaluation harness knows nothing
else about its models.

Backends may additionally implement *optional* members the engine
core negotiates at call time:

* ``generate_batch(prompts) -> list[str]`` — answer several prompts
  in one backend round trip (a vLLM-style continuous-batching server,
  an embedding-cache-backed simulator).  The engine's
  :class:`repro.engine.batching.BatchingModel` groups concurrent
  ``generate`` calls and lands them here when the method exists;
  :func:`call_generate_batch` is the negotiation shim that falls back
  to a per-prompt loop when it does not.
* ``agenerate_batch(prompts)`` — the asyncio-native variant, awaited
  directly on the batching dispatcher's event loop so a coroutine
  backend never burns an executor thread.
* ``count_tokens(text) -> int`` — the backend's own tokenizer.  The
  cost accounting layer (:mod:`repro.obs.cost`) resolves a counter
  per model — a registered per-name override first, then this hook,
  then the deterministic chars/4 heuristic — so a backend wrapping a
  real tokenizer is billed on its true token counts.

All are pure capability markers: a backend that implements none of
them behaves exactly as before.
"""

from __future__ import annotations

import inspect
import threading
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class ChatModel(Protocol):
    """Minimal LLM interface used by the harness."""

    name: str

    def generate(self, prompt: str) -> str:
        """Return the model's raw text response to ``prompt``."""
        ...


@runtime_checkable
class BatchChatModel(Protocol):
    """A ChatModel that can answer several prompts in one call."""

    name: str

    def generate(self, prompt: str) -> str:
        ...

    def generate_batch(self, prompts: Sequence[str]) -> list[str]:
        """Responses for ``prompts``, index-aligned with the input."""
        ...


@runtime_checkable
class AsyncChatModel(Protocol):
    """A ChatModel with an asyncio-native batch entry point."""

    name: str

    def generate(self, prompt: str) -> str:
        ...

    async def agenerate_batch(self,
                              prompts: Sequence[str]) -> list[str]:
        """Awaitable batch call, index-aligned with the input."""
        ...


def supports_generate_batch(model: ChatModel) -> bool:
    """Whether ``model`` exposes a callable ``generate_batch``."""
    return callable(getattr(model, "generate_batch", None))


def async_batch_fn(model: ChatModel):
    """``model.agenerate_batch`` if it is a coroutine function,
    else ``None`` (the negotiation probe used by the batching
    dispatcher's event loop)."""
    candidate = getattr(model, "agenerate_batch", None)
    if candidate is not None and inspect.iscoroutinefunction(candidate):
        return candidate
    return None


def call_generate_batch(model: ChatModel,
                        prompts: Sequence[str]) -> list[str]:
    """Protocol negotiation: one batch call when the backend supports
    it, a per-prompt loop otherwise.

    Either way the returned list is index-aligned with ``prompts`` —
    the property the batching scheduler's by-submission-index
    collection relies on.
    """
    if supports_generate_batch(model):
        responses = list(model.generate_batch(prompts))
        if len(responses) != len(prompts):
            raise ValueError(
                f"{model.name}: generate_batch returned "
                f"{len(responses)} responses for {len(prompts)} "
                f"prompts")
        return responses
    return [model.generate(prompt) for prompt in prompts]


class BaseChatModel(ABC):
    """Convenience base class with a usage counter.

    Subclasses implement :meth:`_respond`; the public :meth:`generate`
    wraps it with prompt-count bookkeeping that the scalability
    experiment and the tests use.  The counter is guarded by a lock:
    the execution engine calls ``generate`` from many worker threads
    at once, and ``+=`` on a plain int drops increments under
    contention.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("model name must be non-empty")
        self.name = name
        self.prompts_served = 0
        self._served_lock = threading.Lock()

    def generate(self, prompt: str) -> str:
        if not prompt or not prompt.strip():
            raise ValueError("prompt must be non-empty")
        with self._served_lock:
            self.prompts_served += 1
        return self._respond(prompt)

    def generate_batch(self, prompts: Sequence[str]) -> list[str]:
        """Answer several prompts in one call (index-aligned).

        The default implementation validates and counts every prompt
        under one lock acquisition, then delegates to
        :meth:`_respond_batch` — override *that* to vectorize the
        actual inference while keeping the bookkeeping exact.
        """
        prompts = list(prompts)
        for prompt in prompts:
            if not prompt or not prompt.strip():
                raise ValueError("prompt must be non-empty")
        with self._served_lock:
            self.prompts_served += len(prompts)
        return self._respond_batch(prompts)

    @abstractmethod
    def _respond(self, prompt: str) -> str:
        """Produce the response text for one prompt."""

    def _respond_batch(self, prompts: list[str]) -> list[str]:
        """Produce responses for a batch (default: per-prompt loop)."""
        return [self._respond(prompt) for prompt in prompts]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True, slots=True)
class StaticResponder:
    """A trivial ChatModel returning a fixed string (test double)."""

    name: str
    response: str

    def generate(self, prompt: str) -> str:
        return self.response
