"""Inverse template parsing: from prompt text back to question parts.

The simulated models receive nothing but the prompt string — exactly
like a real endpoint — so they must recover the child concept, the
candidate parent (or the MCQ options), the domain hint carried by the
template's wrapper words, and the prompting setting, all by inverting
the Table 2/3 templates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import PromptError
from repro.llm.prompting import COT_SUFFIX
from repro.questions.model import QuestionType
from repro.questions.templates import (ADJECTIVE_VARIANTS,
                                       RELATION_VARIANTS)
from repro.taxonomy.node import Domain

#: Wrapper suffixes per domain, longest first so specific ones win.
#: Health and Biology templates have no wrapper (empty suffix).
_TF_SUFFIXES: tuple[tuple[Domain, str], ...] = (
    (Domain.COMPUTER_SCIENCE, " computer science research concept"),
    (Domain.MEDICAL, " Adverse Events concept"),
    (Domain.GEOGRAPHY, " geographical concept"),
    (Domain.GENERAL, " entity type"),
    (Domain.SHOPPING, " products"),
    (Domain.LANGUAGE, " language"),
)

_MCQ_SUFFIXES: tuple[tuple[Domain, str], ...] = (
    (Domain.MEDICAL, " Adverse Events concept"),
    (Domain.GEOGRAPHY, " geographical concept"),
    (Domain.COMPUTER_SCIENCE, " research concept"),
    (Domain.GENERAL, " entity type"),
    (Domain.SHOPPING, " product"),
    (Domain.LANGUAGE, " language"),
)

_TF_RE = re.compile(
    r"^(?:Is|Are)\s+(?P<child>.+?)\s+"
    r"(?P<relation>" + "|".join(re.escape(r) for r in RELATION_VARIANTS)
    + r")\s+(?P<parent>.+?)\?\s*answer with \(Yes/No/I don't know\)",
    re.DOTALL)

_MCQ_RE = re.compile(
    r"^What is the most (?P<adjective>"
    + "|".join(ADJECTIVE_VARIANTS)
    + r") supertype of (?P<subject>.+?)\?\s*"
    r"A\)\s*(?P<a>.+?)\s+B\)\s*(?P<b>.+?)\s+C\)\s*(?P<c>.+?)\s+"
    r"D\)\s*(?P<d>.+?)\s*$",
    re.DOTALL)


@dataclass(frozen=True, slots=True)
class ParsedPrompt:
    """Everything a model can learn from the prompt text alone."""

    qtype: QuestionType
    child_name: str
    asked_name: str | None = None        # True/False questions
    options: tuple[str, ...] = field(default=())
    domain_hint: Domain | None = None
    cot: bool = False
    shots: int = 0
    variant: int = 0


def _strip_wrapper(text: str,
                   suffixes: tuple[tuple[Domain, str], ...]
                   ) -> tuple[str, Domain | None]:
    for domain, suffix in suffixes:
        if suffix and text.endswith(suffix):
            return text[: -len(suffix)], domain
    return text, None


def parse_prompt(prompt: str) -> ParsedPrompt:
    """Invert a Table 2/3 template (with optional Fig. 5 decorations)."""
    if not prompt or not prompt.strip():
        raise PromptError("empty prompt")
    cot = COT_SUFFIX.lower() in prompt.lower()
    body = prompt
    if cot:
        index = prompt.lower().rfind(COT_SUFFIX.lower())
        body = prompt[:index]
    lines = [line for line in body.splitlines() if line.strip()]
    shots = sum(1 for line in lines if line.startswith("Example:"))
    question_line = lines[-1].strip()

    mcq = _MCQ_RE.match(question_line)
    if mcq:
        child, domain = _strip_wrapper(mcq.group("subject"),
                                       _MCQ_SUFFIXES)
        return ParsedPrompt(
            qtype=QuestionType.MCQ,
            child_name=child,
            options=(mcq.group("a"), mcq.group("b"), mcq.group("c"),
                     mcq.group("d")),
            domain_hint=domain,
            cot=cot,
            shots=shots,
            variant=ADJECTIVE_VARIANTS.index(mcq.group("adjective")),
        )

    tf = _TF_RE.match(question_line)
    if tf:
        child, child_domain = _strip_wrapper(tf.group("child"),
                                             _TF_SUFFIXES)
        parent, parent_domain = _strip_wrapper(tf.group("parent"),
                                               _TF_SUFFIXES)
        if child_domain is not parent_domain:
            raise PromptError(
                f"inconsistent domain wrappers in prompt: {question_line!r}")
        return ParsedPrompt(
            qtype=QuestionType.TRUE_FALSE,
            child_name=child,
            asked_name=parent,
            domain_hint=child_domain,
            cot=cot,
            shots=shots,
            variant=RELATION_VARIANTS.index(tf.group("relation")),
        )

    raise PromptError(f"prompt does not match any template: "
                      f"{question_line[:120]!r}")
