"""LLM substrate: interface, prompting, parsing, simulators, costs."""

from repro.llm.base import BaseChatModel, ChatModel, StaticResponder
from repro.llm.deployment import (DeploymentPlan, Gpu, Placement,
                                  paper_fleet, plan_deployment)
from repro.llm.costs import (CostEstimate, cost_estimate, fp16_ram_gb,
                             scaling_efficiency, series_cost_table)
from repro.llm.knowledge import (DEFAULT_THRESHOLD,
                                 SurfaceHeuristicBaseline,
                                 surface_similarity)
from repro.llm.oracle import Resolution, TaxonomyOracle, default_oracle
from repro.llm.parsing import parse_answer, parse_mcq, parse_true_false
from repro.llm.profiles import ModelProfile, make_profile
from repro.llm.prompt_parsing import ParsedPrompt, parse_prompt
from repro.llm.prompting import (COT_SUFFIX, FEW_SHOT_COUNT,
                                 PromptSetting, build_prompt,
                                 few_shot_exemplars)
from repro.llm.registry import (MODEL_NAMES, SERIES, all_models,
                                get_model, get_profile, make_model,
                                surface_baseline)
from repro.llm.rng import stable_choice, stable_index, unit_float
from repro.llm.simulated import SimulatedLLM

__all__ = [
    "ChatModel",
    "Gpu",
    "Placement",
    "DeploymentPlan",
    "paper_fleet",
    "plan_deployment",
    "BaseChatModel",
    "StaticResponder",
    "PromptSetting",
    "build_prompt",
    "few_shot_exemplars",
    "COT_SUFFIX",
    "FEW_SHOT_COUNT",
    "ParsedPrompt",
    "parse_prompt",
    "parse_answer",
    "parse_true_false",
    "parse_mcq",
    "TaxonomyOracle",
    "Resolution",
    "default_oracle",
    "ModelProfile",
    "make_profile",
    "SimulatedLLM",
    "MODEL_NAMES",
    "SERIES",
    "get_model",
    "get_profile",
    "make_model",
    "all_models",
    "surface_baseline",
    "SurfaceHeuristicBaseline",
    "surface_similarity",
    "DEFAULT_THRESHOLD",
    "CostEstimate",
    "cost_estimate",
    "fp16_ram_gb",
    "series_cost_table",
    "scaling_efficiency",
    "unit_float",
    "stable_choice",
    "stable_index",
]
