"""The taxonomy oracle: resolving prompt text back to ground truth.

A simulated model only sees the prompt.  To behave like a model whose
pre-training corpus contained the taxonomies, it resolves the concept
names it parsed out of the prompt against the taxonomy registry (its
"pre-training data") and recovers: which taxonomy the question is
about, the question kind (positive / easy negative / hard negative),
the level being probed, and the ground truth — everything the
calibrated answering policy conditions on.

Product instances (Amazon / Google instance typing) resolve through a
lazily built product-title index, since those names are instances
rather than taxonomy nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_figures import LEVEL_SHAPES
from repro.generators.products import products_for_node
from repro.generators.registry import TAXONOMY_KEYS, build_taxonomy
from repro.llm.prompt_parsing import ParsedPrompt
from repro.questions.model import QuestionKind, QuestionType
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy

#: Domain hint -> taxonomy keys that can match it.  Health and Biology
#: templates carry no wrapper, so no hint means either of those (or a
#: custom taxonomy) — the oracle then tries every index.
_DOMAIN_KEYS: dict[Domain, tuple[str, ...]] = {
    Domain.SHOPPING: ("ebay", "amazon", "google"),
    Domain.GENERAL: ("schema",),
    Domain.COMPUTER_SCIENCE: ("acm_ccs",),
    Domain.GEOGRAPHY: ("geonames",),
    Domain.LANGUAGE: ("glottolog",),
    Domain.MEDICAL: ("oae",),
}

_PRODUCT_KEYS = ("amazon", "google")
_PRODUCTS_PER_CATEGORY = 3


@dataclass(frozen=True, slots=True)
class Resolution:
    """What the oracle recovered about one prompt."""

    taxonomy_key: str
    qtype: QuestionType
    kind: QuestionKind
    truth: bool                  # True/False questions: is the answer Yes
    shape_level: int             # index into LEVEL_SHAPES[taxonomy_key]
    child_ref: str               # node id, or instance title
    asked_ref: str               # node id of the asked parent / "mcq"
    is_instance: bool = False
    correct_option: int | None = None
    #: Structural-coherence rank used to disambiguate when the same
    #: concept names exist in several taxonomies (shopping taxonomies
    #: share vocabulary): direct edges beat uncles beat same-level
    #: distractors beat ancestor-chain (typing) readings.
    rank: int = 0


class TaxonomyOracle:
    """Resolves concept names against a set of taxonomies."""

    def __init__(self, taxonomies: dict[str, Taxonomy] | None = None):
        self._taxonomies: dict[str, Taxonomy] = dict(taxonomies or {})
        self._lazy = taxonomies is None
        self._name_index: dict[str, dict[str, str]] = {}
        self._instance_index: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------
    def _keys(self) -> tuple[str, ...]:
        if self._lazy:
            return TAXONOMY_KEYS
        return tuple(self._taxonomies)

    def taxonomy(self, key: str) -> Taxonomy:
        if key not in self._taxonomies:
            if not self._lazy:
                raise KeyError(key)
            self._taxonomies[key] = build_taxonomy(key)
        return self._taxonomies[key]

    def _names(self, key: str) -> dict[str, str]:
        if key not in self._name_index:
            self._name_index[key] = {
                node.name: node.node_id for node in self.taxonomy(key)}
        return self._name_index[key]

    def _instances(self, key: str) -> dict[str, str]:
        """Product-title -> anchor-node-id index (shopping only)."""
        if key not in self._instance_index:
            index: dict[str, str] = {}
            if key in _PRODUCT_KEYS:
                taxonomy = self.taxonomy(key)
                deepest = taxonomy.num_levels - 1
                for node in taxonomy.nodes_at_level(deepest):
                    for title in products_for_node(
                            taxonomy, node.node_id,
                            _PRODUCTS_PER_CATEGORY):
                        index[title] = node.node_id
            self._instance_index[key] = index
        return self._instance_index[key]

    def _candidate_keys(self, hint: Domain | None) -> tuple[str, ...]:
        if hint is None:
            return self._keys()
        keys = _DOMAIN_KEYS.get(hint, ())
        return tuple(key for key in keys if key in self._keys()) \
            or self._keys()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, parsed: ParsedPrompt) -> Resolution | None:
        """Ground a parsed prompt; None when concepts are unknown.

        When names resolve in several taxonomies (the shopping
        taxonomies share vocabulary), the structurally most coherent
        reading wins: a taxonomy where the asked concept is the child's
        parent (or uncle) explains the question better than one where
        the two names are unrelated.
        """
        best: Resolution | None = None
        for key in self._candidate_keys(parsed.domain_hint):
            resolution = self._resolve_in(key, parsed)
            if resolution is None:
                continue
            if best is None or resolution.rank < best.rank:
                best = resolution
            if best.rank == 0:
                break
        return best

    def _resolve_in(self, key: str,
                    parsed: ParsedPrompt) -> Resolution | None:
        names = self._names(key)
        child_id = names.get(parsed.child_name)
        if parsed.qtype is QuestionType.MCQ:
            if child_id is None:
                return None
            return self._resolve_mcq(key, child_id, parsed)
        asked_id = names.get(parsed.asked_name)
        if asked_id is None:
            return None
        if child_id is not None:
            return self._resolve_hierarchy(key, child_id, asked_id)
        anchor_id = self._instances(key).get(parsed.child_name)
        if anchor_id is not None:
            return self._resolve_instance(key, parsed.child_name,
                                          anchor_id, asked_id)
        return None

    def _shape_level(self, key: str, level: int) -> int:
        shape = LEVEL_SHAPES.get(key, (0.0,))
        return max(0, min(level, len(shape) - 1))

    def _resolve_hierarchy(self, key: str, child_id: str,
                           asked_id: str) -> Resolution:
        taxonomy = self.taxonomy(key)
        child = taxonomy.node(child_id)
        asked = taxonomy.node(asked_id)
        parent = taxonomy.parent(child_id)
        if parent is not None and asked_id == parent.node_id:
            return Resolution(key, QuestionType.TRUE_FALSE,
                              QuestionKind.POSITIVE, True,
                              self._shape_level(key, child.level - 1),
                              child_id, asked_id, rank=0)
        if asked.level == child.level - 1:
            uncles = {node.node_id
                      for node in taxonomy.uncles(child_id)}
            kind = (QuestionKind.NEGATIVE_HARD if asked_id in uncles
                    else QuestionKind.NEGATIVE_EASY)
            rank = 1 if kind is QuestionKind.NEGATIVE_HARD else 2
            return Resolution(key, QuestionType.TRUE_FALSE, kind, False,
                              self._shape_level(key, child.level - 1),
                              child_id, asked_id, rank=rank)
        # Instance-typing phrasing: the "child" is itself a taxonomy
        # node typed against a higher ancestor (paper Section 4.5).
        return self._typing_resolution(key, taxonomy, child, child_id,
                                       asked, is_instance=False)

    def _resolve_instance(self, key: str, title: str, anchor_id: str,
                          asked_id: str) -> Resolution:
        taxonomy = self.taxonomy(key)
        anchor = taxonomy.node(anchor_id)
        asked = taxonomy.node(asked_id)
        return self._typing_resolution(key, taxonomy, anchor, title,
                                       asked, is_instance=True,
                                       anchor_is_target=True)

    def _typing_resolution(self, key: str, taxonomy: Taxonomy,
                           anchor: TaxonomyNode, child_ref: str,
                           asked: TaxonomyNode, is_instance: bool,
                           anchor_is_target: bool = False) -> Resolution:
        """Classify an instance-typing pair against the ancestor chain.

        ``anchor`` is the node the instance hangs under (or the node
        itself when leaf entities act as instances); ``anchor_is_target``
        marks product instances, where the anchor itself is a valid
        type.
        """
        chain = ([anchor] if anchor_is_target else []) \
            + list(taxonomy.ancestors(anchor.node_id))
        chain_ids = {node.node_id for node in chain}
        truth = asked.node_id in chain_ids
        kind = QuestionKind.POSITIVE
        rank = 3
        if not truth:
            ancestor_at_level = next(
                (node for node in chain if node.level == asked.level),
                None)
            siblings: set[str] = set()
            if ancestor_at_level is not None:
                siblings = {
                    node.node_id for node in
                    taxonomy.siblings(ancestor_at_level.node_id)}
            if asked.node_id in siblings:
                kind, rank = QuestionKind.NEGATIVE_HARD, 4
            else:
                kind, rank = QuestionKind.NEGATIVE_EASY, 5
        return Resolution(key, QuestionType.TRUE_FALSE, kind, truth,
                          self._shape_level(key, asked.level),
                          child_ref, asked.node_id,
                          is_instance=is_instance, rank=rank)

    def _resolve_mcq(self, key: str, child_id: str,
                     parsed: ParsedPrompt) -> Resolution | None:
        taxonomy = self.taxonomy(key)
        child = taxonomy.node(child_id)
        parent = taxonomy.parent(child_id)
        if parent is None:
            return None
        names = self._names(key)
        resolved = sum(1 for option in parsed.options
                       if option in names)
        if resolved < 2:
            return None
        correct = None
        for index, option in enumerate(parsed.options):
            if option == parent.name:
                correct = index
                break
        return Resolution(key, QuestionType.MCQ, QuestionKind.MCQ,
                          correct is not None,
                          self._shape_level(key, child.level - 1),
                          child_id, "mcq", correct_option=correct,
                          rank=0 if correct is not None else 4)


_default_oracle: TaxonomyOracle | None = None


def default_oracle() -> TaxonomyOracle:
    """Process-wide oracle over the default synthetic taxonomies."""
    global _default_oracle
    if _default_oracle is None:
        _default_oracle = TaxonomyOracle()
    return _default_oracle
