"""Inference cost model (paper Figure 7 scalability study).

The paper measures GPU RAM and mean per-question latency on 8x RTX 3090
plus 4x A100.  Offline, both are modelled analytically:

* RAM ~= fp16 weights (2 bytes/parameter) plus ~6% runtime overhead —
  this matches the embedded figure anchors, and the model is exposed
  so the relationship is testable;
* latency comes from the embedded per-model anchors, which encode the
  figure's qualitative story (encoder-decoder Flan-T5s are fastest,
  Falcon-40B is disproportionately slow, Llama-3-70B and Vicuna-33B
  scale sub-linearly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_figures import SCALABILITY, SERIES_MEMBERS
from repro.errors import ModelError

_BYTES_PER_PARAM_FP16 = 2.0
_RUNTIME_OVERHEAD = 1.065


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """Deployment cost card for one open-source model."""

    model: str
    params_b: float
    gpu_ram_gb: float
    seconds_per_question: float

    @property
    def questions_per_hour(self) -> float:
        return 3600.0 / self.seconds_per_question


def fp16_ram_gb(params_b: float) -> float:
    """Analytic fp16 deployment RAM for a dense parameter count."""
    if params_b <= 0:
        raise ValueError("params_b must be positive")
    return params_b * _BYTES_PER_PARAM_FP16 * _RUNTIME_OVERHEAD


def cost_estimate(model: str) -> CostEstimate:
    """Figure 7 cost card for ``model`` (open-source models only)."""
    if model not in SCALABILITY:
        raise ModelError(
            f"no scalability data for {model!r} (API models were not "
            f"profiled by the paper)")
    params_b, ram_gb, seconds = SCALABILITY[model]
    return CostEstimate(model, params_b, ram_gb, seconds)


def series_cost_table() -> dict[str, list[CostEstimate]]:
    """Figure 7's per-series panels: estimates in ascending size."""
    return {series: [cost_estimate(member) for member in members]
            for series, members in SERIES_MEMBERS.items()}


def scaling_efficiency(series: str) -> float:
    """Latency growth per parameter growth across a series.

    Values near (or below) zero mean "good scalability" in the paper's
    sense: inference time barely grows as the model size grows.
    Computed as log(time ratio) / log(param ratio) between the largest
    and smallest members.
    """
    import math

    table = series_cost_table()
    if series not in table:
        raise ModelError(f"unknown series: {series!r}")
    estimates = table[series]
    if len(estimates) < 2:
        raise ModelError(f"series {series!r} has a single member")
    small, large = estimates[0], estimates[-1]
    return (math.log(large.seconds_per_question
                     / small.seconds_per_question)
            / math.log(large.params_b / small.params_b))
