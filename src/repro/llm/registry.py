"""Registry of the eighteen evaluated models (paper Section 3.1).

Profiles carry the series/size/tuning card used by the analysis
experiments (model size scaling, domain-agnostic vs domain-specific
fine-tuning) and are instantiated as :class:`SimulatedLLM` backends.
The extra :class:`SurfaceHeuristicBaseline` ablation model is exposed
separately and never counted among "the eighteen".
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import UnknownModelError
from repro.llm.knowledge import SurfaceHeuristicBaseline
from repro.llm.oracle import TaxonomyOracle
from repro.llm.profiles import ModelProfile, make_profile
from repro.llm.simulated import SimulatedLLM

#: name -> (series, params_b, architecture, tuning, style)
_CARDS: dict[str, tuple[str, float | None, str, str, str]] = {
    "GPT-3.5": ("GPTs", None, "api", "api", "verbose"),
    "GPT-4": ("GPTs", None, "api", "api", "verbose"),
    "Claude-3": ("Claude", None, "api", "api", "verbose"),
    "Llama-2-7B": ("Llama-2s", 7.0, "decoder", "chat", "terse"),
    "Llama-2-13B": ("Llama-2s", 13.0, "decoder", "chat", "terse"),
    "Llama-2-70B": ("Llama-2s", 70.0, "decoder", "chat", "terse"),
    "Llama-3-8B": ("Llama-3s", 8.0, "decoder", "instruct", "terse"),
    "Llama-3-70B": ("Llama-3s", 70.0, "decoder", "instruct", "terse"),
    "Flan-T5-3B": ("Flan-T5s", 3.0, "encoder-decoder", "instruct",
                   "terse"),
    "Flan-T5-11B": ("Flan-T5s", 11.0, "encoder-decoder", "instruct",
                    "terse"),
    "Falcon-7B": ("Falcons", 7.0, "decoder", "instruct", "terse"),
    "Falcon-40B": ("Falcons", 40.0, "decoder", "instruct", "terse"),
    "Vicuna-7B": ("Vicunas", 7.0, "decoder", "domain-agnostic",
                  "verbose"),
    "Vicuna-13B": ("Vicunas", 13.0, "decoder", "domain-agnostic",
                   "verbose"),
    "Vicuna-33B": ("Vicunas", 33.0, "decoder", "domain-agnostic",
                   "verbose"),
    "Mistral": ("Mistrals", 7.0, "decoder", "instruct", "terse"),
    "Mixtral": ("Mistrals", 46.7, "moe", "instruct", "terse"),
    "LLMs4OL": ("LLMs4OL", 3.0, "encoder-decoder", "domain-specific",
                "terse"),
}

MODEL_NAMES: tuple[str, ...] = tuple(_CARDS)

#: Series groupings used by the size-scaling analysis (Section 4.3).
SERIES: dict[str, tuple[str, ...]] = {
    "GPTs": ("GPT-3.5", "GPT-4"),
    "Llama-2s": ("Llama-2-7B", "Llama-2-13B", "Llama-2-70B"),
    "Llama-3s": ("Llama-3-8B", "Llama-3-70B"),
    "Flan-T5s": ("Flan-T5-3B", "Flan-T5-11B"),
    "Falcons": ("Falcon-7B", "Falcon-40B"),
    "Vicunas": ("Vicuna-7B", "Vicuna-13B", "Vicuna-33B"),
    "Mistrals": ("Mistral", "Mixtral"),
}


def get_profile(name: str) -> ModelProfile:
    """The calibration card for one of the eighteen models."""
    if name not in _CARDS:
        raise UnknownModelError(name, list(MODEL_NAMES))
    series, params_b, architecture, tuning, style = _CARDS[name]
    return make_profile(name, series, params_b, architecture, tuning,
                        response_style=style)


@lru_cache(maxsize=32)
def get_model(name: str) -> SimulatedLLM:
    """A (cached) simulated backend over the default oracle."""
    return SimulatedLLM(get_profile(name))


def make_model(name: str, oracle: TaxonomyOracle) -> SimulatedLLM:
    """A simulated backend bound to a custom oracle (custom taxonomies)."""
    return SimulatedLLM(get_profile(name), oracle=oracle)


def all_models() -> list[SimulatedLLM]:
    """All eighteen simulated models, paper order."""
    return [get_model(name) for name in MODEL_NAMES]


def surface_baseline() -> SurfaceHeuristicBaseline:
    """The name-overlap ablation baseline (not one of the eighteen)."""
    return SurfaceHeuristicBaseline()
