"""Parsing raw model output back into canonical answers.

Real LLMs rarely answer with a bare "Yes": they hedge, explain, or
prefix with reasoning (especially under Chain-of-Thoughts).  The
parser therefore searches for decisive markers in priority order and
falls back to :data:`Answer.UNPARSEABLE` — which the metrics count as a
miss, exactly how the paper treats non-answers.
"""

from __future__ import annotations

import re

from repro.questions.model import Answer, MCQ_LETTERS, Question, \
    QuestionType, letter_answer

_IDK_MARKERS = (
    "i don't know", "i do not know", "i dont know", "cannot determine",
    "can't determine", "not sure", "unable to determine", "uncertain",
    "cannot answer", "no idea", "insufficient information",
)

# "the answer is yes", "answer: no" style conclusions take priority:
# under CoT the reasoning may mention both yes and no before concluding.
_CONCLUSION_RE = re.compile(
    r"(?:answer\s*(?:is|:)|conclusion\s*(?:is|:))\s*\(?\"?'?"
    r"(yes|no|[a-d])\b", re.IGNORECASE)
_LEADING_RE = re.compile(r"^\W*(yes|no)\b", re.IGNORECASE)
_ANY_YESNO_RE = re.compile(r"\b(yes|no)\b", re.IGNORECASE)
_LETTER_RE = re.compile(r"\b([A-D])\)", )
_BARE_LETTER_RE = re.compile(r"^\W*([A-D])\b")


def _is_idk(lowered: str) -> bool:
    return any(marker in lowered for marker in _IDK_MARKERS)


def parse_true_false(text: str) -> Answer:
    """Parse a Yes/No/I-don't-know response."""
    lowered = text.strip().lower()
    if not lowered:
        return Answer.UNPARSEABLE
    conclusion = _CONCLUSION_RE.search(text)
    if conclusion:
        token = conclusion.group(1).lower()
        if token in ("yes", "no"):
            return Answer.YES if token == "yes" else Answer.NO
    if _is_idk(lowered):
        return Answer.IDK
    leading = _LEADING_RE.match(text)
    if leading:
        return (Answer.YES if leading.group(1).lower() == "yes"
                else Answer.NO)
    anywhere = _ANY_YESNO_RE.search(text)
    if anywhere:
        return (Answer.YES if anywhere.group(1).lower() == "yes"
                else Answer.NO)
    return Answer.UNPARSEABLE


def parse_mcq(text: str, options: tuple[str, ...] = ()) -> Answer:
    """Parse an A-D multiple choice response.

    Falls back to matching the option *text* when no letter is present
    ("The supertype is Stationery.").
    """
    stripped = text.strip()
    if not stripped:
        return Answer.UNPARSEABLE
    conclusion = _CONCLUSION_RE.search(text)
    if conclusion and conclusion.group(1).upper() in MCQ_LETTERS:
        return letter_answer(conclusion.group(1).upper())
    bare = _BARE_LETTER_RE.match(stripped)
    if bare:
        return letter_answer(bare.group(1))
    lettered = _LETTER_RE.search(text)
    if lettered:
        return letter_answer(lettered.group(1))
    lowered = stripped.lower()
    if _is_idk(lowered):
        return Answer.IDK
    for index, option in enumerate(options):
        if option.lower() in lowered:
            return letter_answer(MCQ_LETTERS[index])
    return Answer.UNPARSEABLE


def parse_answer(text: str, question: Question) -> Answer:
    """Parse ``text`` according to the question's template family."""
    if question.qtype is QuestionType.MCQ:
        return parse_mcq(text, question.options)
    return parse_true_false(text)
