"""The calibrated simulated LLM.

``SimulatedLLM.generate`` walks the same path a real endpoint would
force on the harness:

1. parse the prompt text (no side channel — only the string),
2. resolve the concepts against the taxonomy oracle ("pre-training
   knowledge"),
3. decide to abstain or answer using the profile's calibrated policy
   (deterministic hash draws: the same fact always gets the same
   answer, across datasets and prompting settings),
4. render a free-form text response in the model's style, which the
   harness must parse back.

Unknown concepts (not in any taxonomy) yield an honest "I don't know.",
like a real model probed about made-up entities would at temperature 0
with a cautious system prompt.
"""

from __future__ import annotations

from repro.errors import PromptError
from repro.llm.base import BaseChatModel
from repro.llm.oracle import Resolution, TaxonomyOracle, default_oracle
from repro.llm.profiles import ModelProfile
from repro.llm.prompt_parsing import ParsedPrompt, parse_prompt
from repro.llm.prompting import PromptSetting
from repro.llm.rng import stable_choice, unit_float
from repro.questions.model import MCQ_LETTERS, QuestionType

_IDK_TEXTS = (
    "I don't know.",
    "I'm not sure, I don't know.",
    "I don't know the answer to that.",
)

_YES_TERSE = ("Yes.", "Yes")
_NO_TERSE = ("No.", "No")


class SimulatedLLM(BaseChatModel):
    """A deterministic, calibrated stand-in for one paper model."""

    def __init__(self, profile: ModelProfile,
                 oracle: TaxonomyOracle | None = None):
        super().__init__(profile.name)
        self.profile = profile
        self._oracle = oracle if oracle is not None else default_oracle()

    # ------------------------------------------------------------------
    def _respond(self, prompt: str) -> str:
        try:
            parsed = parse_prompt(prompt)
        except PromptError:
            # Free-form prompt outside the benchmark templates.
            return self._idk(prompt)
        resolution = self._oracle.resolve(parsed)
        if resolution is None:
            return self._idk(parsed.child_name)
        setting = self._setting(parsed)
        miss, conditional = self.profile.policy(resolution, setting)

        if unit_float(self.name, "miss", setting.value,
                      resolution.taxonomy_key, resolution.child_ref,
                      resolution.asked_ref) < miss:
            return self._idk(resolution.child_ref)
        knows = unit_float(self.name, "know", resolution.taxonomy_key,
                           resolution.child_ref,
                           resolution.asked_ref) < conditional
        if resolution.qtype is QuestionType.MCQ:
            return self._mcq_response(parsed, resolution, knows)
        return self._tf_response(parsed, resolution, knows)

    @staticmethod
    def _setting(parsed: ParsedPrompt) -> PromptSetting:
        if parsed.shots:
            return PromptSetting.FEW_SHOT
        if parsed.cot:
            return PromptSetting.COT
        return PromptSetting.ZERO_SHOT

    # ------------------------------------------------------------------
    # Response rendering
    # ------------------------------------------------------------------
    def _idk(self, key: str) -> str:
        return stable_choice(_IDK_TEXTS, self.name, "idk", key)

    def _tf_response(self, parsed: ParsedPrompt, resolution: Resolution,
                     knows: bool) -> str:
        say_yes = resolution.truth if knows else not resolution.truth
        if self.profile.response_style == "verbose":
            reasoning = ""
            if parsed.cot:
                reasoning = (f"Let's consider {parsed.child_name} and "
                             f"{parsed.asked_name}. ")
            if say_yes:
                return (f"{reasoning}Yes, {parsed.child_name} is a type "
                        f"of {parsed.asked_name}.")
            return (f"{reasoning}No, {parsed.child_name} is not a type "
                    f"of {parsed.asked_name}.")
        pool = _YES_TERSE if say_yes else _NO_TERSE
        return stable_choice(pool, self.name, "tf", resolution.child_ref,
                             resolution.asked_ref)

    def _mcq_response(self, parsed: ParsedPrompt,
                      resolution: Resolution, knows: bool) -> str:
        if knows and resolution.correct_option is not None:
            index = resolution.correct_option
        else:
            wrong = [i for i in range(len(MCQ_LETTERS))
                     if i != resolution.correct_option]
            index = stable_choice(wrong, self.name, "mcq-wrong",
                                  resolution.child_ref)
        letter = MCQ_LETTERS[index]
        option = parsed.options[index]
        if self.profile.response_style == "verbose":
            return (f"The most appropriate supertype is "
                    f"{letter}) {option}.")
        return f"{letter}) {option}"
