"""Model profiles: calibrated answering parameters per model.

A profile binds one of the paper's eighteen models to

* its reported (accuracy, miss-rate) anchors from Tables 5-7,
* the root-to-leaf shape of Figure 3,
* the prompting-setting effects of Figure 4, and
* card data (series, parameter count, architecture, tuning style)
  used by the scalability and ablation experiments.

The per-question-kind decomposition: the easy dataset is half
positives, half easy negatives, and the paper's positive questions are
shared between the easy and hard datasets.  Taking the positive
accuracy equal to the easy-dataset accuracy makes the easy set
consistent by construction and pins the hard-negative accuracy at
``2 * hard - easy`` (clamped), so both reported dataset means are
reproduced by one coherent set of per-kind probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper_figures import (LEVEL_SHAPES, PROMPTING_EFFECTS,
                                      latent_accuracy)
from repro.data.paper_tables import PAPER_RESULTS
from repro.errors import CalibrationError
from repro.llm.oracle import Resolution
from repro.llm.prompting import PromptSetting
from repro.questions.model import QuestionKind, QuestionType

_ACC_FLOOR, _ACC_CEIL = 0.01, 0.99
#: Above this miss rate the reported accuracy pins the conditional
#: accuracy too loosely; the profile's latent accuracy takes over.
_MISS_PINNED = 0.95


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(high, value))


@dataclass(frozen=True, slots=True)
class ModelProfile:
    """Static calibration card for one simulated model."""

    name: str
    series: str
    params_b: float | None          # None for API-only models
    open_source: bool
    architecture: str               # "decoder" | "encoder-decoder" | "moe" | "api"
    tuning: str                     # "chat" | "instruct" | "domain-agnostic" | "domain-specific" | "api"
    fewshot_miss_factor: float
    cot_miss_factor: float
    latent_accuracy: float
    response_style: str             # "terse" | "verbose"

    # ------------------------------------------------------------------
    # Anchors
    # ------------------------------------------------------------------
    def cell(self, dataset: str, taxonomy_key: str) -> tuple[float, float]:
        """The paper's (accuracy, miss) for this model/dataset/taxonomy.

        Custom taxonomies (absent from the paper) fall back to the
        model's average behaviour across the ten paper taxonomies, so
        user-supplied taxonomies still get a plausible simulation.
        """
        try:
            rows = PAPER_RESULTS[dataset][self.name]
        except KeyError as exc:
            raise CalibrationError(
                f"no paper anchors for {self.name}/{dataset}") from exc
        if taxonomy_key in rows:
            return rows[taxonomy_key]
        cells = list(rows.values())
        accuracy = sum(cell[0] for cell in cells) / len(cells)
        miss = sum(cell[1] for cell in cells) / len(cells)
        return accuracy, miss

    def kind_params(self, kind: QuestionKind,
                    taxonomy_key: str) -> tuple[float, float]:
        """Per-question-kind (accuracy, miss) before level shaping."""
        easy_a, easy_m = self.cell("easy", taxonomy_key)
        if kind in (QuestionKind.POSITIVE, QuestionKind.NEGATIVE_EASY):
            return easy_a, easy_m
        if kind is QuestionKind.NEGATIVE_HARD:
            hard_a, hard_m = self.cell("hard", taxonomy_key)
            acc = _clamp(2.0 * hard_a - easy_a, _ACC_FLOOR, _ACC_CEIL)
            miss = _clamp(2.0 * hard_m - easy_m, 0.0, 1.0)
            return acc, miss
        if kind is QuestionKind.MCQ:
            return self.cell("mcq", taxonomy_key)
        raise CalibrationError(f"unknown question kind: {kind}")

    def question_params(self,
                        resolution: Resolution) -> tuple[float, float]:
        """(accuracy, miss) for one resolved question, level-shaped."""
        acc, miss = self.kind_params(resolution.kind,
                                     resolution.taxonomy_key)
        shape = LEVEL_SHAPES.get(resolution.taxonomy_key, (0.0,))
        acc = _clamp(acc + shape[resolution.shape_level],
                     _ACC_FLOOR, _ACC_CEIL)
        if acc + miss > 1.0:
            miss = 1.0 - acc
        return acc, miss

    # ------------------------------------------------------------------
    # Behaviour under prompting settings and decomposition to a policy
    # ------------------------------------------------------------------
    def conditional_accuracy(self, acc: float, miss: float) -> float:
        """P(correct | answered) — intrinsic knowledge, setting-free."""
        if miss >= _MISS_PINNED:
            return self.latent_accuracy
        return _clamp(acc / (1.0 - miss), 0.0, 1.0)

    def miss_under(self, miss: float, setting: PromptSetting) -> float:
        """Miss rate after applying the prompting-setting effect."""
        if setting is PromptSetting.ZERO_SHOT:
            return miss
        factor = (self.fewshot_miss_factor
                  if setting is PromptSetting.FEW_SHOT
                  else self.cot_miss_factor)
        return _clamp(miss * factor, 0.0, 0.999)

    def policy(self, resolution: Resolution,
               setting: PromptSetting) -> tuple[float, float]:
        """(miss probability, conditional accuracy) for one question.

        The conditional accuracy is independent of the setting, which
        is what makes few-shot mostly *redistribute* mass from "I don't
        know" to best guesses instead of creating knowledge
        (paper Finding 4).
        """
        acc, miss = self.question_params(resolution)
        conditional = self.conditional_accuracy(acc, miss)
        return self.miss_under(miss, setting), conditional


def make_profile(name: str, series: str, params_b: float | None,
                 architecture: str, tuning: str,
                 response_style: str = "terse") -> ModelProfile:
    """Build a profile wiring in the paper-derived behaviour tables."""
    fewshot, cot = PROMPTING_EFFECTS[name]
    return ModelProfile(
        name=name,
        series=series,
        params_b=params_b,
        open_source=architecture != "api",
        architecture=architecture,
        tuning=tuning,
        fewshot_miss_factor=fewshot,
        cot_miss_factor=cot,
        latent_accuracy=latent_accuracy(name),
        response_style=response_style,
    )
