"""The evaluation runner: model x pool x prompting setting.

The loop is the one the paper ran against real endpoints: render the
prompt (with few-shot exemplars from the same pool when requested),
send it to the model, parse the raw text response, score it.  Models
are opaque :class:`ChatModel` objects — swap a simulated backend for a
real API client and nothing here changes.

A runner can optionally carry a
:class:`repro.engine.EvaluationEngine`: every ``evaluate*`` call then
fans out over the engine's worker pool behind its middleware stack
(cache, retry, rate limit, timeout).  Records come back in question
order either way, so the engine path yields bit-identical metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.metrics import Metrics
from repro.core.results import (PoolResult, QuestionRecord,
                                metrics_from_records)
from repro.llm.base import ChatModel
from repro.llm.parsing import parse_answer
from repro.llm.prompting import PromptSetting, build_prompt
from repro.questions.model import Question
from repro.questions.pools import QuestionPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.engine.scheduler import EvaluationEngine


class EvaluationRunner:
    """Drives models over question pools and scores the answers."""

    def __init__(self, variant: int = 0, keep_records: bool = False,
                 engine: "EvaluationEngine | None" = None):
        #: Template paraphrase variant (0 is the paper's main results).
        self.variant = variant
        #: Whether PoolResults carry per-question records.
        self.keep_records = keep_records
        #: Optional execution engine; ``None`` runs sequentially.
        self.engine = engine

    def ask(self, model: ChatModel, question: Question,
            setting: PromptSetting = PromptSetting.ZERO_SHOT,
            pool_questions: tuple[Question, ...] = ()) -> QuestionRecord:
        """One question -> one scored interaction record."""
        prompt = build_prompt(question, setting,
                              pool_questions=pool_questions,
                              variant=self.variant)
        response = model.generate(prompt)
        parsed = parse_answer(response, question)
        return QuestionRecord(
            question_uid=question.uid,
            model=model.name,
            setting=setting.value,
            response=response,
            parsed=parsed,
            expected=question.expected_answer,
        )

    def _ask_all(self, model: ChatModel,
                 questions: tuple[Question, ...],
                 setting: PromptSetting,
                 pool_questions: tuple[Question, ...]
                 ) -> list[QuestionRecord]:
        """All records, in question order, engine-accelerated if set."""
        if self.engine is None:
            return [self.ask(model, question, setting,
                             pool_questions=pool_questions)
                    for question in questions]
        return self.engine.run(
            model, questions,
            lambda wrapped, question: self.ask(
                wrapped, question, setting,
                pool_questions=pool_questions))

    def evaluate(self, model: ChatModel, pool: QuestionPool,
                 setting: PromptSetting = PromptSetting.ZERO_SHOT
                 ) -> PoolResult:
        """Score ``model`` on every question of ``pool``."""
        records = self._ask_all(model, pool.questions, setting,
                                pool_questions=pool.questions)
        return PoolResult(
            pool_label=pool.label,
            model=model.name,
            setting=setting.value,
            metrics=metrics_from_records(records),
            records=tuple(records) if self.keep_records else (),
        )

    def evaluate_questions(self, model: ChatModel,
                           questions: tuple[Question, ...],
                           setting: PromptSetting =
                           PromptSetting.ZERO_SHOT,
                           label: str = "ad-hoc") -> PoolResult:
        """Score a bare question tuple (instance typing pools)."""
        records = self._ask_all(model, questions, setting,
                                pool_questions=questions)
        return PoolResult(
            pool_label=label,
            model=model.name,
            setting=setting.value,
            metrics=metrics_from_records(records),
            records=tuple(records) if self.keep_records else (),
        )

    def evaluate_matrix(self, models: list[ChatModel],
                        pools: dict[str, QuestionPool],
                        setting: PromptSetting = PromptSetting.ZERO_SHOT
                        ) -> dict[tuple[str, str], Metrics]:
        """The Tables 5-7 shape: (model, taxonomy) -> metrics."""
        matrix: dict[tuple[str, str], Metrics] = {}
        for model in models:
            for taxonomy_key, pool in pools.items():
                result = self.evaluate(model, pool, setting)
                matrix[model.name, taxonomy_key] = result.metrics
        return matrix
