"""The evaluation runner: model x pool x prompting setting.

The loop is the one the paper ran against real endpoints: render the
prompt (with few-shot exemplars from the same pool when requested),
send it to the model, parse the raw text response, score it.  Models
are opaque :class:`ChatModel` objects — swap a simulated backend for a
real API client and nothing here changes.

A runner can optionally carry a
:class:`repro.engine.EvaluationEngine`: every ``evaluate*`` call then
fans out over the engine's worker pool behind its middleware stack
(coalesce, cache, retry, rate limit, timeout, batch).  Records come
back in question order either way — the batching layer groups
concurrent prompts into ``generate_batch`` calls *underneath* the
per-question fan-out, so the engine path yields bit-identical metrics
at any worker count, batch size, or coalescing setting.

A runner can also carry a ``ledger`` sink (duck-typed; see
:class:`repro.runs.ledger.RunLedger`): each ``evaluate`` call then
becomes one *cell* — the runner emits cell-started, streams every
scored question as it completes (from the engine's collector thread
under fan-out, so the sink only needs to be thread-safe across cells),
and seals the cell with its metrics.  :meth:`complete_cell` is the
resume path: given the records a previous attempt already persisted,
it re-asks only the missing question indices and merges, producing a
result bit-identical to an uninterrupted evaluation.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.core.metrics import Metrics
from repro.core.results import (PoolResult, QuestionRecord,
                                metrics_from_records)
from repro.llm.base import ChatModel
from repro.llm.parsing import parse_answer
from repro.llm.prompting import PromptSetting, build_prompt
from repro.obs.cost import call_cost_nanos, count_tokens
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import (call_site_scope, current_trail,
                             trail_scope)
from repro.questions.model import Question
from repro.questions.pools import QuestionPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.engine.scheduler import EvaluationEngine
    from repro.engine.telemetry import Telemetry
    from repro.runs.ledger import RunLedger


class EvaluationRunner:
    """Drives models over question pools and scores the answers."""

    def __init__(self, variant: int = 0, keep_records: bool = False,
                 engine: "EvaluationEngine | None" = None,
                 ledger: "RunLedger | None" = None,
                 tracer: "Tracer | NullTracer | None" = None,
                 telemetry: "Telemetry | None" = None,
                 trail: bool = False):
        #: Template paraphrase variant (0 is the paper's main results).
        self.variant = variant
        #: Whether PoolResults carry per-question records.
        self.keep_records = keep_records
        #: Optional execution engine; ``None`` runs sequentially.
        self.engine = engine
        #: Optional run-ledger sink; ``None`` keeps results in memory.
        self.ledger = ledger
        #: Span recorder: explicit tracer wins, else the engine's,
        #: else the free no-op.
        if tracer is not None:
            self.tracer = tracer
        elif engine is not None:
            self.tracer = engine.tracer
        else:
            self.tracer = NULL_TRACER
        #: Optional stats recorder for the *sequential* path (the
        #: engine records its own telemetry; this fills the gap when
        #: ``engine is None`` so ledgered runs always persist stats).
        self.telemetry = telemetry
        #: Capture provenance trails on the *sequential* path (under
        #: an engine the scope is opened per item by the scheduler
        #: when ``EngineConfig.trail`` is set).
        self.trail = trail

    def ask(self, model: ChatModel, question: Question,
            setting: PromptSetting = PromptSetting.ZERO_SHOT,
            pool_questions: tuple[Question, ...] = ()) -> QuestionRecord:
        """One question -> one scored interaction record."""
        prompt = build_prompt(question, setting,
                              pool_questions=pool_questions,
                              variant=self.variant)
        response = model.generate(prompt)
        parsed = parse_answer(response, question)
        # Token counts resolve by model *name* (stable through every
        # middleware wrapper), so the stamped record is bit-identical
        # whether the call ran sequentially, engined, or on a shard.
        prompt_tokens = count_tokens(prompt, model.name)
        completion_tokens = count_tokens(response, model.name)
        context = current_trail()
        trail = None
        if context is not None:
            if self.engine is None and context.cost_nanos == 0:
                # No CostMeter ran on the sequential path; bill the
                # one call here.  (Under an engine a zero cost is
                # legitimate — a cache hit or coalesced follower —
                # so only the engineless path fills it in.)
                context.note_cost(
                    prompt_tokens, completion_tokens,
                    call_cost_nanos(model.name, prompt_tokens,
                                    completion_tokens))
            trail = context.freeze()
        return QuestionRecord(
            question_uid=question.uid,
            model=model.name,
            setting=setting.value,
            response=response,
            parsed=parsed,
            expected=question.expected_answer,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            trail=trail,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def cell_id(model: ChatModel, label: str,
                setting: PromptSetting) -> str:
        """The ledger cell identifier for one evaluate call."""
        return f"{model.name}|{label}|{setting.value}"

    def _ask_indexed(self, model: ChatModel,
                     indexed: list[tuple[int, Question]],
                     setting: PromptSetting,
                     pool_questions: tuple[Question, ...],
                     cell: str | None = None
                     ) -> list[tuple[int, QuestionRecord]]:
        """Score ``(original index, question)`` pairs, streaming each
        record into the ledger (keyed by its *original* index) the
        moment it exists — not when the whole batch returns."""
        ledger = self.ledger if cell is not None else None
        parent = self.tracer.current_id()
        if self.engine is None:
            out: list[tuple[int, QuestionRecord]] = []
            for index, question in indexed:
                started = time.perf_counter()
                with self.tracer.span(
                        "question", parent=parent,
                        kind=question.kind.value,
                        level=question.level, uid=question.uid), \
                        call_site_scope(question=question.uid,
                                        cell=cell):
                    if self.trail:
                        with trail_scope():
                            record = self.ask(
                                model, question, setting,
                                pool_questions=pool_questions)
                    else:
                        record = self.ask(
                            model, question, setting,
                            pool_questions=pool_questions)
                if self.telemetry is not None:
                    self.telemetry.record_call()
                    self.telemetry.record_tokens(
                        record.prompt_tokens,
                        record.completion_tokens,
                        call_cost_nanos(record.model,
                                        record.prompt_tokens,
                                        record.completion_tokens))
                    self.telemetry.record_work(
                        time.perf_counter() - started)
                if ledger is not None:
                    ledger.record(cell, index, record)
                out.append((index, record))
            return out
        on_result = None
        if ledger is not None:
            def on_result(position: int,
                          record: QuestionRecord) -> None:
                ledger.record(cell, indexed[position][0], record)

        def ask_traced(wrapped: ChatModel,
                       question: Question) -> QuestionRecord:
            # Runs on a worker thread whose span stack is empty, so
            # the cell span must be named as the parent explicitly.
            # call_site_scope makes the model_call spans issued deep
            # in the middleware stack joinable back to this question.
            with self.tracer.span(
                    "question", parent=parent,
                    kind=question.kind.value,
                    level=question.level, uid=question.uid), \
                    call_site_scope(question=question.uid, cell=cell):
                return self.ask(wrapped, question, setting,
                                pool_questions=pool_questions)

        records = self.engine.run(
            model, [question for _, question in indexed],
            ask_traced, on_result=on_result)
        return [(indexed[i][0], record)
                for i, record in enumerate(records)]

    def _evaluate_cell(self, model: ChatModel,
                       questions: tuple[Question, ...],
                       setting: PromptSetting, label: str,
                       done: Mapping[int, QuestionRecord] | None = None
                       ) -> PoolResult:
        """One ledgered cell: skip ``done`` indices, merge, seal."""
        done = dict(done or {})
        cell = None
        if self.ledger is not None:
            cell = self.cell_id(model, label, setting)
            self.ledger.cell_started(cell, len(questions))
        indexed = [(index, question)
                   for index, question in enumerate(questions)
                   if index not in done]
        with self.tracer.span("cell", model=model.name, label=label,
                              setting=setting.value, n=len(indexed)):
            for index, record in self._ask_indexed(
                    model, indexed, setting,
                    pool_questions=questions, cell=cell):
                done[index] = record
        records = [done[index] for index in range(len(questions))]
        metrics = metrics_from_records(records)
        if self.ledger is not None:
            self.ledger.cell_finished(cell, metrics)
        return PoolResult(
            pool_label=label,
            model=model.name,
            setting=setting.value,
            metrics=metrics,
            records=tuple(records) if self.keep_records else (),
        )

    # ------------------------------------------------------------------
    def evaluate(self, model: ChatModel, pool: QuestionPool,
                 setting: PromptSetting = PromptSetting.ZERO_SHOT
                 ) -> PoolResult:
        """Score ``model`` on every question of ``pool``."""
        return self._evaluate_cell(model, pool.questions, setting,
                                   label=pool.label)

    def complete_cell(self, model: ChatModel, pool: QuestionPool,
                      setting: PromptSetting,
                      done: Mapping[int, QuestionRecord]) -> PoolResult:
        """Finish a partially recorded cell (the resume path).

        ``done`` maps question index -> record as replayed from the
        ledger; only the holes are re-asked.  Because prompts, pools
        and the simulated backends are deterministic, the merged
        result is bit-identical to an uninterrupted :meth:`evaluate`.
        """
        return self._evaluate_cell(model, pool.questions, setting,
                                   label=pool.label, done=done)

    def evaluate_slice(self, model: ChatModel, pool: QuestionPool,
                       setting: PromptSetting,
                       indices, done: Mapping[int, QuestionRecord]
                       | None = None) -> dict[int, QuestionRecord]:
        """Score a subset of a pool's questions (the shard path).

        Unlike :meth:`evaluate`, the cell is *not* sealed: a shard
        owns only ``indices`` of the cell, so it emits cell-started
        (with the full pool size, letting any replayer know the
        expected extent), streams its records at their absolute pool
        indices, and leaves ``cell-finished`` to the merge, which is
        the only party that sees every shard's records.  ``done``
        holds records a previous shard attempt already persisted;
        only the holes are re-asked.
        """
        done = dict(done or {})
        cell = None
        if self.ledger is not None:
            cell = self.cell_id(model, pool.label, setting)
            self.ledger.cell_started(cell, len(pool.questions))
        indexed = [(index, pool.questions[index])
                   for index in sorted(indices)
                   if index not in done]
        with self.tracer.span("cell", model=model.name,
                              label=pool.label, setting=setting.value,
                              n=len(indexed), sliced=True):
            for index, record in self._ask_indexed(
                    model, indexed, setting,
                    pool_questions=pool.questions, cell=cell):
                done[index] = record
        return done

    def evaluate_questions(self, model: ChatModel,
                           questions: tuple[Question, ...],
                           setting: PromptSetting =
                           PromptSetting.ZERO_SHOT,
                           label: str = "ad-hoc") -> PoolResult:
        """Score a bare question tuple (instance typing pools)."""
        return self._evaluate_cell(model, questions, setting,
                                   label=label)

    def evaluate_matrix(self, models: list[ChatModel],
                        pools: dict[str, QuestionPool],
                        setting: PromptSetting = PromptSetting.ZERO_SHOT
                        ) -> dict[tuple[str, str], Metrics]:
        """The Tables 5-7 shape: (model, taxonomy) -> metrics."""
        matrix: dict[tuple[str, str], Metrics] = {}
        for model in models:
            for taxonomy_key, pool in pools.items():
                result = self.evaluate(model, pool, setting)
                matrix[model.name, taxonomy_key] = result.metrics
        return matrix
