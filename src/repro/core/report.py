"""Rendering result matrices as text tables and CSV.

``format_matrix`` reproduces the layout of the paper's Tables 5-7:
one model per block with an accuracy (A) row and a miss-rate (M) row,
one column per taxonomy.  ``format_engine_stats`` renders the
execution engine's telemetry the same aligned-table way.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.core.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.telemetry import EngineStats


def format_matrix(matrix: Mapping[tuple[str, str], Metrics],
                  models: list[str], taxonomy_labels: dict[str, str],
                  title: str = "") -> str:
    """Render a (model, taxonomy) -> Metrics matrix, Tables 5-7 style."""
    keys = list(taxonomy_labels)
    name_width = max((len(name) for name in models), default=5) + 2
    column_width = max(max((len(label) for label
                            in taxonomy_labels.values()), default=5) + 2,
                       7)
    lines = []
    if title:
        lines.append(title)
    header = " " * (name_width + 4) + "".join(
        taxonomy_labels[key].rjust(column_width) for key in keys)
    lines.append(header)
    for model in models:
        for metric_label in ("A", "M"):
            cells = []
            for key in keys:
                metrics = matrix.get((model, key))
                if metrics is None:
                    cells.append("n/a".rjust(column_width))
                    continue
                value = (metrics.accuracy if metric_label == "A"
                         else metrics.miss_rate)
                cells.append(f"{value:.3f}".rjust(column_width))
            prefix = model if metric_label == "A" else ""
            lines.append(f"{prefix:<{name_width}}{metric_label:>3} "
                         + "".join(cells))
    return "\n".join(lines)


def matrix_to_csv(matrix: Mapping[tuple[str, str], Metrics],
                  models: list[str],
                  taxonomy_keys: list[str]) -> str:
    """CSV with one row per (model, taxonomy) cell."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["model", "taxonomy", "accuracy", "miss_rate", "n"])
    for model in models:
        for key in taxonomy_keys:
            metrics = matrix.get((model, key))
            if metrics is None:
                continue
            writer.writerow([model, key, f"{metrics.accuracy:.4f}",
                             f"{metrics.miss_rate:.4f}", metrics.n])
    return buffer.getvalue()


def format_engine_stats(stats: "EngineStats",
                        title: str = "Engine telemetry") -> str:
    """Render one :class:`EngineStats` snapshot as an aligned table."""
    return format_rows([stats.as_row()], title=title)


def format_rows(rows: list[dict[str, object]], title: str = "") -> str:
    """Render a list of uniform dict rows as an aligned text table."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {column: max(len(str(column)),
                          *(len(str(row[column])) for row in rows)) + 2
              for column in columns}
    lines = []
    if title:
        lines.append(title)
    lines.append("".join(str(column).rjust(widths[column])
                         for column in columns))
    for row in rows:
        lines.append("".join(str(row[column]).rjust(widths[column])
                             for column in columns))
    return "\n".join(lines)
