"""Result records produced by the evaluation runner.

Besides the in-memory dataclasses this module owns their JSON codec:
the run ledger (:mod:`repro.runs.ledger`) streams every
:class:`QuestionRecord` and :class:`Metrics` to disk as it is
produced, and a record decoded from a ledger must compare equal to —
and score identically to — the record the runner built live.  That is
why :meth:`QuestionRecord.correct` compares answers by value, never by
identity: enum singletons survive a round trip, but plain strings (a
hand-built record, a future codec change) must score the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import Metrics, summarize
from repro.obs.trail import Trail, trail_from_dict, trail_to_dict
from repro.questions.model import Answer


@dataclass(frozen=True, slots=True)
class QuestionRecord:
    """One (model, question) interaction, fully materialized.

    The token counts are pure functions of the prompt and response
    text (``repro.obs.cost.count_tokens``), so a record is
    bit-identical whether it was produced sequentially, through the
    engine, or on a shard — and records persisted before token
    accounting existed decode with both counts at 0.
    """

    question_uid: str
    model: str
    setting: str
    response: str
    parsed: Answer
    expected: Answer
    prompt_tokens: int = 0
    completion_tokens: int = 0
    #: Provenance trail (``--trail`` runs only).  Excluded from
    #: equality: the scored payload is what determinism gates compare,
    #: and placement fields (batch id, replica) legitimately vary with
    #: scheduling.
    trail: Trail | None = field(default=None, compare=False)

    @property
    def missed(self) -> bool:
        return Answer(self.parsed).is_miss

    @property
    def correct(self) -> bool:
        return (not self.missed) and self.parsed == self.expected


@dataclass(frozen=True, slots=True)
class PoolResult:
    """Aggregated outcome of a model on one question pool."""

    pool_label: str
    model: str
    setting: str
    metrics: Metrics
    records: tuple[QuestionRecord, ...] = field(default=())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.model} on {self.pool_label} "
                f"[{self.setting}]: A={self.metrics.accuracy:.3f} "
                f"M={self.metrics.miss_rate:.3f} (n={self.metrics.n})")


def metrics_from_records(records: list[QuestionRecord]) -> Metrics:
    """Score a batch of interaction records."""
    correct = sum(1 for record in records if record.correct)
    missed = sum(1 for record in records if record.missed)
    return summarize(correct, missed, len(records))


# ----------------------------------------------------------------------
# JSON codec (ledger events, run registry round trips)
# ----------------------------------------------------------------------
def record_to_dict(record: QuestionRecord) -> dict[str, object]:
    """A JSON-compatible dict; inverse of :func:`record_from_dict`."""
    payload: dict[str, object] = {
        "uid": record.question_uid,
        "model": record.model,
        "setting": record.setting,
        "response": record.response,
        "parsed": Answer(record.parsed).value,
        "expected": Answer(record.expected).value,
        "prompt_tokens": record.prompt_tokens,
        "completion_tokens": record.completion_tokens,
    }
    if record.trail is not None:
        payload["trail"] = trail_to_dict(record.trail)
    return payload


def record_from_dict(payload: dict) -> QuestionRecord:
    """Rebuild a record; decoded records score identically to live ones.

    The token fields default to 0 so ledgers written before token
    accounting existed still decode (and replay bit-identically);
    likewise pre-trail ledgers decode with ``trail=None``.
    """
    return QuestionRecord(
        question_uid=payload["uid"],
        model=payload["model"],
        setting=payload["setting"],
        response=payload["response"],
        parsed=Answer(payload["parsed"]),
        expected=Answer(payload["expected"]),
        prompt_tokens=int(payload.get("prompt_tokens", 0)),
        completion_tokens=int(payload.get("completion_tokens", 0)),
        trail=(trail_from_dict(payload["trail"])
               if "trail" in payload else None),
    )


def metrics_to_dict(metrics: Metrics) -> dict[str, object]:
    """JSON floats round-trip exactly, so decoded metrics are bit-equal."""
    return {"accuracy": metrics.accuracy,
            "miss_rate": metrics.miss_rate,
            "n": metrics.n}


def metrics_from_dict(payload: dict) -> Metrics:
    return Metrics(accuracy=payload["accuracy"],
                   miss_rate=payload["miss_rate"],
                   n=payload["n"])
