"""Result records produced by the evaluation runner."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import Metrics, summarize
from repro.questions.model import Answer


@dataclass(frozen=True, slots=True)
class QuestionRecord:
    """One (model, question) interaction, fully materialized."""

    question_uid: str
    model: str
    setting: str
    response: str
    parsed: Answer
    expected: Answer

    @property
    def missed(self) -> bool:
        return self.parsed.is_miss

    @property
    def correct(self) -> bool:
        return (not self.missed) and self.parsed is self.expected


@dataclass(frozen=True, slots=True)
class PoolResult:
    """Aggregated outcome of a model on one question pool."""

    pool_label: str
    model: str
    setting: str
    metrics: Metrics
    records: tuple[QuestionRecord, ...] = field(default=())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.model} on {self.pool_label} "
                f"[{self.setting}]: A={self.metrics.accuracy:.3f} "
                f"M={self.metrics.miss_rate:.3f} (n={self.metrics.n})")


def metrics_from_records(records: list[QuestionRecord]) -> Metrics:
    """Score a batch of interaction records."""
    correct = sum(1 for record in records if record.correct)
    missed = sum(1 for record in records if record.missed)
    return summarize(correct, missed, len(records))
