"""Evaluation core: metrics, runner, results, reports, facade."""

from repro.core.benchmark import TAXONOMY_LABELS, TaxoGlimpse
from repro.core.export import (CellDrift, diff_matrices, load_matrix,
                              matrix_from_payload, matrix_to_payload,
                              pool_result_to_payload, save_matrix)
from repro.core.metrics import (Metrics, RetrievalMetrics, combine,
                                retrieval_metrics, summarize)
from repro.core.report import (format_engine_stats, format_matrix,
                               format_rows, matrix_to_csv)
from repro.core.results import (PoolResult, QuestionRecord,
                                metrics_from_records)
from repro.core.runner import EvaluationRunner

__all__ = [
    "TaxoGlimpse",
    "CellDrift",
    "diff_matrices",
    "save_matrix",
    "load_matrix",
    "matrix_to_payload",
    "matrix_from_payload",
    "pool_result_to_payload",
    "TAXONOMY_LABELS",
    "Metrics",
    "RetrievalMetrics",
    "summarize",
    "combine",
    "retrieval_metrics",
    "EvaluationRunner",
    "PoolResult",
    "QuestionRecord",
    "metrics_from_records",
    "format_matrix",
    "format_rows",
    "format_engine_stats",
    "matrix_to_csv",
]
