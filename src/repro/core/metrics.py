"""Evaluation metrics (paper Section 3.3).

The paper scores each (model, dataset) cell with **accuracy** (correct
answers over all questions) and **miss rate** ("I don't know" answers
over all questions).  Unparseable responses count as misses.  The case
study additionally uses precision/recall over retrieved product lists.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Metrics:
    """Accuracy and miss rate over ``n`` questions."""

    accuracy: float
    miss_rate: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("n must be non-negative")
        for value, label in ((self.accuracy, "accuracy"),
                             (self.miss_rate, "miss_rate")):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")

    @property
    def answered_accuracy(self) -> float:
        """Accuracy conditioned on having answered at all."""
        answered = 1.0 - self.miss_rate
        if answered <= 0.0:
            return 0.0
        return min(1.0, self.accuracy / answered)


def summarize(correct: int, missed: int, total: int) -> Metrics:
    """Build :class:`Metrics` from raw counts."""
    if total <= 0:
        raise ValueError("cannot summarize zero questions")
    if correct + missed > total:
        raise ValueError("correct + missed exceeds total")
    return Metrics(correct / total, missed / total, total)


def combine(parts: list[Metrics]) -> Metrics:
    """Question-count-weighted combination of per-level metrics."""
    if not parts:
        raise ValueError("cannot combine zero metric sets")
    total = sum(part.n for part in parts)
    accuracy = sum(part.accuracy * part.n for part in parts) / total
    miss = sum(part.miss_rate * part.n for part in parts) / total
    return Metrics(accuracy, miss, total)


@dataclass(frozen=True, slots=True)
class RetrievalMetrics:
    """Precision/recall of a retrieved set (case study, Section 5.3)."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return (2.0 * self.precision * self.recall
                / (self.precision + self.recall))


def retrieval_metrics(retrieved: set[str],
                      relevant: set[str]) -> RetrievalMetrics:
    """Precision/recall of ``retrieved`` against ``relevant``."""
    true_positives = len(retrieved & relevant)
    false_positives = len(retrieved - relevant)
    false_negatives = len(relevant - retrieved)
    precision = (true_positives / len(retrieved)) if retrieved else 0.0
    recall = (true_positives / len(relevant)) if relevant else 0.0
    return RetrievalMetrics(precision, recall, true_positives,
                            false_positives, false_negatives)
