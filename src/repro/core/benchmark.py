"""TaxoGlimpse: the public benchmark facade.

One object wires together taxonomy generation, question pools, models
and the evaluation runner, so downstream users can go from nothing to a
Tables 5-7 style matrix in three lines:

    >>> from repro import TaxoGlimpse
    >>> bench = TaxoGlimpse(sample_size=40)
    >>> result = bench.run("GPT-4", "ebay", dataset=DatasetKind.HARD)
"""

from __future__ import annotations

from repro.core.metrics import Metrics
from repro.core.report import format_matrix
from repro.core.results import PoolResult
from repro.core.runner import EvaluationRunner
from repro.generators.registry import ALL_SPECS, TAXONOMY_KEYS
from repro.llm.base import ChatModel
from repro.llm.prompting import PromptSetting
from repro.llm.registry import MODEL_NAMES, get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import TaxonomyPools, build_pools

#: Display labels per taxonomy key (paper table headers).
TAXONOMY_LABELS: dict[str, str] = {
    spec.key: spec.display_name for spec in ALL_SPECS}


class TaxoGlimpse:
    """End-to-end benchmark over the ten taxonomies.

    Args:
        sample_size: Optional per-level question cap.  ``None`` uses
            the paper's Cochran 95%/5% sizes; small values make smoke
            runs fast.
        variant: Template paraphrase variant (0 = the paper's wording).
        keep_records: Retain per-question records on results.
        engine: Optional :class:`repro.engine.EvaluationEngine`; every
            evaluation then runs concurrently behind its middleware
            stack with bit-identical metrics.
        ledger: Optional :class:`repro.runs.ledger.RunLedger` sink;
            every evaluation then streams its cell events and scored
            questions to the ledger as they complete.
    """

    def __init__(self, sample_size: int | None = None, variant: int = 0,
                 keep_records: bool = False, engine=None, ledger=None):
        self.sample_size = sample_size
        self.runner = EvaluationRunner(variant=variant,
                                       keep_records=keep_records,
                                       engine=engine, ledger=ledger)
        self._pools: dict[str, TaxonomyPools] = {}

    # ------------------------------------------------------------------
    def pools(self, taxonomy_key: str) -> TaxonomyPools:
        """(Cached) question pools for one taxonomy."""
        if taxonomy_key not in self._pools:
            self._pools[taxonomy_key] = build_pools(
                taxonomy_key, sample_size=self.sample_size)
        return self._pools[taxonomy_key]

    @staticmethod
    def resolve_model(model: str | ChatModel) -> ChatModel:
        """Accept either a registry name or any ChatModel object."""
        if isinstance(model, str):
            return get_model(model)
        return model

    # ------------------------------------------------------------------
    def run(self, model: str | ChatModel, taxonomy_key: str,
            dataset: DatasetKind = DatasetKind.HARD,
            setting: PromptSetting = PromptSetting.ZERO_SHOT,
            level: int | None = None) -> PoolResult:
        """Evaluate one model on one taxonomy dataset.

        ``level`` restricts to a single child level (Figure 3 style);
        ``None`` evaluates the level-combined pool (Tables 5-7 style).
        """
        pools = self.pools(taxonomy_key)
        pool = (pools.total_pool(dataset) if level is None
                else pools.level_pool(level, dataset))
        return self.runner.evaluate(self.resolve_model(model), pool,
                                    setting)

    def run_table(self, dataset: DatasetKind = DatasetKind.HARD,
                  models: list[str] | None = None,
                  taxonomy_keys: list[str] | None = None,
                  setting: PromptSetting = PromptSetting.ZERO_SHOT
                  ) -> dict[tuple[str, str], Metrics]:
        """A Tables 5-7 matrix over models x taxonomies."""
        model_names = list(models if models is not None else MODEL_NAMES)
        keys = list(taxonomy_keys if taxonomy_keys is not None
                    else TAXONOMY_KEYS)
        pools = {key: self.pools(key).total_pool(dataset)
                 for key in keys}
        backends = [self.resolve_model(name) for name in model_names]
        return self.runner.evaluate_matrix(backends, pools, setting)

    def format_table(self, matrix: dict[tuple[str, str], Metrics],
                     title: str = "") -> str:
        """Render a matrix in the paper's table layout."""
        models = sorted({model for model, _ in matrix},
                        key=lambda name: (
                            list(MODEL_NAMES).index(name)
                            if name in MODEL_NAMES else 99))
        keys = [key for key in TAXONOMY_KEYS
                if any((model, key) in matrix for model in models)]
        labels = {key: TAXONOMY_LABELS[key] for key in keys}
        return format_matrix(matrix, models, labels, title=title)
