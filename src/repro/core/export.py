"""Persisting and diffing evaluation results.

Matrices and pool results serialize to JSON so runs can be archived,
compared across code versions, and fed into external tooling.  The
diff helper surfaces cells whose accuracy moved more than a tolerance
— the regression check for harness changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping

from repro.core.metrics import Metrics
from repro.core.results import PoolResult

_FORMAT_VERSION = 1


def matrix_to_payload(matrix: Mapping[tuple[str, str], Metrics],
                      label: str = "") -> dict:
    """JSON-compatible form of a (model, taxonomy) -> Metrics matrix."""
    return {
        "format_version": _FORMAT_VERSION,
        "label": label,
        "cells": [
            {
                "model": model,
                "taxonomy": taxonomy,
                "accuracy": metrics.accuracy,
                "miss_rate": metrics.miss_rate,
                "n": metrics.n,
            }
            for (model, taxonomy), metrics in sorted(matrix.items())
        ],
    }


def matrix_from_payload(payload: dict) -> dict[tuple[str, str],
                                               Metrics]:
    """Inverse of :func:`matrix_to_payload`."""
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError("unsupported result format version")
    return {
        (cell["model"], cell["taxonomy"]): Metrics(
            cell["accuracy"], cell["miss_rate"], cell["n"])
        for cell in payload["cells"]
    }


def save_matrix(matrix: Mapping[tuple[str, str], Metrics],
                path: str | Path, label: str = "") -> None:
    Path(path).write_text(
        json.dumps(matrix_to_payload(matrix, label), indent=1),
        encoding="utf-8")


def load_matrix(path: str | Path) -> dict[tuple[str, str], Metrics]:
    return matrix_from_payload(
        json.loads(Path(path).read_text(encoding="utf-8")))


@dataclass(frozen=True, slots=True)
class CellDrift:
    """One cell whose metrics moved between two runs."""

    model: str
    taxonomy: str
    accuracy_before: float
    accuracy_after: float

    @property
    def delta(self) -> float:
        return self.accuracy_after - self.accuracy_before


def diff_matrices(before: Mapping[tuple[str, str], Metrics],
                  after: Mapping[tuple[str, str], Metrics],
                  tolerance: float = 0.02) -> list[CellDrift]:
    """Cells present in both runs whose accuracy moved > tolerance."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    drifts = []
    for key in sorted(set(before) & set(after)):
        delta = after[key].accuracy - before[key].accuracy
        if abs(delta) > tolerance:
            drifts.append(CellDrift(key[0], key[1],
                                    before[key].accuracy,
                                    after[key].accuracy))
    return drifts


def pool_result_to_payload(result: PoolResult) -> dict:
    """Serialize one PoolResult (records included when kept)."""
    return {
        "format_version": _FORMAT_VERSION,
        "pool": result.pool_label,
        "model": result.model,
        "setting": result.setting,
        "accuracy": result.metrics.accuracy,
        "miss_rate": result.metrics.miss_rate,
        "n": result.metrics.n,
        "records": [
            {
                "uid": record.question_uid,
                "response": record.response,
                "parsed": record.parsed.value,
                "expected": record.expected.value,
            }
            for record in result.records
        ],
    }
