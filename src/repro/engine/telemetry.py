"""Telemetry for the execution engine.

A :class:`Telemetry` collector is threaded through the middleware
stack and the scheduler; every model call, retry, injected fault and
cache lookup increments a counter under one lock.  ``snapshot()``
freezes the counters into an :class:`EngineStats` value — the number
the scalability experiment and the ``repro engine-stats`` CLI report
instead of poking at raw ``prompts_served`` counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EngineStats:
    """One engine run, aggregated.

    ``calls`` counts model invocations that actually reached the
    backend (cache hits never do); ``records`` counts questions
    scored.  ``utilization`` is busy worker-seconds over available
    worker-seconds (``wall_time_s * workers``) — 1.0 means every
    worker computed the whole time.
    """

    records: int
    calls: int
    retries: int
    faults: int
    timeouts: int
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    busy_time_s: float
    workers: int

    @property
    def mean_latency_s(self) -> float:
        """Mean wall time of one scored question on its worker."""
        if self.records == 0:
            return 0.0
        return self.busy_time_s / self.records

    @property
    def utilization(self) -> float:
        """Fraction of available worker time spent computing."""
        available = self.wall_time_s * max(1, self.workers)
        if available <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / available)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def throughput(self) -> float:
        """Questions scored per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.records / self.wall_time_s

    def to_dict(self) -> dict[str, object]:
        """Raw counters, JSON-compatible (run-finished ledger events)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": self.wall_time_s,
            "busy_time_s": self.busy_time_s,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        """Rebuild a snapshot persisted by :meth:`to_dict`."""
        return cls(**{key: payload[key] for key in (
            "records", "calls", "retries", "faults", "timeouts",
            "cache_hits", "cache_misses", "wall_time_s", "busy_time_s",
            "workers")})

    def as_row(self) -> dict[str, object]:
        """One report row (``repro.core.report.format_rows`` shape)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": f"{self.cache_hit_rate:.3f}",
            "workers": self.workers,
            "wall_s": f"{self.wall_time_s:.3f}",
            "q_per_s": f"{self.throughput:.1f}",
            "utilization": f"{self.utilization:.3f}",
        }


class Telemetry:
    """Thread-safe counters shared by middleware and scheduler."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records = 0
        self._calls = 0
        self._retries = 0
        self._faults = 0
        self._timeouts = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._busy_time_s = 0.0
        self._wall_time_s = 0.0
        self._workers = 1

    # ------------------------------------------------------------------
    # Recording (called from worker threads)
    # ------------------------------------------------------------------
    def record_call(self) -> None:
        with self._lock:
            self._calls += 1

    def record_retry(self) -> None:
        with self._lock:
            self._retries += 1

    def record_fault(self, timeout: bool = False) -> None:
        with self._lock:
            self._faults += 1
            if timeout:
                self._timeouts += 1

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def record_work(self, seconds: float) -> None:
        """One question scored, taking ``seconds`` of worker time."""
        with self._lock:
            self._records += 1
            self._busy_time_s += seconds

    def record_run(self, wall_time_s: float, workers: int) -> None:
        """Account one scheduler pass (called once per run)."""
        with self._lock:
            self._wall_time_s += wall_time_s
            self._workers = max(self._workers, workers)

    # ------------------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Freeze the counters into an immutable stats value."""
        with self._lock:
            return EngineStats(
                records=self._records,
                calls=self._calls,
                retries=self._retries,
                faults=self._faults,
                timeouts=self._timeouts,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                wall_time_s=self._wall_time_s,
                busy_time_s=self._busy_time_s,
                workers=self._workers,
            )

    def reset(self) -> None:
        """Zero every counter (between benchmark phases)."""
        with self._lock:
            self._records = self._calls = self._retries = 0
            self._faults = self._timeouts = 0
            self._cache_hits = self._cache_misses = 0
            self._busy_time_s = self._wall_time_s = 0.0
            self._workers = 1
