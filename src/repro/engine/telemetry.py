"""Telemetry for the execution engine.

A :class:`Telemetry` collector is threaded through the middleware
stack and the scheduler.  It is now a facade over a
:class:`repro.obs.metrics.MetricsRegistry`: every model call, retry,
injected fault and cache lookup lands in a named counter, and each
scored question's worker time is observed into a fixed-bucket latency
histogram — so the engine reports p50/p90/p99 and exact min/max, not
just a mean.  ``snapshot()`` freezes the registry into an
:class:`EngineStats` value, the compatibility shape the scalability
experiment, the run ledger and the ``repro engine-stats`` CLI consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

#: Registry names of the engine's metrics (shared with exporters).
RECORDS = "repro_engine_records_total"
CALLS = "repro_engine_calls_total"
RETRIES = "repro_engine_retries_total"
FAULTS = "repro_engine_faults_total"
TIMEOUTS = "repro_engine_timeouts_total"
CACHE_HITS = "repro_engine_cache_hits_total"
CACHE_MISSES = "repro_engine_cache_misses_total"
WALL_SECONDS = "repro_engine_wall_seconds_total"
WORKERS = "repro_engine_workers"
LATENCY = "repro_engine_question_latency_seconds"


@dataclass(frozen=True, slots=True)
class EngineStats:
    """One engine run, aggregated.

    ``calls`` counts model invocations that actually reached the
    backend (cache hits never do); ``records`` counts questions
    scored.  ``utilization`` is busy worker-seconds over available
    worker-seconds (``wall_time_s * workers``) — 1.0 means every
    worker computed the whole time.  The ``latency_*`` fields come
    from the per-question latency histogram: bucket-interpolated
    quantiles, exact extremes.
    """

    records: int
    calls: int
    retries: int
    faults: int
    timeouts: int
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    busy_time_s: float
    workers: int
    latency_p50_s: float = 0.0
    latency_p90_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_min_s: float = 0.0
    latency_max_s: float = 0.0

    @property
    def mean_latency_s(self) -> float:
        """Mean wall time of one scored question on its worker."""
        if self.records == 0:
            return 0.0
        return self.busy_time_s / self.records

    @property
    def utilization(self) -> float:
        """Fraction of available worker time spent computing."""
        available = self.wall_time_s * max(1, self.workers)
        if available <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / available)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def throughput(self) -> float:
        """Questions scored per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.records / self.wall_time_s

    def to_dict(self) -> dict[str, object]:
        """Raw counters, JSON-compatible (run-finished ledger events)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": self.wall_time_s,
            "busy_time_s": self.busy_time_s,
            "workers": self.workers,
            "latency_p50_s": self.latency_p50_s,
            "latency_p90_s": self.latency_p90_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_min_s": self.latency_min_s,
            "latency_max_s": self.latency_max_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        """Rebuild a snapshot persisted by :meth:`to_dict`.

        The histogram fields default to 0.0 so ledgers written before
        they existed still load.
        """
        stats = {key: payload[key] for key in (
            "records", "calls", "retries", "faults", "timeouts",
            "cache_hits", "cache_misses", "wall_time_s", "busy_time_s",
            "workers")}
        for key in ("latency_p50_s", "latency_p90_s", "latency_p99_s",
                    "latency_min_s", "latency_max_s"):
            stats[key] = float(payload.get(key, 0.0))
        return cls(**stats)

    def as_row(self) -> dict[str, object]:
        """One report row (``repro.core.report.format_rows`` shape)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": f"{self.cache_hit_rate:.3f}",
            "workers": self.workers,
            "wall_s": f"{self.wall_time_s:.3f}",
            "q_per_s": f"{self.throughput:.1f}",
            "utilization": f"{self.utilization:.3f}",
            "p50_ms": f"{self.latency_p50_s * 1e3:.2f}",
            "p99_ms": f"{self.latency_p99_s * 1e3:.2f}",
        }


class Telemetry:
    """Thread-safe recorder shared by middleware and scheduler.

    The recording API is unchanged from the counter-bag days; the
    storage is a :class:`MetricsRegistry` (exposed as ``.registry``)
    so the same numbers flow to the Prometheus exporter without a
    second bookkeeping path.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        r = self.registry
        self._records = r.counter(RECORDS, "questions scored")
        self._calls = r.counter(CALLS,
                                "model invocations reaching a backend")
        self._retries = r.counter(RETRIES, "re-attempts after faults")
        self._faults = r.counter(FAULTS, "transient faults observed")
        self._timeouts = r.counter(TIMEOUTS, "per-call timeouts")
        self._cache_hits = r.counter(CACHE_HITS,
                                     "response cache hits")
        self._cache_misses = r.counter(CACHE_MISSES,
                                       "response cache misses")
        self._wall = r.counter(WALL_SECONDS,
                               "scheduler wall-clock seconds")
        self._workers = r.gauge(WORKERS, "peak worker threads")
        self._latency = r.histogram(
            LATENCY, "per-question worker seconds")

    # ------------------------------------------------------------------
    # Recording (called from worker threads)
    # ------------------------------------------------------------------
    def record_call(self) -> None:
        self._calls.add(1)

    def record_retry(self) -> None:
        self._retries.add(1)

    def record_fault(self, timeout: bool = False) -> None:
        self._faults.add(1)
        if timeout:
            self._timeouts.add(1)

    def record_cache(self, hit: bool) -> None:
        if hit:
            self._cache_hits.add(1)
        else:
            self._cache_misses.add(1)

    def record_work(self, seconds: float) -> None:
        """One question scored, taking ``seconds`` of worker time."""
        self._records.add(1)
        self._latency.observe(seconds)

    def record_run(self, wall_time_s: float, workers: int) -> None:
        """Account one scheduler pass (called once per run)."""
        self._wall.add(wall_time_s)
        self._workers.set_max(workers)

    # ------------------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Freeze the registry into an immutable stats value."""
        return EngineStats(
            records=int(self._records.value),
            calls=int(self._calls.value),
            retries=int(self._retries.value),
            faults=int(self._faults.value),
            timeouts=int(self._timeouts.value),
            cache_hits=int(self._cache_hits.value),
            cache_misses=int(self._cache_misses.value),
            wall_time_s=self._wall.value,
            busy_time_s=self._latency.total,
            workers=max(1, int(self._workers.value)),
            latency_p50_s=self._latency.quantile(0.50),
            latency_p90_s=self._latency.quantile(0.90),
            latency_p99_s=self._latency.quantile(0.99),
            latency_min_s=self._latency.min,
            latency_max_s=self._latency.max,
        )

    def reset(self) -> None:
        """Zero every counter (between benchmark phases)."""
        self.registry.reset()
