"""Telemetry for the execution engine.

A :class:`Telemetry` collector is threaded through the middleware
stack and the scheduler.  It is now a facade over a
:class:`repro.obs.metrics.MetricsRegistry`: every model call, retry,
injected fault and cache lookup lands in a named counter, and each
scored question's worker time is observed into a fixed-bucket latency
histogram — so the engine reports p50/p90/p99 and exact min/max, not
just a mean.  ``snapshot()`` freezes the registry into an
:class:`EngineStats` value, the compatibility shape the scalability
experiment, the run ledger and the ``repro engine-stats`` CLI consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

#: Registry names of the engine's metrics (shared with exporters).
RECORDS = "repro_engine_records_total"
CALLS = "repro_engine_calls_total"
RETRIES = "repro_engine_retries_total"
FAULTS = "repro_engine_faults_total"
TIMEOUTS = "repro_engine_timeouts_total"
CACHE_HITS = "repro_engine_cache_hits_total"
CACHE_MISSES = "repro_engine_cache_misses_total"
WALL_SECONDS = "repro_engine_wall_seconds_total"
WORKERS = "repro_engine_workers"
LATENCY = "repro_engine_question_latency_seconds"
BATCHES = "repro_engine_batches_total"
COALESCED = "repro_engine_coalesced_total"
HEDGES = "repro_engine_hedged_total"
ADAPTIVE_HIGH_WATER = "repro_engine_adaptive_limit_high_water"
PROMPT_TOKENS = "repro_engine_prompt_tokens_total"
COMPLETION_TOKENS = "repro_engine_completion_tokens_total"
COST_NANOS = "repro_engine_cost_nanos_total"


@dataclass(frozen=True, slots=True)
class EngineStats:
    """One engine run, aggregated.

    ``calls`` counts model invocations that actually reached the
    backend (cache hits never do); ``records`` counts questions
    scored.  ``utilization`` is busy worker-seconds over available
    worker-seconds (``wall_time_s * workers``) — 1.0 means every
    worker computed the whole time.  The ``latency_*`` fields come
    from the per-question latency histogram: bucket-interpolated
    quantiles, exact extremes.

    The batched-engine fields all default to zero so snapshots
    persisted before the batching core existed — and engines run
    without it — decode and compare unchanged: ``batches`` counts
    backend ``generate_batch`` dispatches, ``coalesced`` counts
    prompts that piggybacked on an identical in-flight call,
    ``hedged`` counts hedge requests a :class:`BackendPool` launched,
    and ``adaptive_high_water`` is the AIMD concurrency window's
    high-water mark.
    """

    records: int
    calls: int
    retries: int
    faults: int
    timeouts: int
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    busy_time_s: float
    workers: int
    latency_p50_s: float = 0.0
    latency_p90_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_min_s: float = 0.0
    latency_max_s: float = 0.0
    batches: int = 0
    coalesced: int = 0
    hedged: int = 0
    adaptive_high_water: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    #: Accumulated spend in integer nano-dollars.  Integer addition is
    #: associative, so shard-merged totals equal single-process totals
    #: bit for bit — a float dollar sum could not promise that.
    cost_nanos: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def cost_usd(self) -> float:
        """Accumulated spend in dollars (derived, display/compare)."""
        return self.cost_nanos / 1e9

    @property
    def mean_latency_s(self) -> float:
        """Mean wall time of one scored question on its worker."""
        if self.records == 0:
            return 0.0
        return self.busy_time_s / self.records

    @property
    def utilization(self) -> float:
        """Fraction of available worker time spent computing."""
        available = self.wall_time_s * max(1, self.workers)
        if available <= 0.0:
            return 0.0
        return min(1.0, self.busy_time_s / available)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def throughput(self) -> float:
        """Questions scored per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.records / self.wall_time_s

    def to_dict(self) -> dict[str, object]:
        """Raw counters, JSON-compatible (run-finished ledger events)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": self.wall_time_s,
            "busy_time_s": self.busy_time_s,
            "workers": self.workers,
            "latency_p50_s": self.latency_p50_s,
            "latency_p90_s": self.latency_p90_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_min_s": self.latency_min_s,
            "latency_max_s": self.latency_max_s,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "hedged": self.hedged,
            "adaptive_high_water": self.adaptive_high_water,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "cost_nanos": self.cost_nanos,
            "cost_usd": self.cost_usd,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        """Rebuild a snapshot persisted by :meth:`to_dict`.

        The histogram fields default to 0.0 — and the batched-engine
        counters to 0 — so ledgers written before they existed still
        load.
        """
        stats = {key: payload[key] for key in (
            "records", "calls", "retries", "faults", "timeouts",
            "cache_hits", "cache_misses", "wall_time_s", "busy_time_s",
            "workers")}
        for key in ("latency_p50_s", "latency_p90_s", "latency_p99_s",
                    "latency_min_s", "latency_max_s"):
            stats[key] = float(payload.get(key, 0.0))
        for key in ("batches", "coalesced", "hedged",
                    "adaptive_high_water", "prompt_tokens",
                    "completion_tokens", "cost_nanos"):
            stats[key] = int(payload.get(key, 0))
        return cls(**stats)

    def as_row(self) -> dict[str, object]:
        """One report row (``repro.core.report.format_rows`` shape)."""
        return {
            "records": self.records,
            "calls": self.calls,
            "retries": self.retries,
            "faults": self.faults,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": f"{self.cache_hit_rate:.3f}",
            "batches": self.batches,
            "coalesced": self.coalesced,
            "hedged": self.hedged,
            "adaptive_hw": self.adaptive_high_water,
            "tokens": self.total_tokens,
            "cost_usd": f"{self.cost_usd:.4f}",
            "workers": self.workers,
            "wall_s": f"{self.wall_time_s:.3f}",
            "q_per_s": f"{self.throughput:.1f}",
            "utilization": f"{self.utilization:.3f}",
            "p50_ms": f"{self.latency_p50_s * 1e3:.2f}",
            "p99_ms": f"{self.latency_p99_s * 1e3:.2f}",
        }


class Telemetry:
    """Thread-safe recorder shared by middleware and scheduler.

    The recording API is unchanged from the counter-bag days; the
    storage is a :class:`MetricsRegistry` (exposed as ``.registry``)
    so the same numbers flow to the Prometheus exporter without a
    second bookkeeping path.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        r = self.registry
        self._records = r.counter(RECORDS, "questions scored")
        self._calls = r.counter(CALLS,
                                "model invocations reaching a backend")
        self._retries = r.counter(RETRIES, "re-attempts after faults")
        self._faults = r.counter(FAULTS, "transient faults observed")
        self._timeouts = r.counter(TIMEOUTS, "per-call timeouts")
        self._cache_hits = r.counter(CACHE_HITS,
                                     "response cache hits")
        self._cache_misses = r.counter(CACHE_MISSES,
                                       "response cache misses")
        self._wall = r.counter(WALL_SECONDS,
                               "scheduler wall-clock seconds")
        self._workers = r.gauge(WORKERS, "peak worker threads")
        self._latency = r.histogram(
            LATENCY, "per-question worker seconds")
        self._batches = r.counter(
            BATCHES, "backend generate_batch dispatches")
        self._coalesced = r.counter(
            COALESCED, "prompts sharing an identical in-flight call")
        self._hedges = r.counter(
            HEDGES, "hedge requests launched by a backend pool")
        self._adaptive_hw = r.gauge(
            ADAPTIVE_HIGH_WATER, "AIMD concurrency window high water")
        self._prompt_tokens = r.counter(
            PROMPT_TOKENS, "prompt tokens sent to backends")
        self._completion_tokens = r.counter(
            COMPLETION_TOKENS, "completion tokens returned")
        self._cost_nanos = r.counter(
            COST_NANOS, "accumulated spend in nano-dollars")

    # ------------------------------------------------------------------
    # Recording (called from worker threads)
    # ------------------------------------------------------------------
    def record_call(self, n: int = 1) -> None:
        self._calls.add(n)

    def record_retry(self) -> None:
        self._retries.add(1)

    def record_fault(self, timeout: bool = False) -> None:
        self._faults.add(1)
        if timeout:
            self._timeouts.add(1)

    def record_cache(self, hit: bool) -> None:
        if hit:
            self._cache_hits.add(1)
        else:
            self._cache_misses.add(1)

    def record_work(self, seconds: float) -> None:
        """One question scored, taking ``seconds`` of worker time."""
        self._records.add(1)
        self._latency.observe(seconds)

    def record_run(self, wall_time_s: float, workers: int) -> None:
        """Account one scheduler pass (called once per run)."""
        self._wall.add(wall_time_s)
        self._workers.set_max(workers)

    def record_batch(self, size: int) -> None:
        """One ``generate_batch`` dispatch of ``size`` prompts."""
        self._batches.add(1)

    def record_coalesced(self) -> None:
        """One prompt served by an identical in-flight call."""
        self._coalesced.add(1)

    def record_hedge(self) -> None:
        """One hedge request launched by a backend pool."""
        self._hedges.add(1)

    def record_adaptive_limit(self, limit: float) -> None:
        """Track the AIMD window's high-water mark."""
        self._adaptive_hw.set_max(int(limit))

    def record_tokens(self, prompt_tokens: int,
                      completion_tokens: int,
                      cost_nanos: int) -> None:
        """One billed backend attempt (see ``repro.obs.cost``)."""
        self._prompt_tokens.add(prompt_tokens)
        self._completion_tokens.add(completion_tokens)
        self._cost_nanos.add(cost_nanos)

    # ------------------------------------------------------------------
    def snapshot(self) -> EngineStats:
        """Freeze the registry into an immutable stats value."""
        return EngineStats(
            records=int(self._records.value),
            calls=int(self._calls.value),
            retries=int(self._retries.value),
            faults=int(self._faults.value),
            timeouts=int(self._timeouts.value),
            cache_hits=int(self._cache_hits.value),
            cache_misses=int(self._cache_misses.value),
            wall_time_s=self._wall.value,
            busy_time_s=self._latency.total,
            workers=max(1, int(self._workers.value)),
            latency_p50_s=self._latency.quantile(0.50),
            latency_p90_s=self._latency.quantile(0.90),
            latency_p99_s=self._latency.quantile(0.99),
            latency_min_s=self._latency.min,
            latency_max_s=self._latency.max,
            batches=int(self._batches.value),
            coalesced=int(self._coalesced.value),
            hedged=int(self._hedges.value),
            adaptive_high_water=int(self._adaptive_hw.value),
            prompt_tokens=int(self._prompt_tokens.value),
            completion_tokens=int(self._completion_tokens.value),
            cost_nanos=int(self._cost_nanos.value),
        )

    def reset(self) -> None:
        """Zero every counter (between benchmark phases)."""
        self.registry.reset()
