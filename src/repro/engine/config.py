"""Configuration for the execution engine.

One frozen dataclass holds every knob — worker count, in-flight
window, retry policy, per-call timeout, rate limit, cache capacity —
so an engine can be described, logged, and rebuilt from a handful of
CLI flags.  All defaults reproduce the sequential runner's behaviour
exactly (one worker, no timeout, no rate limit) with caching on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attempt ``k`` (0-based) sleeps ``base_delay * 2**k`` capped at
    ``max_delay``, plus a jitter fraction in ``[0, jitter)`` of that
    step drawn deterministically from the prompt — identical reruns
    back off identically, while concurrent workers hitting the same
    endpoint spread out instead of thundering in lockstep.
    """

    retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Every engine knob in one place.

    Args:
        max_workers: Worker threads; 1 reproduces the sequential path.
        max_in_flight: Bound on submitted-but-unfinished calls (0
            means ``2 * max_workers``, widened to ``2 * batch_size``
            under batching so batches can actually fill), so a huge
            pool never floods the executor queue.
        retry: Backoff policy for transient faults; ``None`` disables
            retrying entirely.
        timeout: Per-call time budget in seconds (``None`` = none).
        rate: Sustained calls/second across all workers (``None`` =
            unlimited); ``burst`` is the token-bucket capacity.
        cache: Whether responses are memoized on (model, prompt).
        cache_capacity: LRU bound on cached entries (``None`` =
            unbounded).
        batch_size: Maximum prompts grouped into one backend
            ``generate_batch`` call (1 disables the batching layer
            and reproduces the per-prompt path exactly).
        batch_linger_s: How long a pending batch waits for company
            before being flushed short — the classic dynamic-batching
            deadline.  Bounds the latency a prompt can pay for
            batching; 0 flushes on the next dispatcher tick.
        coalesce: Whether identical *in-flight* prompts share one
            backend call (distinct from the response cache, which
            only serves calls that already completed).
        adaptive: AIMD concurrency control over batch dispatch —
            additive increase per successful batch, multiplicative
            backoff on transient faults and timeouts.
        trail: Capture a per-question provenance trail
            (:mod:`repro.obs.trail`) annotated by every middleware
            layer and stamped onto each record.  Off by default so
            trail-off runs stay byte-identical to earlier releases.
    """

    max_workers: int = 1
    max_in_flight: int = 0
    retry: RetryPolicy | None = RetryPolicy()
    timeout: float | None = None
    rate: float | None = None
    burst: int = 8
    cache: bool = True
    cache_capacity: int | None = None
    batch_size: int = 1
    batch_linger_s: float = 0.002
    coalesce: bool = False
    adaptive: bool = False
    trail: bool = False

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if self.max_in_flight < 0:
            raise ValueError("max_in_flight must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.batch_linger_s < 0:
            raise ValueError("batch_linger_s must be non-negative")

    @property
    def in_flight_window(self) -> int:
        """Effective bound on concurrently submitted calls.

        Under batching the default widens to twice the batch size:
        batches fill from submitted-but-unfinished items, so a window
        narrower than ``batch_size`` could never produce a full
        batch.
        """
        if self.max_in_flight:
            return max(self.max_in_flight, self.max_workers)
        return max(2 * self.max_workers, 2 * self.batch_size)
