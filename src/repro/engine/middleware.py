"""Resilience middleware: composable ChatModel wrappers.

Each wrapper takes an inner ``ChatModel`` and is itself a
``ChatModel``, so policies stack like function composition.  The
canonical order (outermost first), assembled by
``scheduler.EvaluationEngine.wrap``::

    CachedModel(RetryingModel(RateLimitedModel(TimeoutModel(inner))))

The order matters: the cache sits outside retrying so a hit costs
nothing at all, retrying sits outside the rate limiter so every
re-attempt pays for a token (a retry storm cannot exceed the
endpoint's budget), and the timeout hugs the backend so it measures
the call alone, not time spent queueing for a token.

All time sources and sleep functions are injectable, so the tests
drive the policies with fake clocks and zero real sleeping.  Jitter is
deterministic (hash of the prompt and attempt number, via
``repro.llm.rng``), keeping reruns exactly reproducible.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Callable

from repro.engine.config import RetryPolicy
from repro.engine.telemetry import Telemetry
from repro.errors import (ModelError, ModelTimeoutError,
                          ModelTransientError)
from repro.llm.base import ChatModel
from repro.llm.rng import unit_float
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import current_trail

Clock = Callable[[], float]
Sleeper = Callable[[float], None]

_log = logging.getLogger("repro.engine.middleware")


def backoff_delay(policy: RetryPolicy, attempt: int,
                  prompt: str = "") -> float:
    """Seconds to sleep before re-attempt ``attempt`` (0-based).

    Pure function: exponential step capped at ``max_delay``, plus a
    deterministic jitter fraction drawn from ``(prompt, attempt)``.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    step = min(policy.base_delay * (2.0 ** attempt), policy.max_delay)
    if policy.jitter == 0.0:
        return step
    fraction = unit_float("backoff", prompt, attempt) * policy.jitter
    return step * (1.0 + fraction)


class RetryingModel:
    """Retries transient failures with exponential backoff.

    Catches :class:`ModelTransientError` (including timeouts), sleeps
    one backoff step and re-issues the identical prompt.  After
    ``policy.retries`` failed re-attempts the last transient error is
    wrapped in a plain :class:`ModelError` — callers see a hard
    failure, not a retryable one.
    """

    def __init__(self, inner: ChatModel, policy: RetryPolicy,
                 telemetry: Telemetry | None = None,
                 sleeper: Sleeper = time.sleep,
                 tracer: Tracer | NullTracer = NULL_TRACER):
        self.inner = inner
        self.name = inner.name
        self.policy = policy
        self._telemetry = telemetry
        self._sleep = sleeper
        self._tracer = tracer

    def _attempt_once(self, prompt: str, attempt: int,
                      last: ModelTransientError | None
                      ) -> tuple[str | None, ModelTransientError | None]:
        if attempt > 0:
            if self._telemetry is not None:
                self._telemetry.record_retry()
            delay = backoff_delay(self.policy, attempt - 1, prompt)
            _log.info("retry model=%s attempt=%d/%d fault=%s "
                      "delay=%.4fs", self.name, attempt,
                      self.policy.retries,
                      type(last).__name__ if last else "?", delay)
            self._sleep(delay)
        try:
            return self.inner.generate(prompt), None
        except ModelTransientError as exc:
            if self._telemetry is not None:
                self._telemetry.record_fault(
                    timeout=isinstance(exc, ModelTimeoutError))
            return None, exc

    def generate(self, prompt: str) -> str:
        trail = current_trail()
        last: ModelTransientError | None = None
        for attempt in range(self.policy.retries + 1):
            if attempt == 0:
                response, fault = self._attempt_once(prompt, 0, None)
            else:
                with self._tracer.span(
                        "retry", model=self.name, attempt=attempt,
                        fault=type(last).__name__):
                    response, fault = self._attempt_once(
                        prompt, attempt, last)
            if fault is None:
                if trail is not None:
                    trail.attempts = attempt + 1
                return response  # type: ignore[return-value]
            if trail is not None:
                trail.note_error(type(fault).__name__,
                                 injected=getattr(fault, "injected",
                                                  False))
            last = fault
        if trail is not None:
            trail.attempts = self.policy.retries + 1
        raise ModelError(
            f"{self.name}: gave up after {self.policy.retries + 1} "
            f"attempts ({last})") from last

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RetryingModel({self.inner!r})"


class TimeoutModel:
    """Enforces a per-call time budget on the wrapped backend.

    The budget is checked cooperatively: the call runs to completion
    and :class:`ModelTimeoutError` is raised if it took longer than
    ``timeout`` seconds (a Python thread cannot be interrupted
    mid-call, and spawning a watcher thread per call would swamp the
    worker pool).  The slow response is discarded, the wrapping
    :class:`RetryingModel` re-attempts, and telemetry counts the
    timeout — which is exactly the externally observable behaviour of
    a client-side request timeout against a deterministic backend.
    """

    def __init__(self, inner: ChatModel, timeout: float,
                 clock: Clock = time.monotonic):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.inner = inner
        self.name = inner.name
        self.timeout = timeout
        self._clock = clock

    def generate(self, prompt: str) -> str:
        started = self._clock()
        response = self.inner.generate(prompt)
        elapsed = self._clock() - started
        if elapsed > self.timeout:
            trail = current_trail()
            if trail is not None:
                trail.timeout_lost_s += elapsed
            raise ModelTimeoutError(elapsed, self.timeout)
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeoutModel({self.inner!r}, {self.timeout})"


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s up to ``capacity``.

    ``acquire`` blocks (via the injectable sleeper) until a token is
    available, so callers across all worker threads collectively never
    exceed the sustained rate, while bursts up to ``capacity`` pass
    without waiting.
    """

    def __init__(self, rate: float, capacity: int = 8,
                 clock: Clock = time.monotonic,
                 sleeper: Sleeper = time.sleep):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        self._sleep = sleeper
        self._tokens = float(capacity)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(float(self.capacity),
                           self._tokens
                           + (now - self._updated) * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled view, for tests)."""
        with self._lock:
            self._refill()
            return self._tokens

    def acquire(self) -> float:
        """Take one token, sleeping until it exists; returns the wait."""
        waited = 0.0
        while True:
            with self._lock:
                self._refill()
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return waited
                shortfall = (1.0 - self._tokens) / self.rate
            self._sleep(shortfall)
            waited += shortfall


class RateLimitedModel:
    """ChatModel wrapper metering calls through a token bucket."""

    def __init__(self, inner: ChatModel, bucket: TokenBucket):
        self.inner = inner
        self.name = inner.name
        self.bucket = bucket

    def generate(self, prompt: str) -> str:
        waited = self.bucket.acquire()
        if waited:
            trail = current_trail()
            if trail is not None:
                trail.rate_wait_s += waited
        return self.inner.generate(prompt)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RateLimitedModel({self.inner!r})"


class FaultInjectingModel:
    """Deterministically flaky ChatModel for resilience tests.

    Simulates an unreliable endpoint: a call fails with
    :class:`ModelTransientError` when a hash draw over
    ``(seed, prompt, attempt)`` lands under ``failure_rate`` — but
    never more than ``max_consecutive`` times in a row per prompt, so
    a retry budget of at least ``max_consecutive`` always succeeds
    eventually.  Failure order is a pure function of the seed and each
    prompt's own attempt counter, independent of thread interleaving:
    any worker count sees the same faults and the same final
    responses.
    """

    def __init__(self, inner: ChatModel, seed: int = 0,
                 failure_rate: float = 0.3, max_consecutive: int = 2):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if max_consecutive < 0:
            raise ValueError("max_consecutive must be non-negative")
        self.inner = inner
        self.name = inner.name
        self.seed = seed
        self.failure_rate = failure_rate
        self.max_consecutive = max_consecutive
        self.faults_injected = 0
        self._streak: dict[str, int] = {}
        self._lock = threading.Lock()

    def generate(self, prompt: str) -> str:
        with self._lock:
            streak = self._streak.get(prompt, 0)
            fail = (streak < self.max_consecutive
                    and unit_float("fault", self.seed, prompt, streak)
                    < self.failure_rate)
            if fail:
                self._streak[prompt] = streak + 1
                self.faults_injected += 1
            else:
                self._streak[prompt] = 0
        if fail:
            _log.info("fault-injected model=%s streak=%d "
                      "prompt_hash=%#06x", self.name, streak + 1,
                      hash(prompt) & 0xffff)
            exc = ModelTransientError(
                f"{self.name}: injected transient fault "
                f"#{streak + 1} for prompt hash "
                f"{hash(prompt) & 0xffff:#06x}")
            # Marks the fault as synthetic so the provenance trail can
            # distinguish injected chaos from genuine backend faults.
            exc.injected = True
            raise exc
        return self.inner.generate(prompt)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultInjectingModel({self.inner!r}, "
                f"seed={self.seed}, rate={self.failure_rate})")
