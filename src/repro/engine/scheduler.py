"""The engine scheduler: bounded fan-out with deterministic ordering.

``EvaluationEngine`` sits between the experiment drivers and the
``ChatModel`` backends.  Given a model and a list of work items it (1)
wraps the model in the configured middleware stack (coalesce → cache →
retry → rate limit → timeout → batch, see ``engine.middleware`` and
``engine.batching``), then (2) fans the per-item calls out over a
``ThreadPoolExecutor`` with a bounded in-flight window, collecting
results **by submission index** — the result list is byte-for-byte the
one the sequential loop produces, so every metric downstream is
bit-identical regardless of worker count, batch size, coalescing or
hedging setting.

Threads (not processes) are the right pool here: real endpoint calls
are network-bound and the simulated backends release the GIL whenever
they sleep, so wall-clock scales with workers while all state stays
shared (one cache, one telemetry, one rate limiter).  Under batching
the pool is *wider* than ``max_workers``: batches fill from prompts
whose worker threads are concurrently parked inside the batching
dispatcher, so the thread count must cover the in-flight window —
parked threads cost almost nothing, and the backend concurrency is
governed by the batch dispatch (and the AIMD limiter), not the pool
width.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import (FIRST_COMPLETED, ThreadPoolExecutor,
                                wait)
from typing import Any, TypeVar

from repro.engine.batching import (AdaptiveLimiter, BatchingModel,
                                   CoalescingModel, close_model_stack)
from repro.engine.cache import CachedModel, ResponseCache
from repro.engine.config import EngineConfig
from repro.engine.middleware import (Clock, RateLimitedModel,
                                     RetryingModel, TimeoutModel,
                                     TokenBucket)
from repro.engine.telemetry import EngineStats, Telemetry
from repro.llm.base import (ChatModel, async_batch_fn,
                            call_generate_batch,
                            supports_generate_batch)
from repro.obs.cost import (DEFAULT_TOKEN_COUNTER, CostMeter,
                            price_for)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import call_site, trail_scope

R = TypeVar("R")


class _CountingModel:
    """Innermost wrapper: counts attempts that reach the backend and
    wraps each one in a ``model_call`` span (the backend alone — no
    queueing, no retries, no cache)."""

    def __init__(self, inner: ChatModel, telemetry: Telemetry,
                 tracer: "Tracer | NullTracer" = NULL_TRACER):
        self.inner = inner
        self.name = inner.name
        self._telemetry = telemetry
        self._tracer = tracer
        # Re-export the backend's batch entry points so the batching
        # dispatcher can still negotiate them through this wrapper —
        # and ONLY then: advertising generate_batch over a per-prompt
        # backend would turn the batcher's per-prompt fault isolation
        # into all-or-nothing batch failures.
        inner_async = async_batch_fn(inner)
        if inner_async is not None:
            async def agenerate_batch(
                    prompts: Sequence[str]) -> list[str]:
                self._telemetry.record_call(n=len(prompts))
                with self._tracer.span("model_call", model=self.name,
                                       n=len(prompts)):
                    return await inner_async(prompts)
            self.agenerate_batch = agenerate_batch
        if supports_generate_batch(inner):
            def generate_batch(
                    prompts: Sequence[str]) -> list[str]:
                self._telemetry.record_call(n=len(prompts))
                with self._tracer.span("model_call", model=self.name,
                                       n=len(prompts)):
                    return call_generate_batch(self.inner, prompts)
            self.generate_batch = generate_batch

    def generate(self, prompt: str) -> str:
        self._telemetry.record_call()
        # call_site() carries the question uid / cell the runner set on
        # this thread, making the span joinable to its ledger record.
        with self._tracer.span("model_call", model=self.name,
                               **call_site()):
            return self.inner.generate(prompt)


class EvaluationEngine:
    """Concurrent, fault-tolerant executor for evaluation workloads.

    One engine owns one response cache and one telemetry collector and
    can drive any number of runs; reusing the engine across runs is
    what makes reruns warm.  Pass it to
    :class:`repro.core.runner.EvaluationRunner` (or
    ``TaxoGlimpse(engine=...)``) and every ``evaluate`` call flows
    through it.

    Args:
        config: Every knob (workers, retries, timeout, rate, cache).
        cache: An explicit :class:`ResponseCache` (e.g. loaded from
            disk); default builds one per ``config.cache``.
        clock: Injectable time source for telemetry (tests).
        tracer: Span recorder threaded into the middleware stack
            (``model_call``/``retry``/``cache_lookup`` spans); the
            default :data:`repro.obs.NULL_TRACER` costs nothing.
    """

    def __init__(self, config: EngineConfig | None = None,
                 cache: ResponseCache | None = None,
                 clock: Clock = time.perf_counter,
                 tracer: "Tracer | NullTracer" = NULL_TRACER):
        self.config = config if config is not None else EngineConfig()
        self.telemetry = Telemetry()
        self.tracer = tracer
        self._clock = clock
        if cache is not None:
            self.cache: ResponseCache | None = cache
        elif self.config.cache:
            self.cache = ResponseCache(
                capacity=self.config.cache_capacity)
        else:
            self.cache = None

    # ------------------------------------------------------------------
    def wrap(self, model: ChatModel) -> ChatModel:
        """Apply the middleware stack (documented order) to a model.

        Outermost to innermost: coalesce → cache → retry → cost →
        rate limit → timeout → batch → counting → backend.  The
        cost meter sits *inside* the retry loop, so every re-attempt
        is billed for the prompt tokens it re-sends (exactly what a
        real endpoint charges), and *inside* the cache, so a hit
        never reaches it and costs zero.  The coalescer sits
        *outside* the cache so that when a leader returns, its
        response is already cached — a duplicate can never slip
        between the leader finishing and the cache learning the
        value, which is what makes "one backend call per unique
        prompt" exact rather than probabilistic.  It also sits
        outside retry, so followers receive the leader's post-retry
        result (a transient fault is absorbed once, not once per
        waiter).  The batcher sits *inside* timeout so a call's
        budget covers linger plus batch service — configure
        ``timeout`` comfortably above ``batch_linger_s``.
        """
        wrapped: ChatModel = _CountingModel(model, self.telemetry,
                                            tracer=self.tracer)
        if self.config.batch_size > 1:
            limiter = (AdaptiveLimiter() if self.config.adaptive
                       else None)
            wrapped = BatchingModel(
                wrapped, self.config.batch_size,
                linger_s=self.config.batch_linger_s,
                telemetry=self.telemetry, tracer=self.tracer,
                limiter=limiter)
        if self.config.timeout is not None:
            wrapped = TimeoutModel(wrapped, self.config.timeout)
        if self.config.rate is not None:
            wrapped = RateLimitedModel(
                wrapped, TokenBucket(self.config.rate,
                                     self.config.burst))
        # Counter resolved against the *raw* backend so a registered
        # per-name override or a backend count_tokens hook is found
        # even though this layer wraps middleware, not the backend.
        wrapped = CostMeter(
            wrapped, self.telemetry,
            counter=DEFAULT_TOKEN_COUNTER.resolve(model),
            price=price_for(model.name))
        if self.config.retry is not None:
            wrapped = RetryingModel(wrapped, self.config.retry,
                                    telemetry=self.telemetry,
                                    tracer=self.tracer)
        if self.cache is not None:
            wrapped = CachedModel(wrapped, self.cache,
                                  telemetry=self.telemetry,
                                  tracer=self.tracer)
        if self.config.coalesce:
            wrapped = CoalescingModel(wrapped,
                                      telemetry=self.telemetry,
                                      tracer=self.tracer)
        return wrapped

    def run(self, model: ChatModel, items: Sequence[Any],
            fn: Callable[[ChatModel, Any], R],
            on_result: Callable[[int, R], None] | None = None
            ) -> list[R]:
        """``[fn(wrapped_model, item) for item in items]``, faster.

        Results come back in ``items`` order no matter which worker
        finished first; an exception in any call cancels the not-yet-
        started remainder and propagates to the caller.

        ``on_result(index, result)`` is invoked once per completed item
        as it finishes — in submission order on the sequential path, in
        completion order under fan-out, but always from the collecting
        thread, never a worker.  The run ledger hangs its streaming
        record sink here: after a crash, every item whose callback
        fired is on disk even though ``run`` never returned.
        """
        wrapped = self.wrap(model)
        work = list(items)
        workers = max(1, min(self.config.max_workers, len(work)))
        if self.config.batch_size > 1 and len(work) > 1:
            # Batches fill from *concurrent* generate() callers, so
            # the pool must span the in-flight window — parked
            # threads are cheap, and backend concurrency is governed
            # by batch dispatch, not pool width.
            workers = max(workers, min(self.config.in_flight_window,
                                       len(work)))
        started = self._clock()
        try:
            if workers == 1:
                results = []
                for index, item in enumerate(work):
                    result = self._timed(fn, wrapped, item)
                    if on_result is not None:
                        on_result(index, result)
                    results.append(result)
                return results
            return self._fan_out(wrapped, work, fn, workers, on_result)
        finally:
            close_model_stack(wrapped)
            self.telemetry.record_run(self._clock() - started, workers)

    def stats(self) -> EngineStats:
        """Aggregated telemetry over every run so far."""
        return self.telemetry.snapshot()

    def reset_stats(self) -> None:
        """Zero telemetry (cache contents are kept)."""
        self.telemetry.reset()

    # ------------------------------------------------------------------
    def _timed(self, fn: Callable[[ChatModel, Any], R],
               model: ChatModel, item: Any) -> R:
        started = self._clock()
        try:
            if self.config.trail:
                # One provenance collector per item, installed on the
                # worker thread where the whole middleware stack runs;
                # the runner freezes it onto the record.
                with trail_scope():
                    return fn(model, item)
            return fn(model, item)
        finally:
            self.telemetry.record_work(self._clock() - started)

    def _fan_out(self, model: ChatModel, work: list[Any],
                 fn: Callable[[ChatModel, Any], R],
                 workers: int,
                 on_result: Callable[[int, R], None] | None = None
                 ) -> list[R]:
        results: list[R] = [None] * len(work)  # type: ignore[list-item]
        remaining = iter(range(len(work)))
        pending: dict[Any, int] = {}
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-engine") as pool:

            def submit_next() -> None:
                for index in remaining:
                    pending[pool.submit(self._timed, fn, model,
                                        work[index])] = index
                    return

            for _ in range(self.config.in_flight_window):
                submit_next()
            try:
                while pending:
                    done, _ = wait(pending,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        results[index] = future.result()
                        if on_result is not None:
                            on_result(index, results[index])
                        submit_next()
            except BaseException:
                # One shutdown call beats a per-future cancel loop:
                # it also drops queued-but-unstarted work the loop
                # could race against, so a poisoned item aborts the
                # run promptly instead of draining the whole queue.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EvaluationEngine(workers="
                f"{self.config.max_workers}, cache="
                f"{self.cache is not None})")
