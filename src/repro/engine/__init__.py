"""Execution engine: concurrent, fault-tolerant evaluation at scale.

The production layer between the experiment drivers and the
``ChatModel`` backends.  Six cooperating pieces:

* ``scheduler`` — :class:`EvaluationEngine`, a bounded thread pool
  that preserves deterministic record ordering (metrics bit-identical
  to the sequential runner at any worker count, batch size, or
  coalescing setting);
* ``middleware`` — composable resilience wrappers (retry with
  deterministic exponential backoff, per-call timeout, token-bucket
  rate limiting, deterministic fault injection for tests);
* ``batching`` — :class:`BatchingModel` groups concurrent prompts
  into ``generate_batch`` calls under a linger deadline,
  :class:`CoalescingModel` makes identical in-flight prompts share
  one call, and :class:`AdaptiveLimiter` applies AIMD concurrency
  control over batch dispatch;
* ``pool`` — :class:`BackendPool`, response-equivalent backends with
  health tracking, deterministic fallback, and hedged dispatch;
* ``cache`` — a content-addressed response cache keyed on
  ``(model, prompt)`` with JSON persistence, so reruns only pay for
  cold cells;
* ``telemetry`` — per-call latency, retries, cache traffic, batches,
  coalesced/hedged calls and worker utilization aggregated into
  :class:`EngineStats`.

Quickstart::

    >>> from repro import TaxoGlimpse, DatasetKind
    >>> from repro.engine import EngineConfig, EvaluationEngine
    >>> engine = EvaluationEngine(EngineConfig(max_workers=8))
    >>> bench = TaxoGlimpse(sample_size=40, engine=engine)
    >>> result = bench.run("GPT-4", "ebay", DatasetKind.HARD)
    >>> engine.stats().records == result.metrics.n
    True
"""

from repro.engine.batching import (AdaptiveLimiter, BatchingModel,
                                   CoalescingModel, close_model_stack)
from repro.engine.cache import CachedModel, ResponseCache
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.middleware import (FaultInjectingModel,
                                     RateLimitedModel, RetryingModel,
                                     TimeoutModel, TokenBucket,
                                     backoff_delay)
from repro.engine.pool import BackendPool
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry

__all__ = [
    "EvaluationEngine",
    "EngineConfig",
    "RetryPolicy",
    "EngineStats",
    "Telemetry",
    "ResponseCache",
    "CachedModel",
    "RetryingModel",
    "TimeoutModel",
    "RateLimitedModel",
    "TokenBucket",
    "FaultInjectingModel",
    "BatchingModel",
    "CoalescingModel",
    "AdaptiveLimiter",
    "BackendPool",
    "close_model_stack",
    "backoff_delay",
]
