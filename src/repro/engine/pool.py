"""Multi-backend pools: health tracking, fallback and hedging.

A :class:`BackendPool` groups *response-equivalent* backends — N
deployments of the same model behind different endpoints — into one
``ChatModel``.  Because every member returns the same text for the
same prompt, which member serves a request can never change a record:
the pool only changes availability and tail latency, which is what
keeps the engine's bit-identity contract intact under fallback and
hedging.

Dispatch is deterministic: backends are tried in index order,
restricted to the ones currently healthy (a backend that failed
``max_failures`` consecutive calls sits out a ``cooldown_s`` window;
if everything is unhealthy the full list is used rather than
deadlocking).  Two escalation mechanisms:

* **Fallback** — a backend that raises :class:`ModelError` is marked
  against and the next candidate is tried; only when every candidate
  failed does the last error propagate.
* **Hedging** — with ``hedge_delay_s`` set, a call that has not
  completed within the delay launches a duplicate on the next
  candidate and the first successful response wins.  The loser is
  abandoned (its response is discarded), trading duplicate backend
  work for p99 latency — the classic tail-at-scale trade.

Each backend can carry its own token bucket (``rate``/``burst``), so
a pool can meter per-endpoint quotas independently, and the pool
advertises ``generate_batch`` by delegating a whole batch to the
first healthy candidate (batch hedging is deliberately not attempted:
a duplicated batch doubles N calls, not one).
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, \
    ThreadPoolExecutor, wait
from collections.abc import Callable, Sequence

from repro.engine.middleware import TokenBucket
from repro.engine.telemetry import Telemetry
from repro.errors import ModelError
from repro.llm.base import ChatModel, call_generate_batch
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import current_trail

_log = logging.getLogger("repro.engine.pool")

Clock = Callable[[], float]


class _Health:
    """Consecutive-failure tracker for one backend."""

    __slots__ = ("consecutive", "down_until")

    def __init__(self) -> None:
        self.consecutive = 0
        self.down_until = 0.0


class BackendPool:
    """Response-equivalent backends behind one ChatModel face.

    The pool's ``name`` defaults to the first backend's, so cache
    keys, ledger records and metrics are identical to running that
    backend alone — the equivalence contract made structural.
    """

    def __init__(self, backends: Sequence[ChatModel],
                 hedge_delay_s: float | None = None,
                 max_failures: int = 3, cooldown_s: float = 30.0,
                 rate: float | None = None, burst: int = 8,
                 name: str | None = None,
                 telemetry: Telemetry | None = None,
                 tracer: "Tracer | NullTracer" = NULL_TRACER,
                 clock: Clock = time.monotonic):
        backends = list(backends)
        if not backends:
            raise ValueError("a BackendPool needs >= 1 backend")
        if hedge_delay_s is not None and hedge_delay_s < 0:
            raise ValueError("hedge_delay_s must be non-negative")
        if max_failures < 1:
            raise ValueError("max_failures must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.backends = backends
        self.name = name if name is not None else backends[0].name
        self.hedge_delay_s = hedge_delay_s
        self.max_failures = max_failures
        self.cooldown_s = cooldown_s
        self._buckets = ([TokenBucket(rate, burst) for _ in backends]
                         if rate is not None else None)
        self._telemetry = telemetry
        self._tracer = tracer
        self._clock = clock
        self._health = [_Health() for _ in backends]
        self._lock = threading.Lock()
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Health bookkeeping
    # ------------------------------------------------------------------
    def healthy_indices(self) -> list[int]:
        """Candidate backends in deterministic (index) order."""
        now = self._clock()
        with self._lock:
            healthy = [index for index, health
                       in enumerate(self._health)
                       if health.down_until <= now]
        # An all-down pool serves with every backend rather than
        # refusing: cooldown is a hint, not a death sentence.
        return healthy if healthy else list(range(len(self.backends)))

    def _record_outcome(self, index: int, ok: bool) -> None:
        with self._lock:
            health = self._health[index]
            if ok:
                health.consecutive = 0
                health.down_until = 0.0
                return
            health.consecutive += 1
            if health.consecutive >= self.max_failures:
                health.down_until = self._clock() + self.cooldown_s
                _log.info("backend-cooldown pool=%s index=%d "
                          "failures=%d cooldown=%.1fs", self.name,
                          index, health.consecutive, self.cooldown_s)

    def _call(self, index: int, prompt: str) -> str:
        if self._buckets is not None:
            self._buckets[index].acquire()
        try:
            response = self.backends[index].generate(prompt)
        except ModelError:
            self._record_outcome(index, ok=False)
            raise
        self._record_outcome(index, ok=True)
        return response

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def generate(self, prompt: str) -> str:
        order = self.healthy_indices()
        if self.hedge_delay_s is None or len(order) < 2:
            return self._fallback(order, prompt)
        return self._hedged(order, prompt)

    def generate_batch(self, prompts: Sequence[str]) -> list[str]:
        """Delegate a whole batch, with fallback but no hedging."""
        order = self.healthy_indices()
        last: ModelError | None = None
        for index in order:
            try:
                if self._buckets is not None:
                    self._buckets[index].acquire()
                responses = call_generate_batch(
                    self.backends[index], prompts)
            except ModelError as exc:
                self._record_outcome(index, ok=False)
                last = exc
                continue
            self._record_outcome(index, ok=True)
            return responses
        raise ModelError(
            f"{self.name}: every backend failed the batch "
            f"({last})") from last

    def _fallback(self, order: list[int], prompt: str) -> str:
        trail = current_trail()
        last: ModelError | None = None
        for position, index in enumerate(order):
            try:
                response = self._call(index, prompt)
            except ModelError as exc:
                last = exc
                if trail is not None:
                    trail.fallbacks.append(index)
                if position + 1 < len(order):
                    _log.info("backend-fallback pool=%s from=%d "
                              "to=%d fault=%s", self.name, index,
                              order[position + 1],
                              type(exc).__name__)
                continue
            if trail is not None:
                trail.replica = index
            return response
        raise ModelError(
            f"{self.name}: every backend failed ({last})") from last

    def _hedged(self, order: list[int], prompt: str) -> str:
        """Primary call, duplicated onto the next candidate if slow.

        First successful response wins; a candidate that fails hands
        off to the next one.  Because members are response-equivalent
        the winner's identity never shows in the output.
        """
        executor = self._ensure_executor()
        trail = current_trail()
        pending: dict[Future, int] = {}
        hedges: set[Future] = set()
        next_up = iter(order)
        errors: list[ModelError] = []

        def launch() -> "Future | None":
            for index in next_up:
                future = executor.submit(self._call, index, prompt)
                pending[future] = index
                return future
            return None

        launch()
        timeout: float | None = self.hedge_delay_s
        while pending:
            done, _ = wait(pending, timeout=timeout,
                           return_when=FIRST_COMPLETED)
            if not done:                    # hedge deadline passed
                hedge = launch()
                if hedge is not None:
                    hedges.add(hedge)
                    if trail is not None:
                        trail.hedged = True
                    if self._telemetry is not None:
                        self._telemetry.record_hedge()
                    with self._tracer.span(
                            "hedge", model=self.name,
                            delay_s=self.hedge_delay_s):
                        pass
                timeout = None   # at most one hedge per request
                continue
            for future in done:
                index = pending.pop(future)
                try:
                    response = future.result()
                except ModelError as exc:
                    errors.append(exc)
                    if trail is not None:
                        trail.fallbacks.append(index)
                    launch()
                    continue
                if trail is not None:
                    trail.replica = index
                    trail.hedge_won = future in hedges
                return response
            timeout = None
        last = errors[-1] if errors else None
        raise ModelError(
            f"{self.name}: every backend failed ({last})") from last

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=2 * len(self.backends),
                    thread_name_prefix="repro-hedge")
            return self._executor

    def close(self) -> None:
        """Shut the hedging executor down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BackendPool({self.name!r}, "
                f"n={len(self.backends)}, "
                f"hedge={self.hedge_delay_s})")
