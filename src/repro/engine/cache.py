"""Content-addressed response cache.

Responses are keyed on ``(model name, prompt text)`` — nothing else
reaches a chat endpoint, so nothing else can change the answer of a
deterministic (temperature-0) backend.  The cache is an LRU dict under
one lock with hit/miss/eviction counters, and it round-trips through
JSON the same way ``repro.taxonomy.io`` serializes taxonomies, so a
finished table can be re-run for free: every warm cell is served from
disk and only cold cells cost model calls.

``CachedModel`` is the middleware face of the cache: a ``ChatModel``
wrapper that consults the cache before delegating to the wrapped
backend.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.engine.telemetry import Telemetry
from repro.errors import ModelError
from repro.llm.base import ChatModel
from repro.obs.metrics import global_registry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import current_trail

_FORMAT_VERSION = 1

_log = logging.getLogger("repro.engine.cache")

#: Global-registry counter names for cache persistence events.
PERSIST_SAVES = "repro_cache_persist_saves_total"
PERSIST_LOADS = "repro_cache_persist_loads_total"
PERSIST_CORRUPT = "repro_cache_persist_corrupt_recoveries_total"


class ResponseCache:
    """Thread-safe LRU of (model, prompt) -> response."""

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], str] = OrderedDict()
        #: Keys whose response came from a persisted snapshot rather
        #: than a live backend call this process made — provenance
        #: trails report these hits as ``cache_source="persisted"``.
        self._persisted: set[tuple[str, str]] = set()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Persistence counters (mirrored into the global registry so
        #: silent data loss shows up in metric dumps, not just here).
        self.saves = 0
        self.loads = 0
        self.corrupt_recoveries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, model_name: str, prompt: str) -> str | None:
        """The cached response, or ``None`` (counts a hit/miss)."""
        key = (model_name, prompt)
        with self._lock:
            response = self._entries.get(key)
            if response is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return response

    def put(self, model_name: str, prompt: str, response: str) -> None:
        """Store one response, evicting the LRU entry when full."""
        key = (model_name, prompt)
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            self._persisted.discard(key)
            while (self.capacity is not None
                   and len(self._entries) > self.capacity):
                evicted, _ = self._entries.popitem(last=False)
                self._persisted.discard(evicted)
                self.evictions += 1

    def source(self, model_name: str, prompt: str) -> str | None:
        """Where a cached response came from, without touching LRU
        order or counters: ``"persisted"`` (disk snapshot),
        ``"memory"`` (live call this process), or ``None``."""
        key = (model_name, prompt)
        with self._lock:
            if key not in self._entries:
                return None
            return "persisted" if key in self._persisted else "memory"

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._persisted.clear()

    def persisted_keys(self) -> set[tuple[str, str]]:
        """Snapshot of keys loaded from a persisted snapshot."""
        with self._lock:
            return set(self._persisted)

    def entries(self) -> list[tuple[str, str, str]]:
        """A ``(model, prompt, response)`` snapshot, LRU order."""
        with self._lock:
            return [(model, prompt, response)
                    for (model, prompt), response
                    in self._entries.items()]

    def merge(self, other: "ResponseCache") -> int:
        """Fold ``other``'s entries in; existing keys win.

        First-writer-wins is what makes a multi-way merge
        deterministic regardless of which shard answered a prompt
        first in wall-clock time: callers merge shards in index
        order, so the surviving response for a key depends only on
        the shard order, never on scheduling.  Returns the number of
        entries actually added.
        """
        added = 0
        persisted = other.persisted_keys()
        for model, prompt, response in other.entries():
            key = (model, prompt)
            with self._lock:
                if key in self._entries:
                    continue
                self._entries[key] = response
                if key in persisted:
                    self._persisted.add(key)
                added += 1
                while (self.capacity is not None
                       and len(self._entries) > self.capacity):
                    evicted, _ = self._entries.popitem(last=False)
                    self._persisted.discard(evicted)
                    self.evictions += 1
        return added

    # ------------------------------------------------------------------
    # Persistence (taxonomy.io-style dict round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dict."""
        with self._lock:
            return {
                "format_version": _FORMAT_VERSION,
                "entries": [
                    {"model": model, "prompt": prompt,
                     "response": response}
                    for (model, prompt), response
                    in self._entries.items()
                ],
            }

    @classmethod
    def from_dict(cls, payload: dict,
                  capacity: int | None = None) -> "ResponseCache":
        """Rebuild a cache from :meth:`to_dict` output."""
        try:
            raw_entries = payload["entries"]
        except (KeyError, TypeError) as exc:
            raise ModelError(
                f"malformed response-cache payload: {exc}") from exc
        cache = cls(capacity=capacity)
        for raw in raw_entries:
            try:
                cache.put(raw["model"], raw["prompt"], raw["response"])
            except (KeyError, TypeError) as exc:
                raise ModelError(
                    f"malformed response-cache entry: {raw!r}") from exc
        # Everything decoded here predates this process's live calls.
        with cache._lock:
            cache._persisted = set(cache._entries)
        return cache

    def save(self, path: str | Path) -> None:
        """Atomically write the cache as JSON (creating parent dirs).

        Temp file + ``os.replace``, the same protocol as
        ``repro.store.artifacts``: a crash mid-persistence leaves the
        previous file intact instead of a truncated document.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=target.parent,
                                       suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(self.to_dict(), stream, indent=1)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.saves += 1
        global_registry().counter(
            PERSIST_SAVES, "response caches persisted").add(1)
        _log.debug("cache-saved path=%s entries=%d", target, len(self))

    @classmethod
    def load(cls, path: str | Path,
             capacity: int | None = None) -> "ResponseCache":
        """Read a cache written by :meth:`save`.

        A missing, truncated or otherwise corrupt file yields an
        *empty* cache rather than an exception: the cache is a
        performance artifact, and losing it must only cost re-queries,
        never abort a run.  The recovery is counted (instance and
        global-registry counters) and logged, so the data loss is
        visible instead of silent.  (Feed :meth:`from_dict` directly
        to get strict validation.)
        """
        registry = global_registry()
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
            cache = cls.from_dict(payload, capacity=capacity)
        except (OSError, ValueError, ModelError) as exc:
            cache = cls(capacity=capacity)
            if not isinstance(exc, FileNotFoundError):
                cache.corrupt_recoveries += 1
                registry.counter(
                    PERSIST_CORRUPT,
                    "corrupt cache files recovered as empty").add(1)
                _log.warning("cache-corrupt recovered path=%s "
                             "error=%s", path, type(exc).__name__)
        cache.loads += 1
        registry.counter(
            PERSIST_LOADS, "response cache load attempts").add(1)
        return cache


def merge_caches(caches, capacity: int | None = None
                 ) -> ResponseCache:
    """Fold several caches into a fresh one, earliest-first-wins.

    The shard-run merge path: each worker process persists its *own*
    cache file (no two shards ever write one path, so there is
    nothing to clobber), and the driver folds them — in shard index
    order — into the shared cache after the run.  With ``caches``
    ordered deterministically the merged content is too.
    """
    merged = ResponseCache(capacity=capacity)
    for cache in caches:
        merged.merge(cache)
    return merged


class CachedModel:
    """ChatModel wrapper serving repeated prompts from the cache."""

    def __init__(self, inner: ChatModel, cache: ResponseCache,
                 telemetry: Telemetry | None = None,
                 tracer: Tracer | NullTracer = NULL_TRACER):
        self.inner = inner
        self.name = inner.name
        self.cache = cache
        self._telemetry = telemetry
        self._tracer = tracer

    def generate(self, prompt: str) -> str:
        with self._tracer.span("cache_lookup",
                               model=self.name) as span:
            response = self.cache.get(self.name, prompt)
            span.set(hit=response is not None)
        if self._telemetry is not None:
            self._telemetry.record_cache(hit=response is not None)
        trail = current_trail()
        if trail is not None:
            trail.cache_hit = response is not None
            if response is not None:
                trail.cache_source = self.cache.source(self.name,
                                                       prompt)
        if response is None:
            response = self.inner.generate(prompt)
            self.cache.put(self.name, prompt, response)
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedModel({self.inner!r})"
