"""Dynamic batching, in-flight coalescing and AIMD concurrency.

The asynchronous half of the engine core.  Three cooperating pieces,
each a plain object the scheduler composes into the middleware stack:

* :class:`BatchingModel` — a ChatModel wrapper that groups concurrent
  ``generate`` calls into ``generate_batch`` backend calls.  Worker
  threads park their prompt on a background asyncio event loop; the
  loop flushes a batch when ``batch_size`` prompts are pending or a
  ``linger_s`` deadline passes, whichever comes first.  Responses are
  routed back to each waiting thread by position, so the wrapper is
  externally indistinguishable from per-prompt ``generate`` — which
  is what keeps the scheduler's by-submission-index collection (and
  therefore every metric) bit-identical to the sequential loop.
* :class:`CoalescingModel` — identical *in-flight* prompts share one
  underlying call: the first caller (the leader) issues it, followers
  block until the leader's result (or exception) lands.  This is
  distinct from the response cache, which only helps calls that
  already *completed*; the coalescer closes the window where N
  workers race the same cold prompt into N backend calls.
* :class:`AdaptiveLimiter` — an AIMD gate on concurrent batch
  dispatches: additive increase after each successful batch,
  multiplicative backoff on :class:`ModelTransientError` (timeouts
  included), never below ``min_limit``.  The high-water mark is
  exported through :class:`repro.engine.telemetry.EngineStats`.

Determinism: batching and coalescing only change *which backend call*
produces a response, never the response itself — backends are
deterministic per prompt, and the coalescer shares a result only
between byte-identical prompts against the same wrapped stack.  The
middleware order proof extends to batches as follows: the coalescer
sits *outside* the cache, so a leader's response is written to the
cache before any follower (or later duplicate) is released — "one
backend call per unique prompt" is exact, with no window between a
flight resolving and the cache learning its value; the coalescer sits
outside retry (followers wait for the leader's *post-retry* result,
so a transient fault still costs exactly one retry sequence), retry
outside the rate limiter (every re-attempt pays a token), and the
timeout outside the batcher (a call's budget covers its linger plus
its batch's service time — configure ``timeout > linger``, which the
config's defaults satisfy by three orders of magnitude).
"""

from __future__ import annotations

import asyncio
import logging
import threading
from dataclasses import dataclass, field

from repro.engine.telemetry import Telemetry
from repro.errors import ModelError, ModelTransientError
from repro.llm.base import (ChatModel, async_batch_fn,
                            call_generate_batch,
                            supports_generate_batch)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.obs.trail import TrailContext, current_trail, prompt_key

_log = logging.getLogger("repro.engine.batching")


class AdaptiveLimiter:
    """AIMD gate on concurrent dispatches.

    ``acquire`` blocks while ``in_flight >= limit``; ``release``
    grows the limit additively (``+ increase / limit`` per success,
    the classic one-per-window shape) or shrinks it multiplicatively
    (``* backoff``) when the dispatch failed transiently.  The
    ``high_water`` mark records the largest integer limit the window
    ever reached.
    """

    def __init__(self, initial: int = 4, min_limit: int = 1,
                 max_limit: int = 64, increase: float = 1.0,
                 backoff: float = 0.5):
        if not 1 <= min_limit <= initial <= max_limit:
            raise ValueError("need min_limit <= initial <= max_limit")
        if increase <= 0:
            raise ValueError("increase must be positive")
        if not 0.0 < backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.backoff = backoff
        self._limit = float(initial)
        self._in_flight = 0
        self._cond = threading.Condition()
        self.high_water = initial
        self.backoffs = 0

    @property
    def limit(self) -> int:
        """Current integer window size."""
        with self._cond:
            return int(self._limit)

    def acquire(self) -> None:
        """Take one dispatch slot, blocking until the window allows."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._in_flight < int(self._limit))
            self._in_flight += 1

    def release(self, success: bool = True) -> None:
        """Return a slot and adapt the window."""
        with self._cond:
            self._in_flight = max(0, self._in_flight - 1)
            if success:
                self._limit = min(
                    float(self.max_limit),
                    self._limit + self.increase / max(1.0, self._limit))
            else:
                self._limit = max(float(self.min_limit),
                                  self._limit * self.backoff)
                self.backoffs += 1
            self.high_water = max(self.high_water, int(self._limit))
            self._cond.notify_all()


@dataclass
class _Flight:
    """One in-flight leader call that followers wait on."""

    done: threading.Event = field(default_factory=threading.Event)
    response: str | None = None
    error: BaseException | None = None

    def resolve(self, response: str | None,
                error: BaseException | None) -> None:
        self.response = response
        self.error = error
        self.done.set()

    def wait(self) -> str:
        self.done.wait()
        if self.error is not None:
            raise self.error
        return self.response  # type: ignore[return-value]


class CoalescingModel:
    """ChatModel wrapper sharing one call between identical in-flight
    prompts.

    The first thread to ask a prompt becomes its leader and issues
    the wrapped call; every thread asking the same prompt before the
    leader finishes waits on the leader's flight instead of issuing
    its own.  Exceptions propagate to every waiter — the leader's
    call already went through the retry middleware below, so a shared
    failure is a post-retry hard failure for all of them.
    """

    def __init__(self, inner: ChatModel,
                 telemetry: Telemetry | None = None,
                 tracer: "Tracer | NullTracer" = NULL_TRACER):
        self.inner = inner
        self.name = inner.name
        self._telemetry = telemetry
        self._tracer = tracer
        self._flights: dict[str, _Flight] = {}
        self._lock = threading.Lock()

    def generate(self, prompt: str) -> str:
        with self._lock:
            flight = self._flights.get(prompt)
            if flight is None:
                flight = _Flight()
                self._flights[prompt] = flight
                leader = True
            else:
                leader = False
        trail = current_trail()
        if trail is not None:
            trail.coalesced = "leader" if leader else "follower"
            # Same key for leader and all followers of one prompt —
            # the join handle for "who actually made my call".
            trail.leader_key = prompt_key(prompt)
        if not leader:
            if self._telemetry is not None:
                self._telemetry.record_coalesced()
            with self._tracer.span("coalesced_wait", model=self.name):
                return flight.wait()
        try:
            response = self.inner.generate(prompt)
        except BaseException as exc:
            flight.resolve(None, exc)
            raise
        finally:
            with self._lock:
                self._flights.pop(prompt, None)
        flight.resolve(response, None)
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoalescingModel({self.inner!r})"


@dataclass
class _Pending:
    """One parked prompt awaiting its batch."""

    prompt: str
    future: "asyncio.Future | None" = None
    #: The parked worker thread's trail, handed across explicitly so
    #: the loop-thread dispatcher can stamp batch placement onto it
    #: (the worker is blocked on ``future`` while we write, so the
    #: hand-off is race-free).
    trail: TrailContext | None = None


class BatchingModel:
    """ChatModel wrapper grouping concurrent calls into batches.

    A background thread runs an asyncio event loop (started lazily on
    the first call, joined by :meth:`close`).  ``generate`` hands its
    prompt to the loop and blocks; the loop accumulates prompts and
    flushes a batch when ``batch_size`` are pending or the oldest has
    lingered ``linger_s`` seconds.  Dispatch negotiates the backend
    protocol: a coroutine ``agenerate_batch`` is awaited on the loop
    itself, anything else runs in an executor thread through
    :func:`repro.llm.base.call_generate_batch` (one
    ``generate_batch`` call when the backend has it, a per-prompt
    loop when it does not), so the loop never blocks on inference.

    A failed dispatch fails every prompt of that batch — per-prompt
    recovery is the retry middleware's job, one layer up, and each
    re-attempt re-enters the batcher independently.
    """

    def __init__(self, inner: ChatModel, batch_size: int,
                 linger_s: float = 0.002,
                 telemetry: Telemetry | None = None,
                 tracer: "Tracer | NullTracer" = NULL_TRACER,
                 limiter: AdaptiveLimiter | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if linger_s < 0:
            raise ValueError("linger_s must be non-negative")
        self.inner = inner
        self.name = inner.name
        self.batch_size = batch_size
        self.linger_s = linger_s
        self.limiter = limiter
        self._telemetry = telemetry
        self._tracer = tracer
        self._agenerate_batch = async_batch_fn(inner)
        self._pending: list[_Pending] = []      # loop-thread only
        self._flush_handle = None               # loop-thread only
        self._batch_seq = 0                     # loop-thread only
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Event-loop lifecycle
    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        with self._start_lock:
            if self._loop is not None:
                return self._loop
            if self._closed:
                raise ModelError(f"{self.name}: batcher is closed")
            loop = asyncio.new_event_loop()
            ready = threading.Event()

            def run() -> None:
                asyncio.set_event_loop(loop)
                ready.set()
                loop.run_forever()
                # Drain callbacks scheduled before stop() landed.
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

            thread = threading.Thread(target=run, name="repro-batcher",
                                      daemon=True)
            thread.start()
            ready.wait()
            self._thread = thread
            self._loop = loop
            return loop

    def close(self) -> None:
        """Stop the dispatcher loop (idempotent; fails stragglers)."""
        with self._start_lock:
            self._closed = True
            loop, thread = self._loop, self._thread
            self._loop = self._thread = None
        if loop is None:
            return

        def shutdown() -> None:
            for item in self._pending:
                if item.future is not None and not item.future.done():
                    item.future.set_exception(ModelError(
                        f"{self.name}: batcher closed with the "
                        f"prompt still pending"))
            self._pending.clear()
            loop.stop()

        loop.call_soon_threadsafe(shutdown)
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "BatchingModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The ChatModel face (called from worker threads)
    # ------------------------------------------------------------------
    def generate(self, prompt: str) -> str:
        loop = self._ensure_loop()
        # The ambient trail is thread-local to this worker thread, so
        # it must cross into the loop thread by hand.
        future = asyncio.run_coroutine_threadsafe(
            self._park(prompt, current_trail()), loop)
        return future.result()

    async def _park(self, prompt: str,
                    trail: TrailContext | None = None) -> str:
        item = _Pending(prompt=prompt, trail=trail)
        item.future = asyncio.get_running_loop().create_future()
        self._pending.append(item)
        if len(self._pending) >= self.batch_size:
            self._flush(cut="size")
        elif self._flush_handle is None:
            self._flush_handle = asyncio.get_running_loop().call_later(
                self.linger_s, self._flush)
        return await item.future

    def _flush(self, cut: str = "linger") -> None:
        """Cut one batch off the pending queue and dispatch it."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        batch = self._pending[:self.batch_size]
        del self._pending[:self.batch_size]
        if self._pending:
            # Leftovers start a fresh linger window immediately.
            self._flush_handle = asyncio.get_running_loop().call_later(
                self.linger_s, self._flush)
        self._batch_seq += 1
        batch_id = self._batch_seq
        for item in batch:
            if item.trail is not None:
                item.trail.batch = batch_id
                item.trail.batch_size = len(batch)
                item.trail.batch_cut = cut
        asyncio.ensure_future(self._dispatch(batch, batch_id))

    async def _dispatch(self, batch: list[_Pending],
                        batch_id: int = 0) -> None:
        """Serve one batch, settling each member's future.

        A backend with a real batch entry point (``agenerate_batch``
        or ``generate_batch``) is all-or-nothing: one call, and a
        fault fails every member — that is what a shared round trip
        means.  A per-prompt backend keeps per-prompt fault isolation:
        the batcher fans the prompts over the executor concurrently
        (that *is* its win for such backends) and a fault only fails
        its own prompt, so one poisoned prompt cannot burn its
        batchmates' retry budgets.
        """
        prompts = [item.prompt for item in batch]
        loop = asyncio.get_running_loop()
        if self.limiter is not None:
            await loop.run_in_executor(None, self.limiter.acquire)
        transient = False
        try:
            with self._tracer.span("batch", model=self.name,
                                   size=len(prompts), seq=batch_id):
                if self._agenerate_batch is not None:
                    outcomes, transient = await self._shared(
                        self._agenerate_batch(prompts), prompts)
                elif supports_generate_batch(self.inner):
                    outcomes, transient = await self._shared(
                        loop.run_in_executor(
                            None, call_generate_batch, self.inner,
                            prompts), prompts)
                else:
                    outcomes, transient = await self._per_prompt(
                        loop, prompts)
            for item, outcome in zip(batch, outcomes):
                if item.future.done():
                    continue
                if isinstance(outcome, BaseException):
                    item.future.set_exception(outcome)
                else:
                    item.future.set_result(outcome)
        finally:
            if self.limiter is not None:
                self.limiter.release(success=not transient)
                if self._telemetry is not None:
                    self._telemetry.record_adaptive_limit(
                        self.limiter.limit)

    async def _shared(self, call, prompts: list[str]
                      ) -> tuple[list, bool]:
        """One real batch call; a fault fails every member."""
        try:
            responses = list(await call)
            if len(responses) != len(prompts):
                raise ModelError(
                    f"{self.name}: batch returned {len(responses)} "
                    f"responses for {len(prompts)} prompts")
        except BaseException as exc:
            _log.info("batch-failed model=%s size=%d fault=%s",
                      self.name, len(prompts), type(exc).__name__)
            return ([exc] * len(prompts),
                    isinstance(exc, ModelTransientError))
        if self._telemetry is not None:
            self._telemetry.record_batch(len(prompts))
        return responses, False

    async def _per_prompt(self, loop, prompts: list[str]
                          ) -> tuple[list, bool]:
        """Concurrent per-prompt calls with per-prompt faults."""
        outcomes = await asyncio.gather(
            *[loop.run_in_executor(None, self.inner.generate, prompt)
              for prompt in prompts],
            return_exceptions=True)
        transient = any(isinstance(outcome, ModelTransientError)
                        for outcome in outcomes)
        if self._telemetry is not None:
            self._telemetry.record_batch(len(prompts))
        return list(outcomes), transient

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BatchingModel({self.inner!r}, "
                f"batch_size={self.batch_size})")


def close_model_stack(model: ChatModel) -> None:
    """Close every closeable layer of a wrapped middleware stack.

    Walks the ``.inner`` chain calling ``close()`` where it exists —
    how the scheduler tears down the batching dispatcher's event loop
    after a run.
    """
    layer = model
    seen = 0
    while layer is not None and seen < 32:
        closer = getattr(layer, "close", None)
        if callable(closer):
            closer()
        layer = getattr(layer, "inner", None)
        seen += 1
