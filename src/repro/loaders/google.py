"""Loader for the Google Product Category dump.

The official file (taxonomy.en-US.txt) is one root-to-node path per
line, levels separated by " > ":

    # Google_Product_Taxonomy_Version: 2021-09-21
    Animals & Pet Supplies
    Animals & Pet Supplies > Live Animals
    Animals & Pet Supplies > Pet Supplies > Bird Supplies

This loader turns such a file into a :class:`Taxonomy`, sharing the
interface of the synthetic generator so the real dump can be swapped
in with one line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import TaxonomyError
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.node import Domain
from repro.taxonomy.taxonomy import Taxonomy

_SEPARATOR = " > "


def parse_path_lines(lines: Iterable[str], name: str = "Google",
                     domain: Domain = Domain.SHOPPING,
                     concept_noun: str = "products") -> Taxonomy:
    """Build a taxonomy from "A > B > C" path lines."""
    builder = TaxonomyBuilder(name, domain, concept_noun=concept_noun)
    seen_any = False
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [part.strip() for part in line.split(_SEPARATOR)]
        if any(not part for part in parts):
            raise TaxonomyError(
                f"line {line_no}: empty category segment in {line!r}")
        builder.add_path(parts)
        seen_any = True
    if not seen_any:
        raise TaxonomyError("no category paths found")
    return builder.build()


def load_google_taxonomy(path: str | Path,
                         name: str = "Google") -> Taxonomy:
    """Load a taxonomy.en-US.txt style file."""
    text = Path(path).read_text(encoding="utf-8")
    return parse_path_lines(text.splitlines(), name=name)
