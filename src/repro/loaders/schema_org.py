"""Loader for the Schema.org type hierarchy CSV.

The release file ``schemaorg-current-https-types.csv`` has columns
``id`` (the type URL), ``label`` and ``subTypeOf`` (comma-separated
parent URLs).  Schema.org is a DAG in places — a handful of types have
several supertypes — while TaxoGlimpse needs a forest, so the loader
keeps the *first* listed parent, matching how the paper's tree-shaped
statistics (Table 1: 3 trees) can only arise.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import TaxonomyError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy

REQUIRED_COLUMNS = ("id", "label", "subTypeOf")


def _local_name(url: str) -> str:
    return url.rstrip("/").rsplit("/", 1)[-1]


def parse_types_csv(text: str, name: str = "Schema") -> Taxonomy:
    """Build a taxonomy from the schema.org types CSV content."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or any(
            column not in reader.fieldnames
            for column in REQUIRED_COLUMNS):
        raise TaxonomyError(
            f"types csv must have columns {REQUIRED_COLUMNS}")
    parents: dict[str, str | None] = {}
    labels: dict[str, str] = {}
    for row in reader:
        type_id = _local_name(row["id"].strip())
        if not type_id:
            continue
        labels[type_id] = row["label"].strip() or type_id
        supertypes = [part.strip() for part
                      in row["subTypeOf"].split(",") if part.strip()]
        parents[type_id] = (_local_name(supertypes[0])
                            if supertypes else None)
    if not labels:
        raise TaxonomyError("no schema.org types found")

    nodes: dict[str, TaxonomyNode] = {}
    for type_id, label in labels.items():
        parent = parents[type_id]
        if parent is not None and parent not in labels:
            parent = None  # dangling supertype: promote to root
        nodes[type_id] = TaxonomyNode(node_id=type_id, name=label,
                                      level=0, parent_id=parent)
    for node in nodes.values():
        if node.parent_id is not None:
            nodes[node.parent_id].children_ids.append(node.node_id)
    _assign_depths(nodes)

    taxonomy = Taxonomy(name, Domain.GENERAL, nodes,
                        concept_noun="entity type")
    validate_taxonomy(taxonomy)
    return taxonomy


def _assign_depths(nodes: dict[str, TaxonomyNode]) -> None:
    for node in nodes.values():
        depth = 0
        current = node
        while current.parent_id is not None:
            current = nodes[current.parent_id]
            depth += 1
            if depth > len(nodes):
                raise TaxonomyError("cycle in subTypeOf chain")
        node.level = depth


def load_schema_taxonomy(path: str | Path) -> Taxonomy:
    """Load a schemaorg-current-https-types.csv file."""
    return parse_types_csv(Path(path).read_text(encoding="utf-8"))
