"""Loader for the NCBI Taxonomy dump (taxdump nodes.dmp / names.dmp).

The FTP taxdump distributes pipe-delimited tables:

* ``nodes.dmp``: ``tax_id | parent_tax_id | rank | ...``
* ``names.dmp``: ``tax_id | name_txt | unique_name | name_class |``
  (the canonical name has name_class ``scientific name``).

Following the paper (Section 2.1, citing Schoch et al.), only seven
ranks are kept — superkingdom/kingdom, phylum, class, order, family,
genus, species — and every kept node is re-attached to its nearest
kept ancestor, reproducing the paper's level mapping.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.errors import TaxonomyError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy

#: Rank -> paper level.  "superkingdom" and "kingdom" both map to the
#: top level ("superkingdom/kingdom/high-level clade" in the paper).
RANK_LEVELS: dict[str, int] = {
    "superkingdom": 0,
    "kingdom": 0,
    "phylum": 1,
    "class": 2,
    "order": 3,
    "family": 4,
    "genus": 5,
    "species": 6,
}


def _split_dmp(line: str) -> list[str]:
    # taxdump rows end with "\t|" and separate fields with "\t|\t".
    return [field.strip() for field in
            line.rstrip("\n").rstrip("|").split("|")]


def parse_nodes(lines: Iterable[str]) -> dict[str, tuple[str, str]]:
    """tax_id -> (parent_tax_id, rank)."""
    nodes = {}
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        fields = _split_dmp(line)
        if len(fields) < 3:
            raise TaxonomyError(
                f"nodes.dmp line {line_no}: expected >= 3 fields")
        tax_id, parent_id, rank = (fields[0].strip(),
                                   fields[1].strip(),
                                   fields[2].strip())
        nodes[tax_id] = (parent_id, rank)
    return nodes


def parse_names(lines: Iterable[str]) -> dict[str, str]:
    """tax_id -> scientific name."""
    names = {}
    for line in lines:
        if not line.strip():
            continue
        fields = _split_dmp(line)
        if len(fields) >= 4 and fields[3].strip() == "scientific name":
            names[fields[0].strip()] = fields[1].strip()
    return names


def build_ncbi_taxonomy(nodes: dict[str, tuple[str, str]],
                        names: dict[str, str],
                        name: str = "NCBI") -> Taxonomy:
    """Assemble the seven-rank taxonomy from parsed dump tables."""
    kept = {tax_id for tax_id, (_, rank) in nodes.items()
            if rank in RANK_LEVELS}
    if not kept:
        raise TaxonomyError("no nodes with the seven paper ranks")

    def nearest_kept_ancestor(tax_id: str) -> str | None:
        current = nodes[tax_id][0]
        hops = 0
        while current in nodes and hops <= len(nodes):
            if current in kept and current != tax_id:
                return current
            parent = nodes[current][0]
            if parent == current:  # taxdump roots self-reference
                return None
            current = parent
            hops += 1
        return None

    built: dict[str, TaxonomyNode] = {}
    for tax_id in kept:
        level = RANK_LEVELS[nodes[tax_id][1]]
        ancestor = nearest_kept_ancestor(tax_id)
        if ancestor is not None \
                and RANK_LEVELS[nodes[ancestor][1]] >= level:
            # Rank inversions (e.g. species under a no-rank clade under
            # class) — drop the link, keep the node as a root of its
            # rank only when top-level; otherwise skip it.
            ancestor = None
        if ancestor is None and level != 0:
            continue  # orphaned mid-rank node: not representable
        built[tax_id] = TaxonomyNode(
            node_id=tax_id,
            name=names.get(tax_id, f"taxid {tax_id}"),
            level=level,
            parent_id=ancestor)
    for node in built.values():
        if node.parent_id is not None and node.parent_id in built:
            built[node.parent_id].children_ids.append(node.node_id)

    _relevel(built)
    taxonomy = Taxonomy(name, Domain.BIOLOGY, built,
                        concept_noun="organism group")
    validate_taxonomy(taxonomy)
    return taxonomy


def _relevel(nodes: dict[str, TaxonomyNode]) -> None:
    """Recompute levels as tree depth (ranks may skip levels)."""
    for node in nodes.values():
        depth = 0
        current = node
        while current.parent_id is not None:
            current = nodes[current.parent_id]
            depth += 1
        node.level = depth


def load_ncbi_taxonomy(nodes_path: str | Path,
                       names_path: str | Path) -> Taxonomy:
    """Load nodes.dmp + names.dmp files."""
    nodes = parse_nodes(
        Path(nodes_path).read_text(encoding="utf-8").splitlines())
    names = parse_names(
        Path(names_path).read_text(encoding="utf-8").splitlines())
    return build_ncbi_taxonomy(nodes, names)
