"""Loader for the Glottolog languoid table.

Glottolog releases ship ``languoid.csv`` with (among others) the
columns ``id``, ``parent_id``, ``name``.  Rows with an empty
``parent_id`` are top-level language families; the paper keeps six
levels, so deeper chains are truncated by re-attaching descendants at
the cut (``max_levels``).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import TaxonomyError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import validate_taxonomy

REQUIRED_COLUMNS = ("id", "parent_id", "name")
PAPER_MAX_LEVELS = 6


def parse_languoid_csv(text: str, name: str = "Glottolog",
                       max_levels: int = PAPER_MAX_LEVELS) -> Taxonomy:
    """Build a taxonomy from languoid.csv content."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or any(
            column not in reader.fieldnames
            for column in REQUIRED_COLUMNS):
        raise TaxonomyError(
            f"languoid csv must have columns {REQUIRED_COLUMNS}")
    rows = {}
    for row in reader:
        languoid_id = row["id"].strip()
        if not languoid_id:
            continue
        rows[languoid_id] = (row["parent_id"].strip() or None,
                             row["name"].strip())
    if not rows:
        raise TaxonomyError("no languoids found")

    def depth_of(languoid_id: str) -> int:
        depth = 0
        current = rows[languoid_id][0]
        while current is not None:
            if current not in rows or depth > len(rows):
                raise TaxonomyError(
                    f"broken parent chain at {languoid_id}")
            depth += 1
            current = rows[current][0]
        return depth

    nodes: dict[str, TaxonomyNode] = {}
    for languoid_id, (parent_id, label) in rows.items():
        depth = depth_of(languoid_id)
        if depth >= max_levels:
            continue  # truncate below the paper's six levels
        nodes[languoid_id] = TaxonomyNode(
            node_id=languoid_id, name=label, level=depth,
            parent_id=parent_id)
    for node in nodes.values():
        if node.parent_id is not None:
            if node.parent_id not in nodes:
                raise TaxonomyError(
                    f"{node.node_id}: parent {node.parent_id} missing")
            nodes[node.parent_id].children_ids.append(node.node_id)

    taxonomy = Taxonomy(name, Domain.LANGUAGE, nodes,
                        concept_noun="language")
    validate_taxonomy(taxonomy)
    return taxonomy


def load_glottolog_taxonomy(path: str | Path,
                            max_levels: int = PAPER_MAX_LEVELS
                            ) -> Taxonomy:
    """Load a Glottolog languoid.csv file."""
    return parse_languoid_csv(
        Path(path).read_text(encoding="utf-8"), max_levels=max_levels)
