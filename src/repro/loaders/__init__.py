"""Loaders for the real taxonomy dumps the paper used.

Each loader produces the same :class:`repro.taxonomy.Taxonomy` the
synthetic generators do, so real data swaps in behind every downstream
component (question generation, oracle, experiments) unchanged.
"""

from repro.loaders.glottolog import (load_glottolog_taxonomy,
                                     parse_languoid_csv)
from repro.loaders.google import load_google_taxonomy, parse_path_lines
from repro.loaders.ncbi import (RANK_LEVELS, build_ncbi_taxonomy,
                                load_ncbi_taxonomy, parse_names,
                                parse_nodes)
from repro.loaders.schema_org import load_schema_taxonomy, parse_types_csv

__all__ = [
    "parse_path_lines",
    "load_google_taxonomy",
    "parse_nodes",
    "parse_names",
    "build_ncbi_taxonomy",
    "load_ncbi_taxonomy",
    "RANK_LEVELS",
    "parse_languoid_csv",
    "load_glottolog_taxonomy",
    "parse_types_csv",
    "load_schema_taxonomy",
]
