"""Experiment T4 — question dataset statistics (paper Table 4).

Regenerates every taxonomy's question pools and reports easy/hard/MCQ
counts per level, the same layout as Table 4.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.questions.pools import build_pools


def table4_rows(config: ExperimentConfig | None = None
                ) -> list[dict[str, object]]:
    """Flattened Table 4: one row per (taxonomy, level)."""
    if config is None:
        config = ExperimentConfig()
    rows = []
    for key in config.taxonomy_keys:
        pools = build_pools(key, sample_size=config.sample_size)
        for stat in pools.statistics():
            rows.append({"taxonomy": key, **stat})
    return rows
