"""Experiment T4 — question dataset statistics (paper Table 4).

Builds every taxonomy's question pools through the artifact store
(warm runs load from disk in milliseconds; cold runs fan generation
out across processes) and reports easy/hard/MCQ counts per level, the
same layout as Table 4.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.store.parallel import build_all_datasets


def table4_rows(config: ExperimentConfig | None = None,
                jobs: int | None = None) -> list[dict[str, object]]:
    """Flattened Table 4: one row per (taxonomy, level).

    ``jobs`` bounds the worker processes used for cold builds; warm
    store loads ignore it.
    """
    if config is None:
        config = ExperimentConfig()
    built = build_all_datasets(list(config.taxonomy_keys),
                               sample_size=config.sample_size,
                               jobs=jobs)
    rows = []
    for key, pools in built.items():
        for stat in pools.statistics():
            rows.append({"taxonomy": key, **stat})
    return rows
