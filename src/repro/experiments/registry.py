"""Index of experiments: paper artifact -> runner callable.

Mirrors DESIGN.md's per-experiment index so tooling (benchmarks,
EXPERIMENTS.md generation) can enumerate everything that reproduces a
table or figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import table4_rows
from repro.experiments.instances import run_instance_typing
from repro.experiments.levels import run_levels
from repro.experiments.overall import run_overall
from repro.experiments.popularity import figure2_rows
from repro.experiments.prompting import run_prompting
from repro.experiments.scalability import figure7_rows
from repro.experiments.statistics import table1_rows
from repro.hybrid.case_study import run_case_study
from repro.questions.model import DatasetKind


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One reproducible paper artifact."""

    exp_id: str
    paper_artifact: str
    runner: Callable
    description: str


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "T1": ExperimentSpec(
        "T1", "Table 1", lambda config=None: table1_rows(),
        "Taxonomy statistics: entities, levels, trees, widths"),
    "F2": ExperimentSpec(
        "F2", "Figure 2", lambda config=None: figure2_rows(),
        "Taxonomy popularity by simulated web hit counts"),
    "T4": ExperimentSpec(
        "T4", "Table 4", table4_rows,
        "Question dataset statistics per level"),
    "T5": ExperimentSpec(
        "T5", "Table 5",
        lambda config=None: run_overall(DatasetKind.HARD, config),
        "Overall results on hard datasets"),
    "T6": ExperimentSpec(
        "T6", "Table 6",
        lambda config=None: run_overall(DatasetKind.EASY, config),
        "Overall results on easy datasets"),
    "T7": ExperimentSpec(
        "T7", "Table 7",
        lambda config=None: run_overall(DatasetKind.MCQ, config),
        "Overall results on MCQ datasets"),
    "F3": ExperimentSpec(
        "F3", "Figure 3", run_levels,
        "Per-level accuracy on hard datasets"),
    "F4": ExperimentSpec(
        "F4", "Figure 4",
        lambda config=None: run_prompting(config),
        "Prompting settings radar (zero/few-shot/CoT)"),
    "F6": ExperimentSpec(
        "F6", "Figure 6", run_instance_typing,
        "Instance typing per level"),
    "F7": ExperimentSpec(
        "F7", "Figure 7", lambda config=None: figure7_rows(),
        "Scalability of open-source series"),
    "CS": ExperimentSpec(
        "CS", "Section 5.3", lambda config=None: run_case_study(),
        "Amazon hybrid-replacement case study"),
}


def run_experiment(exp_id: str,
                   config: ExperimentConfig | None = None):
    """Run an experiment by id ("T5", "F3", ...)."""
    return EXPERIMENTS[exp_id].runner(config)
