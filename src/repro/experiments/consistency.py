"""Logical-consistency probes over the Is-A relation.

The paper's closing discussion asks whether LLM-resident taxonomies can
support *knowledge reasoning*.  Reliable reasoning needs more than
per-edge accuracy; it needs the relation's algebra to hold:

* **asymmetry** — if "child Is-A parent" is Yes, the reverse question
  must be No (a model saying Yes both ways has no usable hierarchy);
* **transitivity** — if child Is-A parent and parent Is-A grandparent,
  then child Is-A grandparent must also hold.

These probes sample edges/chains from a taxonomy, put all the
questions through the normal prompt/parse loop, and report violation
rates — an extension experiment beyond the paper's tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.generators.registry import build_taxonomy
from repro.llm.base import ChatModel
from repro.llm.parsing import parse_true_false
from repro.questions.model import Answer
from repro.questions.templates import true_false_prompt
from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class ConsistencyReport:
    """Violation rates for one (model, taxonomy) probe run."""

    model: str
    taxonomy_key: str
    edges_probed: int
    #: Pairs where the forward edge was confirmed Yes.
    forward_yes: int
    #: ...and the reversed question was also answered Yes (violation).
    symmetry_violations: int
    chains_probed: int
    #: Chains with both single hops confirmed Yes.
    chain_premises_yes: int
    #: ...where the long hop was *not* Yes (violation).
    transitivity_violations: int

    @property
    def symmetry_violation_rate(self) -> float:
        if self.forward_yes == 0:
            return 0.0
        return self.symmetry_violations / self.forward_yes

    @property
    def transitivity_violation_rate(self) -> float:
        if self.chain_premises_yes == 0:
            return 0.0
        return self.transitivity_violations / self.chain_premises_yes

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model,
            "taxonomy": self.taxonomy_key,
            "edges": self.edges_probed,
            "symmetry violations":
                f"{self.symmetry_violation_rate:.3f}",
            "chains": self.chains_probed,
            "transitivity violations":
                f"{self.transitivity_violation_rate:.3f}",
        }


def _answer(model: ChatModel, taxonomy: Taxonomy, child: str,
            parent: str) -> Answer:
    prompt = true_false_prompt(taxonomy.domain, child, parent)
    return parse_true_false(model.generate(prompt))


def probe_consistency(model: ChatModel, taxonomy_key: str,
                      taxonomy: Taxonomy | None = None,
                      edges: int = 100, chains: int = 100,
                      seed: str = "consistency") -> ConsistencyReport:
    """Run asymmetry and transitivity probes on sampled structure."""
    if taxonomy is None:
        taxonomy = build_taxonomy(taxonomy_key)
    rng = random.Random(f"{seed}|{taxonomy_key}")

    non_roots = [node for node in taxonomy if not node.is_root]
    edge_sample = rng.sample(non_roots, min(edges, len(non_roots)))
    forward_yes = 0
    symmetry_violations = 0
    for child in edge_sample:
        parent = taxonomy.parent(child.node_id)
        if _answer(model, taxonomy, child.name, parent.name) \
                is not Answer.YES:
            continue
        forward_yes += 1
        if _answer(model, taxonomy, parent.name, child.name) \
                is Answer.YES:
            symmetry_violations += 1

    deep = [node for node in non_roots if node.level >= 2]
    chain_sample = rng.sample(deep, min(chains, len(deep)))
    premises_yes = 0
    transitivity_violations = 0
    for child in chain_sample:
        parent = taxonomy.parent(child.node_id)
        grandparent = taxonomy.parent(parent.node_id)
        hop1 = _answer(model, taxonomy, child.name, parent.name)
        hop2 = _answer(model, taxonomy, parent.name, grandparent.name)
        if hop1 is not Answer.YES or hop2 is not Answer.YES:
            continue
        premises_yes += 1
        long_hop = _answer(model, taxonomy, child.name,
                           grandparent.name)
        if long_hop is not Answer.YES:
            transitivity_violations += 1

    return ConsistencyReport(
        model=model.name,
        taxonomy_key=taxonomy_key,
        edges_probed=len(edge_sample),
        forward_yes=forward_yes,
        symmetry_violations=symmetry_violations,
        chains_probed=len(chain_sample),
        chain_premises_yes=premises_yes,
        transitivity_violations=transitivity_violations,
    )
