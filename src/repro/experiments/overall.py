"""Experiments T5/T6/T7 — overall results on hard/easy/MCQ datasets.

Runs the full (models x taxonomies) matrix under zero-shot prompting
and reports measured accuracy/miss next to the paper's numbers, plus
the absolute deviations — the core reproduction artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.benchmark import TaxoGlimpse
from repro.core.metrics import Metrics
from repro.data.paper_tables import paper_anchor
from repro.experiments.config import ExperimentConfig
from repro.questions.model import DatasetKind


@dataclass(frozen=True, slots=True)
class CellComparison:
    """One (model, taxonomy) cell: measured vs paper."""

    model: str
    taxonomy_key: str
    measured: Metrics
    paper_accuracy: float
    paper_miss: float

    @property
    def accuracy_delta(self) -> float:
        return self.measured.accuracy - self.paper_accuracy

    @property
    def miss_delta(self) -> float:
        return self.measured.miss_rate - self.paper_miss


@dataclass(frozen=True, slots=True)
class OverallResult:
    """The full matrix for one dataset kind, with paper comparison."""

    dataset: DatasetKind
    cells: tuple[CellComparison, ...]

    def matrix(self) -> dict[tuple[str, str], Metrics]:
        return {(cell.model, cell.taxonomy_key): cell.measured
                for cell in self.cells}

    @property
    def mean_abs_accuracy_delta(self) -> float:
        return sum(abs(cell.accuracy_delta) for cell in self.cells) \
            / len(self.cells)

    @property
    def mean_abs_miss_delta(self) -> float:
        return sum(abs(cell.miss_delta) for cell in self.cells) \
            / len(self.cells)

    def worst_cells(self, count: int = 5) -> list[CellComparison]:
        return sorted(self.cells,
                      key=lambda cell: abs(cell.accuracy_delta),
                      reverse=True)[:count]


def run_overall(dataset: DatasetKind,
                config: ExperimentConfig | None = None,
                bench: TaxoGlimpse | None = None) -> OverallResult:
    """Regenerate Table 5 (hard), 6 (easy) or 7 (MCQ)."""
    if config is None:
        config = ExperimentConfig()
    if bench is None:
        bench = TaxoGlimpse(sample_size=config.sample_size,
                            variant=config.variant)
    matrix = bench.run_table(dataset, models=list(config.models),
                             taxonomy_keys=list(config.taxonomy_keys))
    cells = []
    for (model, key), metrics in matrix.items():
        accuracy, miss = paper_anchor(dataset.value, model, key)
        cells.append(CellComparison(model, key, metrics, accuracy,
                                    miss))
    return OverallResult(dataset, tuple(cells))
