"""Experiments T5/T6/T7 — overall results on hard/easy/MCQ datasets.

Runs the full (models x taxonomies) matrix under zero-shot prompting
and reports measured accuracy/miss next to the paper's numbers, plus
the absolute deviations — the core reproduction artifact.

Pass ``registry=`` to route the sweep through the durable run ledger
(:mod:`repro.runs`): every cell and scored question then lands on disk
as it completes, and :func:`overall_from_run` regenerates the exact
same table later from the ledger alone — zero model calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.benchmark import TaxoGlimpse
from repro.core.metrics import Metrics
from repro.data.paper_tables import paper_anchor
from repro.experiments.config import ExperimentConfig
from repro.questions.model import DatasetKind

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.scheduler import EvaluationEngine
    from repro.runs.driver import RunResult
    from repro.runs.registry import RunRegistry


@dataclass(frozen=True, slots=True)
class CellComparison:
    """One (model, taxonomy) cell: measured vs paper."""

    model: str
    taxonomy_key: str
    measured: Metrics
    paper_accuracy: float
    paper_miss: float

    @property
    def accuracy_delta(self) -> float:
        return self.measured.accuracy - self.paper_accuracy

    @property
    def miss_delta(self) -> float:
        return self.measured.miss_rate - self.paper_miss


@dataclass(frozen=True, slots=True)
class OverallResult:
    """The full matrix for one dataset kind, with paper comparison."""

    dataset: DatasetKind
    cells: tuple[CellComparison, ...]

    def matrix(self) -> dict[tuple[str, str], Metrics]:
        return {(cell.model, cell.taxonomy_key): cell.measured
                for cell in self.cells}

    @property
    def mean_abs_accuracy_delta(self) -> float:
        return sum(abs(cell.accuracy_delta) for cell in self.cells) \
            / len(self.cells)

    @property
    def mean_abs_miss_delta(self) -> float:
        return sum(abs(cell.miss_delta) for cell in self.cells) \
            / len(self.cells)

    def worst_cells(self, count: int = 5) -> list[CellComparison]:
        return sorted(self.cells,
                      key=lambda cell: abs(cell.accuracy_delta),
                      reverse=True)[:count]


def run_overall(dataset: DatasetKind,
                config: ExperimentConfig | None = None,
                bench: TaxoGlimpse | None = None,
                registry: "RunRegistry | None" = None,
                engine: "EvaluationEngine | None" = None
                ) -> OverallResult:
    """Regenerate Table 5 (hard), 6 (easy) or 7 (MCQ).

    With ``registry`` the sweep executes through the run ledger
    (durable, resumable, reloadable via :func:`overall_from_run`);
    without it the classic in-memory path runs.  Both produce
    bit-identical tables.
    """
    if config is None:
        config = ExperimentConfig()
    if registry is not None:
        from repro.runs.driver import execute_run
        run = execute_run(overall_request(dataset, config),
                          registry=registry, engine=engine)
        return overall_from_run(run)
    if bench is None:
        bench = TaxoGlimpse(sample_size=config.sample_size,
                            variant=config.variant)
    matrix = bench.run_table(dataset, models=list(config.models),
                             taxonomy_keys=list(config.taxonomy_keys))
    return _compare(dataset, matrix)


def overall_request(dataset: DatasetKind,
                    config: ExperimentConfig):
    """The :class:`repro.runs.RunRequest` this experiment sweeps."""
    from repro.runs.request import RunRequest
    return RunRequest(dataset=dataset.value,
                      models=tuple(config.models),
                      taxonomy_keys=tuple(config.taxonomy_keys),
                      sample_size=config.sample_size,
                      variant=config.variant)


def overall_from_run(run: "RunResult | str",
                     registry: "RunRegistry | None" = None
                     ) -> OverallResult:
    """Rebuild the overall table from a run (or run id) — no models.

    Accepts the :class:`RunResult` an execution returned or a bare
    run id, which is loaded back from its ledger; either way no model
    is queried, so a finished sweep's table is free forever.
    """
    from repro.runs.driver import coerce_run
    result = coerce_run(run, registry=registry)
    return _compare(DatasetKind(result.request.dataset),
                    result.matrix())


def _compare(dataset: DatasetKind,
             matrix: dict[tuple[str, str], Metrics]) -> OverallResult:
    cells = []
    for (model, key), metrics in matrix.items():
        accuracy, miss = paper_anchor(dataset.value, model, key)
        cells.append(CellComparison(model, key, metrics, accuracy,
                                    miss))
    return OverallResult(dataset, tuple(cells))
