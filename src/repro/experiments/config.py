"""Shared experiment configuration.

Every experiment accepts an :class:`ExperimentConfig`; the default
reproduces the paper-scale runs (Cochran sample sizes, all eighteen
models, all ten taxonomies), while ``ExperimentConfig.fast()`` gives a
seconds-scale smoke configuration used by tests and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.paper_tables import MODEL_ORDER, TAXONOMY_ORDER


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    sample_size: int | None = None       # None = paper Cochran sizes
    models: tuple[str, ...] = MODEL_ORDER
    taxonomy_keys: tuple[str, ...] = TAXONOMY_ORDER
    variant: int = 0
    extra: dict = field(default_factory=dict)

    @classmethod
    def fast(cls, models: tuple[str, ...] | None = None,
             taxonomy_keys: tuple[str, ...] | None = None
             ) -> "ExperimentConfig":
        """A smoke-test configuration (small samples, few models)."""
        return cls(
            sample_size=24,
            models=models or ("GPT-4", "Llama-2-7B", "Flan-T5-3B",
                              "LLMs4OL"),
            taxonomy_keys=taxonomy_keys or ("ebay", "schema",
                                            "glottolog", "ncbi"),
        )
