"""Experiment package: one runner per paper table/figure."""

from repro.experiments.analysis import (LLMS4OL_BASE, VICUNA_VS_LLAMA,
                                        DomainGap, ScalingStep,
                                        TuningEffect, domain_gaps,
                                        size_scaling_steps,
                                        tuning_effect)
from repro.experiments.config import ExperimentConfig
from repro.experiments.consistency import (ConsistencyReport,
                                           probe_consistency)
from repro.experiments.errors_analysis import (ErrorBreakdown,
                                               abstention_calibration,
                                               error_breakdown)
from repro.experiments.variants import VariantResult, run_variants
from repro.experiments.datasets import table4_rows
from repro.experiments.instances import TypingSeries, run_instance_typing
from repro.experiments.levels import (FIGURE3_KEYS, LevelSeries,
                                      levels_from_run, levels_request,
                                      run_levels)
from repro.experiments.overall import (CellComparison, OverallResult,
                                       overall_from_run,
                                       overall_request, run_overall)
from repro.experiments.popularity import (common_beat_specialized,
                                          figure2_rows)
from repro.experiments.prompting import (REPRESENTATIVE_MODELS,
                                         PromptingResult, RadarPoint,
                                         run_prompting)
from repro.experiments.registry import (EXPERIMENTS, ExperimentSpec,
                                        run_experiment)
from repro.experiments.scalability import (efficiency_summary,
                                           figure7_rows,
                                           well_scaling_series)
from repro.experiments.statistics import table1_rows

__all__ = [
    "ExperimentConfig",
    "ConsistencyReport",
    "probe_consistency",
    "ErrorBreakdown",
    "error_breakdown",
    "abstention_calibration",
    "VariantResult",
    "run_variants",
    "ExperimentSpec",
    "EXPERIMENTS",
    "run_experiment",
    "table1_rows",
    "table4_rows",
    "figure2_rows",
    "common_beat_specialized",
    "run_overall",
    "overall_from_run",
    "overall_request",
    "OverallResult",
    "CellComparison",
    "run_levels",
    "levels_from_run",
    "levels_request",
    "LevelSeries",
    "FIGURE3_KEYS",
    "run_prompting",
    "PromptingResult",
    "RadarPoint",
    "REPRESENTATIVE_MODELS",
    "run_instance_typing",
    "TypingSeries",
    "figure7_rows",
    "efficiency_summary",
    "well_scaling_series",
    "domain_gaps",
    "DomainGap",
    "size_scaling_steps",
    "ScalingStep",
    "tuning_effect",
    "TuningEffect",
    "VICUNA_VS_LLAMA",
    "LLMS4OL_BASE",
]
