"""Experiment F6 — instance typing per level (paper Section 4.5).

For the six taxonomies with well-defined instances, evaluates models on
instance->ancestor typing pairs grouped by the target ancestor's level
(hard negatives), reproducing Figure 6's per-level curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import EvaluationRunner
from repro.experiments.config import ExperimentConfig
from repro.llm.registry import get_model
from repro.questions.instance_typing import (INSTANCE_TYPING_KEYS,
                                             build_instance_typing_pools)
from repro.questions.model import DatasetKind


@dataclass(frozen=True, slots=True)
class TypingSeries:
    """One model's accuracy per target level on one taxonomy."""

    model: str
    taxonomy_key: str
    target_levels: tuple[int, ...]
    accuracies: tuple[float, ...]
    miss_rates: tuple[float, ...]

    @property
    def declines_overall(self) -> bool:
        return self.accuracies[0] > self.accuracies[-1]


def run_instance_typing(config: ExperimentConfig | None = None,
                        dataset: DatasetKind = DatasetKind.HARD
                        ) -> list[TypingSeries]:
    """Evaluate instance typing for every configured (model, taxonomy)."""
    if config is None:
        config = ExperimentConfig()
    keys = [key for key in config.taxonomy_keys
            if key in INSTANCE_TYPING_KEYS]
    runner = EvaluationRunner(variant=config.variant)
    series: list[TypingSeries] = []
    for key in keys:
        pools = build_instance_typing_pools(
            key, sample_size=config.sample_size)
        for model_name in config.models:
            model = get_model(model_name)
            accuracies = []
            misses = []
            levels = []
            for level in pools.target_levels:
                questions = pools.questions(level, dataset)
                if not questions:
                    continue
                result = runner.evaluate_questions(
                    model, questions,
                    label=f"{key}/instance-typing/level{level}")
                levels.append(level)
                accuracies.append(result.metrics.accuracy)
                misses.append(result.metrics.miss_rate)
            series.append(TypingSeries(model_name, key, tuple(levels),
                                       tuple(accuracies),
                                       tuple(misses)))
    return series
