"""Experiment F3 — accuracy per taxonomy level on hard datasets.

Reproduces Figure 3: for every taxonomy (GeoNames excluded, it has a
single question level) the accuracy of each model per child level under
zero-shot prompting, exposing the root-to-leaf decline, the NCBI
species->genus uplift and the OAE leafward rise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.benchmark import TaxoGlimpse
from repro.experiments.config import ExperimentConfig
from repro.questions.model import DatasetKind, level_label

#: Figure 3 omits GeoNames (one question level only).
FIGURE3_KEYS: tuple[str, ...] = (
    "ebay", "amazon", "google", "schema", "acm_ccs", "glottolog",
    "icd10cm", "oae", "ncbi")


@dataclass(frozen=True, slots=True)
class LevelSeries:
    """One model's root-to-leaf accuracy curve on one taxonomy."""

    model: str
    taxonomy_key: str
    levels: tuple[int, ...]
    accuracies: tuple[float, ...]
    miss_rates: tuple[float, ...]

    @property
    def declines_overall(self) -> bool:
        """True when the first level beats the last (root > leaf)."""
        return self.accuracies[0] > self.accuracies[-1]

    @property
    def last_level_uplift(self) -> float:
        """Leaf accuracy minus the preceding level (NCBI signature)."""
        if len(self.accuracies) < 2:
            return 0.0
        return self.accuracies[-1] - self.accuracies[-2]

    def rows(self) -> list[dict[str, object]]:
        return [{
            "model": self.model,
            "taxonomy": self.taxonomy_key,
            "level": level_label(level),
            "accuracy": round(accuracy, 3),
            "miss_rate": round(miss, 3),
        } for level, accuracy, miss in zip(
            self.levels, self.accuracies, self.miss_rates)]


def run_levels(config: ExperimentConfig | None = None,
               dataset: DatasetKind = DatasetKind.HARD,
               bench: TaxoGlimpse | None = None) -> list[LevelSeries]:
    """Per-level curves for every (model, taxonomy) pair."""
    if config is None:
        config = ExperimentConfig()
    if bench is None:
        bench = TaxoGlimpse(sample_size=config.sample_size,
                            variant=config.variant)
    keys = [key for key in config.taxonomy_keys if key in FIGURE3_KEYS]
    series: list[LevelSeries] = []
    for key in keys:
        levels = bench.pools(key).question_levels
        for model in config.models:
            accuracies = []
            misses = []
            for level in levels:
                result = bench.run(model, key, dataset, level=level)
                accuracies.append(result.metrics.accuracy)
                misses.append(result.metrics.miss_rate)
            series.append(LevelSeries(model, key, tuple(levels),
                                      tuple(accuracies), tuple(misses)))
    return series
