"""Experiment F3 — accuracy per taxonomy level on hard datasets.

Reproduces Figure 3: for every taxonomy (GeoNames excluded, it has a
single question level) the accuracy of each model per child level under
zero-shot prompting, exposing the root-to-leaf decline, the NCBI
species->genus uplift and the OAE leafward rise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.benchmark import TaxoGlimpse
from repro.experiments.config import ExperimentConfig
from repro.questions.model import DatasetKind, level_label

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.scheduler import EvaluationEngine
    from repro.runs.driver import RunResult
    from repro.runs.registry import RunRegistry

#: Figure 3 omits GeoNames (one question level only).
FIGURE3_KEYS: tuple[str, ...] = (
    "ebay", "amazon", "google", "schema", "acm_ccs", "glottolog",
    "icd10cm", "oae", "ncbi")


@dataclass(frozen=True, slots=True)
class LevelSeries:
    """One model's root-to-leaf accuracy curve on one taxonomy."""

    model: str
    taxonomy_key: str
    levels: tuple[int, ...]
    accuracies: tuple[float, ...]
    miss_rates: tuple[float, ...]

    @property
    def declines_overall(self) -> bool:
        """True when the first level beats the last (root > leaf)."""
        return self.accuracies[0] > self.accuracies[-1]

    @property
    def last_level_uplift(self) -> float:
        """Leaf accuracy minus the preceding level (NCBI signature)."""
        if len(self.accuracies) < 2:
            return 0.0
        return self.accuracies[-1] - self.accuracies[-2]

    def rows(self) -> list[dict[str, object]]:
        return [{
            "model": self.model,
            "taxonomy": self.taxonomy_key,
            "level": level_label(level),
            "accuracy": round(accuracy, 3),
            "miss_rate": round(miss, 3),
        } for level, accuracy, miss in zip(
            self.levels, self.accuracies, self.miss_rates)]


def run_levels(config: ExperimentConfig | None = None,
               dataset: DatasetKind = DatasetKind.HARD,
               bench: TaxoGlimpse | None = None,
               registry: "RunRegistry | None" = None,
               engine: "EvaluationEngine | None" = None
               ) -> list[LevelSeries]:
    """Per-level curves for every (model, taxonomy) pair.

    With ``registry`` the per-level sweep executes through the run
    ledger and :func:`levels_from_run` can rebuild the exact same
    curves later from disk alone; both paths are bit-identical.
    """
    if config is None:
        config = ExperimentConfig()
    if registry is not None:
        from repro.runs.driver import execute_run
        run = execute_run(levels_request(config, dataset),
                          registry=registry, engine=engine)
        return levels_from_run(run)
    if bench is None:
        bench = TaxoGlimpse(sample_size=config.sample_size,
                            variant=config.variant)
    keys = [key for key in config.taxonomy_keys if key in FIGURE3_KEYS]
    series: list[LevelSeries] = []
    for key in keys:
        levels = bench.pools(key).question_levels
        for model in config.models:
            accuracies = []
            misses = []
            for level in levels:
                result = bench.run(model, key, dataset, level=level)
                accuracies.append(result.metrics.accuracy)
                misses.append(result.metrics.miss_rate)
            series.append(LevelSeries(model, key, tuple(levels),
                                      tuple(accuracies), tuple(misses)))
    return series


def levels_request(config: ExperimentConfig,
                   dataset: DatasetKind = DatasetKind.HARD):
    """The per-level :class:`repro.runs.RunRequest` for Figure 3."""
    from repro.runs.request import RunRequest
    keys = tuple(key for key in config.taxonomy_keys
                 if key in FIGURE3_KEYS)
    return RunRequest(dataset=dataset.value,
                      models=tuple(config.models),
                      taxonomy_keys=keys,
                      sample_size=config.sample_size,
                      variant=config.variant,
                      per_level=True)


def levels_from_run(run: "RunResult | str",
                    registry: "RunRegistry | None" = None
                    ) -> list[LevelSeries]:
    """Rebuild the Figure 3 curves from a run (or run id) — no models."""
    from repro.runs.driver import coerce_run
    result = coerce_run(run, registry=registry)
    per_pair: dict[tuple[str, str], dict[int, object]] = {}
    for (model, key, level), metrics in result.level_metrics().items():
        per_pair.setdefault((key, model), {})[level] = metrics
    series: list[LevelSeries] = []
    for key in result.request.taxonomy_keys:
        for model in result.request.models:
            by_level = per_pair.get((key, model), {})
            levels = sorted(by_level)
            series.append(LevelSeries(
                model, key, tuple(levels),
                tuple(by_level[level].accuracy for level in levels),
                tuple(by_level[level].miss_rate for level in levels)))
    return series
