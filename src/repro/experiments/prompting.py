"""Experiment F4 — prompting settings (zero-shot / few-shot / CoT).

Reproduces Figure 4's radar charts: representative models evaluated on
every taxonomy's hard dataset under the three prompting settings.  The
paper's Finding 4 — few-shot mostly cuts miss rates, CoT raises them
for weak models, the strongest models barely move — falls out of the
returned data and is asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.benchmark import TaxoGlimpse
from repro.experiments.config import ExperimentConfig
from repro.llm.prompting import PromptSetting
from repro.questions.model import DatasetKind

#: The models Figure 4 charts.
REPRESENTATIVE_MODELS: tuple[str, ...] = (
    "GPT-4", "Flan-T5-11B", "Llama-2-7B")


@dataclass(frozen=True, slots=True)
class RadarPoint:
    """One spoke of a radar chart: model x taxonomy x setting."""

    model: str
    taxonomy_key: str
    setting: str
    accuracy: float
    miss_rate: float


@dataclass(frozen=True, slots=True)
class PromptingResult:
    """All radar points, with per-model-setting averages."""

    points: tuple[RadarPoint, ...]

    def series(self, model: str,
               setting: PromptSetting) -> list[RadarPoint]:
        return [point for point in self.points
                if point.model == model
                and point.setting == setting.value]

    def average(self, model: str, setting: PromptSetting,
                metric: str = "accuracy") -> float:
        spokes = self.series(model, setting)
        values = [getattr(point, metric) for point in spokes]
        return sum(values) / len(values)


def run_prompting(config: ExperimentConfig | None = None,
                  models: tuple[str, ...] = REPRESENTATIVE_MODELS,
                  dataset: DatasetKind = DatasetKind.HARD,
                  bench: TaxoGlimpse | None = None) -> PromptingResult:
    """Evaluate representative models under all three settings."""
    if config is None:
        config = ExperimentConfig()
    if bench is None:
        bench = TaxoGlimpse(sample_size=config.sample_size,
                            variant=config.variant)
    points: list[RadarPoint] = []
    for model in models:
        for key in config.taxonomy_keys:
            for setting in PromptSetting:
                result = bench.run(model, key, dataset, setting=setting)
                points.append(RadarPoint(
                    model, key, setting.value,
                    result.metrics.accuracy,
                    result.metrics.miss_rate))
    return PromptingResult(tuple(points))
