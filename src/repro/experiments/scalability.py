"""Experiment F7 — scalability of the open-source model series.

Reports, per series, each member's parameter count, modelled GPU RAM
and per-question latency, plus the series' scaling-efficiency exponent
(log time growth per log parameter growth).  The paper's qualitative
claim — Flan-T5s, Vicunas and Llama-3s scale well — corresponds to
small exponents.
"""

from __future__ import annotations

from repro.llm.costs import scaling_efficiency, series_cost_table


def figure7_rows() -> list[dict[str, object]]:
    """One row per open-source model, grouped by series."""
    rows = []
    for series, estimates in series_cost_table().items():
        for estimate in estimates:
            rows.append({
                "series": series,
                "model": estimate.model,
                "params_b": estimate.params_b,
                "gpu_ram_gb": round(estimate.gpu_ram_gb, 1),
                "sec_per_question": estimate.seconds_per_question,
            })
    return rows


def efficiency_summary() -> dict[str, float]:
    """Series -> scaling exponent (lower = better scalability)."""
    return {series: round(scaling_efficiency(series), 3)
            for series in series_cost_table()}


def well_scaling_series(threshold: float = 0.45) -> list[str]:
    """Series whose latency grows clearly sub-linearly with size."""
    return [series for series, exponent in efficiency_summary().items()
            if exponent < threshold]
