"""Experiment F7 — scalability of the open-source model series.

Reports, per series, each member's parameter count, modelled GPU RAM
and per-question latency, plus the series' scaling-efficiency exponent
(log time growth per log parameter growth).  The paper's qualitative
claim — Flan-T5s, Vicunas and Llama-3s scale well — corresponds to
small exponents.

``harness_throughput_rows`` adds this reproduction's own scalability
axis: the evaluation harness driven through the execution engine at
increasing worker counts, reported from :class:`EngineStats`
telemetry (questions/second, utilization, cache traffic) rather than
raw ``prompts_served`` counters.
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.engine.scheduler import EvaluationEngine
from repro.llm.costs import scaling_efficiency, series_cost_table
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools


def figure7_rows() -> list[dict[str, object]]:
    """One row per open-source model, grouped by series."""
    rows = []
    for series, estimates in series_cost_table().items():
        for estimate in estimates:
            rows.append({
                "series": series,
                "model": estimate.model,
                "params_b": estimate.params_b,
                "gpu_ram_gb": round(estimate.gpu_ram_gb, 1),
                "sec_per_question": estimate.seconds_per_question,
            })
    return rows


def efficiency_summary() -> dict[str, float]:
    """Series -> scaling exponent (lower = better scalability)."""
    return {series: round(scaling_efficiency(series), 3)
            for series in series_cost_table()}


def well_scaling_series(threshold: float = 0.45) -> list[str]:
    """Series whose latency grows clearly sub-linearly with size."""
    return [series for series, exponent in efficiency_summary().items()
            if exponent < threshold]


def harness_throughput_rows(model_name: str = "GPT-4",
                            taxonomy_key: str = "ebay",
                            worker_counts: tuple[int, ...] = (1, 2, 4, 8),
                            sample_size: int = 40
                            ) -> list[dict[str, object]]:
    """Engine telemetry per worker count on one (model, taxonomy) cell.

    Each row is a fresh engine's :class:`EngineStats` after one full
    pool evaluation, so it reflects exactly that configuration's
    calls, cache traffic and worker utilization.
    """
    from repro.core.runner import EvaluationRunner

    pool = build_pools(taxonomy_key,
                       sample_size=sample_size).total_pool(
        DatasetKind.HARD)
    rows = []
    for workers in worker_counts:
        engine = EvaluationEngine(EngineConfig(max_workers=workers))
        runner = EvaluationRunner(engine=engine)
        result = runner.evaluate(get_model(model_name), pool)
        stats = engine.stats()
        rows.append({"model": model_name, "taxonomy": taxonomy_key,
                     "n": result.metrics.n, **stats.as_row()})
    return rows
