"""Template paraphrase-variant experiment (paper Section 2.2).

The paper reports that slight paraphrases of the question templates
("a kind of", "a sort of"; "suitable", "proper") do not change the
conclusions and publishes the full variant runs in its repository.
This module re-runs a (model, taxonomy) cell under all variants and
summarizes the spread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import EvaluationRunner
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import default_pools
from repro.questions.templates import (ADJECTIVE_VARIANTS,
                                       RELATION_VARIANTS)


@dataclass(frozen=True, slots=True)
class VariantResult:
    """Accuracy/miss per template variant for one cell."""

    model: str
    taxonomy_key: str
    dataset: DatasetKind
    wordings: tuple[str, ...]
    accuracies: tuple[float, ...]
    miss_rates: tuple[float, ...]

    @property
    def accuracy_spread(self) -> float:
        return max(self.accuracies) - min(self.accuracies)

    @property
    def miss_spread(self) -> float:
        return max(self.miss_rates) - min(self.miss_rates)

    def rows(self) -> list[dict[str, object]]:
        return [{
            "model": self.model,
            "taxonomy": self.taxonomy_key,
            "dataset": self.dataset.value,
            "wording": wording,
            "accuracy": round(accuracy, 3),
            "miss_rate": round(miss, 3),
        } for wording, accuracy, miss in zip(
            self.wordings, self.accuracies, self.miss_rates)]


def run_variants(model_name: str, taxonomy_key: str,
                 dataset: DatasetKind = DatasetKind.HARD,
                 sample_size: int | None = None) -> VariantResult:
    """Evaluate one cell under every template paraphrase."""
    pool = default_pools(
        taxonomy_key, sample_size=sample_size).total_pool(dataset)
    model = get_model(model_name)
    wordings = (RELATION_VARIANTS if dataset is not DatasetKind.MCQ
                else ADJECTIVE_VARIANTS)
    accuracies = []
    misses = []
    for variant in range(len(wordings)):
        runner = EvaluationRunner(variant=variant)
        metrics = runner.evaluate(model, pool).metrics
        accuracies.append(metrics.accuracy)
        misses.append(metrics.miss_rate)
    return VariantResult(
        model=model_name,
        taxonomy_key=taxonomy_key,
        dataset=dataset,
        wordings=tuple(wordings),
        accuracies=tuple(accuracies),
        miss_rates=tuple(misses),
    )
