"""Experiment F2 — taxonomy popularity ranking (paper Figure 2)."""

from __future__ import annotations

from repro.generators.registry import COMMON_KEYS
from repro.popularity.estimator import (DEFAULT_SAMPLE,
                                        PopularityEstimate,
                                        popularity_ranking)


def figure2_rows(sample: int = DEFAULT_SAMPLE) -> list[dict[str, object]]:
    """Popularity bars, most popular first."""
    return [{
        "taxonomy": estimate.taxonomy_key,
        "mean_hits": round(estimate.mean_hits),
        "group": ("common" if estimate.taxonomy_key in COMMON_KEYS
                  else "specialized"),
        "sample": estimate.sample_size,
    } for estimate in popularity_ranking(sample=sample)]


def common_beat_specialized(
        estimates: list[PopularityEstimate] | None = None) -> bool:
    """Figure 2's headline: every common taxonomy out-ranks every
    specialized one."""
    ranking = estimates if estimates is not None else \
        popularity_ranking()
    common = [est.mean_hits for est in ranking
              if est.taxonomy_key in COMMON_KEYS]
    specialized = [est.mean_hits for est in ranking
                   if est.taxonomy_key not in COMMON_KEYS]
    return min(common) > max(specialized)
