"""Section 4.3 analyses — do standard LLM improvements help?

Three comparisons over an :class:`OverallResult` matrix:

* **model size scaling** within each series (Llama-2 and Flan-T5 gain
  with size; Vicunas and Falcons do not — Falcon-40B collapses),
* **domain-agnostic fine-tuning** (Vicuna vs its Llama-2 base), and
* **domain-specific fine-tuning** (LLMs4OL vs its Flan-T5-3B base,
  the paper's +12.9% on hard).

Also the Finding 1 summary: common-vs-specialized accuracy gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import fmean

from repro.core.metrics import Metrics
from repro.generators.registry import COMMON_KEYS, SPECIALIZED_KEYS

#: Base-model pairs used by the fine-tuning comparisons.
VICUNA_VS_LLAMA: tuple[tuple[str, str], ...] = (
    ("Vicuna-7B", "Llama-2-7B"), ("Vicuna-13B", "Llama-2-13B"))
LLMS4OL_BASE = ("LLMs4OL", "Flan-T5-3B")


def _model_mean(matrix: dict[tuple[str, str], Metrics], model: str,
                keys: tuple[str, ...] | None = None) -> float:
    values = [metrics.accuracy
              for (name, key), metrics in matrix.items()
              if name == model and (keys is None or key in keys)]
    if not values:
        raise ValueError(f"model {model!r} not in matrix")
    return fmean(values)


@dataclass(frozen=True, slots=True)
class DomainGap:
    """Finding 1: accuracy on common vs specialized taxonomies."""

    model: str
    common_accuracy: float
    specialized_accuracy: float

    @property
    def gap(self) -> float:
        return self.common_accuracy - self.specialized_accuracy


def domain_gaps(matrix: dict[tuple[str, str], Metrics]
                ) -> list[DomainGap]:
    """Per-model common-vs-specialized gaps (OAE and ICD-10-CM are the
    paper's noted exceptions and are included in the specialized mean,
    as in the paper)."""
    models = sorted({model for model, _ in matrix})
    gaps = []
    for model in models:
        common = _model_mean(matrix, model, COMMON_KEYS)
        specialized = _model_mean(matrix, model, SPECIALIZED_KEYS)
        gaps.append(DomainGap(model, common, specialized))
    return gaps


@dataclass(frozen=True, slots=True)
class ScalingStep:
    """Accuracy change from a smaller to a larger series member."""

    series: str
    smaller: str
    larger: str
    smaller_accuracy: float
    larger_accuracy: float

    @property
    def improves(self) -> bool:
        return self.larger_accuracy > self.smaller_accuracy


def size_scaling_steps(matrix: dict[tuple[str, str], Metrics],
                       series: dict[str, tuple[str, ...]]
                       ) -> list[ScalingStep]:
    """Adjacent-size comparisons within every open-source series."""
    steps = []
    for name, members in series.items():
        present = [member for member in members
                   if any(model == member for model, _ in matrix)]
        for smaller, larger in zip(present, present[1:]):
            steps.append(ScalingStep(
                name, smaller, larger,
                _model_mean(matrix, smaller),
                _model_mean(matrix, larger)))
    return steps


@dataclass(frozen=True, slots=True)
class TuningEffect:
    """Fine-tuned model vs its base, averaged over taxonomies."""

    tuned: str
    base: str
    tuned_accuracy: float
    base_accuracy: float

    @property
    def uplift(self) -> float:
        return self.tuned_accuracy - self.base_accuracy


def tuning_effect(matrix: dict[tuple[str, str], Metrics],
                  tuned: str, base: str) -> TuningEffect:
    """Average-accuracy effect of fine-tuning ``base`` into ``tuned``."""
    return TuningEffect(tuned, base,
                        _model_mean(matrix, tuned),
                        _model_mean(matrix, base))
