"""Error and abstention analysis over evaluation records.

Goes one level deeper than the paper's accuracy/miss summaries:

* :func:`error_breakdown` splits a run's mistakes into *false-yes*
  (accepting a wrong parent — the dangerous failure for taxonomy
  replacement), *false-no* (rejecting the true parent), wrong MCQ
  letters, and abstentions by question polarity;
* :func:`abstention_calibration` scores whether a model abstains
  *where it is weak* — the paper's "desirable cautiousness" note about
  the GPTs' rising miss rates on Glottolog/NCBI, made quantitative as
  the correlation between per-taxonomy miss rate and per-taxonomy
  answered-conditional error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.metrics import Metrics
from repro.core.results import QuestionRecord
from repro.questions.model import (Answer, Question, QuestionKind,
                                   QuestionType)


@dataclass(frozen=True, slots=True)
class ErrorBreakdown:
    """Mistake taxonomy for one (model, pool) run."""

    model: str
    total: int
    correct: int
    false_yes: int            # accepted a wrong parent
    false_no: int             # rejected the true parent
    wrong_option: int         # MCQ: picked a distractor
    abstained_positive: int
    abstained_negative: int

    @property
    def false_yes_rate(self) -> float:
        return self.false_yes / self.total if self.total else 0.0

    @property
    def false_no_rate(self) -> float:
        return self.false_no / self.total if self.total else 0.0

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model,
            "n": self.total,
            "correct": self.correct,
            "false-yes": self.false_yes,
            "false-no": self.false_no,
            "wrong-option": self.wrong_option,
            "abstained+": self.abstained_positive,
            "abstained-": self.abstained_negative,
        }


def error_breakdown(questions: tuple[Question, ...],
                    records: tuple[QuestionRecord, ...]
                    ) -> ErrorBreakdown:
    """Classify every record against its question.

    ``records`` must come from an ``EvaluationRunner`` run with
    ``keep_records=True`` over exactly ``questions`` (matched by uid).
    """
    by_uid = {question.uid: question for question in questions}
    missing = [record.question_uid for record in records
               if record.question_uid not in by_uid]
    if missing:
        raise ValueError(
            f"records reference unknown questions: {missing[:3]}")

    counts = dict(correct=0, false_yes=0, false_no=0, wrong_option=0,
                  abstained_positive=0, abstained_negative=0)
    for record in records:
        question = by_uid[record.question_uid]
        positive = question.kind in (QuestionKind.POSITIVE,
                                     QuestionKind.MCQ)
        if record.missed:
            key = ("abstained_positive" if positive
                   else "abstained_negative")
            counts[key] += 1
        elif record.correct:
            counts["correct"] += 1
        elif question.qtype is QuestionType.MCQ:
            counts["wrong_option"] += 1
        elif record.parsed is Answer.YES:
            counts["false_yes"] += 1
        else:
            counts["false_no"] += 1

    model = records[0].model if records else "?"
    return ErrorBreakdown(model=model, total=len(records), **counts)


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def abstention_calibration(cells: Mapping[str, Metrics]) -> float:
    """Correlation between miss rate and answered error per taxonomy.

    ``cells`` maps taxonomy keys to one model's metrics.  Positive
    values mean the model abstains more exactly where its answered
    accuracy is lower — the desirable cautiousness the paper credits
    to the GPTs; zero or negative means abstention is uninformative.
    """
    if len(cells) < 2:
        raise ValueError("needs metrics for at least two taxonomies")
    misses = [metrics.miss_rate for metrics in cells.values()]
    errors = [1.0 - metrics.answered_accuracy
              for metrics in cells.values()]
    return _pearson(misses, errors)
