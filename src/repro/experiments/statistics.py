"""Experiment T1 — taxonomy statistics (paper Table 1).

Reports, per taxonomy, the spec shape (the exact Table 1 numbers the
synthetic generators target) next to the materialized shape (what was
actually generated under the level cap), so the reproduction makes the
scale substitution explicit.
"""

from __future__ import annotations

from repro.generators.base import DEFAULT_LEVEL_CAP
from repro.generators.registry import ALL_SPECS, build_taxonomy
from repro.taxonomy.stats import compute_statistics


def table1_rows(level_cap: int = DEFAULT_LEVEL_CAP,
                scale: float = 1.0) -> list[dict[str, object]]:
    """One row per taxonomy: spec vs materialized shape."""
    rows = []
    for spec in ALL_SPECS:
        taxonomy = build_taxonomy(spec.key, scale=scale,
                                  level_cap=level_cap)
        stats = compute_statistics(taxonomy)
        rows.append({
            "domain": spec.domain.value,
            "taxonomy": spec.display_name,
            "entities (paper)": spec.num_entities,
            "entities (built)": stats.num_entities,
            "levels": stats.num_levels,
            "trees": stats.num_trees,
            "widths (paper)": "-".join(str(w)
                                       for w in spec.level_widths),
            "widths (built)": stats.widths_label,
        })
    return rows
