"""Question design: templates, generation, pools, instance typing."""

from repro.questions.generation import (LevelQuestions,
                                        generate_level_questions)
from repro.questions.instance_typing import (INSTANCE_TYPING_KEYS,
                                             Instance,
                                             InstanceTypingPools,
                                             build_instance_typing_pools,
                                             collect_instances)
from repro.questions.model import (MCQ_LETTERS, Answer, DatasetKind,
                                   Question, QuestionKind, QuestionType,
                                   letter_answer, level_label)
from repro.questions.pools import (QuestionPool, TaxonomyPools,
                                   build_pools, default_pools)
from repro.questions.templates import (ADJECTIVE_VARIANTS,
                                       RELATION_VARIANTS,
                                       TF_ANSWER_SUFFIX, mcq_prompt,
                                       render_question,
                                       true_false_prompt)

__all__ = [
    "Answer",
    "DatasetKind",
    "Question",
    "QuestionKind",
    "QuestionType",
    "MCQ_LETTERS",
    "letter_answer",
    "level_label",
    "LevelQuestions",
    "generate_level_questions",
    "QuestionPool",
    "TaxonomyPools",
    "build_pools",
    "default_pools",
    "Instance",
    "InstanceTypingPools",
    "INSTANCE_TYPING_KEYS",
    "build_instance_typing_pools",
    "collect_instances",
    "RELATION_VARIANTS",
    "ADJECTIVE_VARIANTS",
    "TF_ANSWER_SUFFIX",
    "true_false_prompt",
    "mcq_prompt",
    "render_question",
]
