"""Instance typing datasets (paper Section 4.5).

Instances are typed against the whole ancestor chain: given instance
``i`` under entity ``e_k`` at level ``k``, pairs ``(i -> e_k)``,
``(i -> e_k.p)``, ..., ``(i -> root)`` are generated, grouped by the
*target entity's* level.  Negatives mirror Section 2.2: hard negatives
are siblings of the target ancestor, easy negatives random nodes at the
target's level.

Instance sources per taxonomy (paper's definitions):

* Amazon / Google — synthetic product titles under last-level
  categories (the paper crawled Browsenodes / Google Shopping);
* ICD-10-CM — the deepest-level disease entities;
* NCBI — species; Glottolog — leaf languages; OAE — leaf adverse
  events.

eBay, GeoNames, Schema.org and ACM-CCS have no well-defined instances
and are skipped, as in the paper.

Note: for these questions :attr:`Question.level` stores the *target
ancestor's* level (0 = root), unlike hierarchy questions where it is
the child's level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import QuestionGenerationError
from repro.generators.products import products_for_node
from repro.generators.registry import build_taxonomy
from repro.questions.model import (DatasetKind, Question, QuestionKind,
                                   QuestionType)
from repro.stats.sampling import cochran_sample_size
from repro.taxonomy.node import TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy

#: Taxonomies with instance typing experiments (paper Figure 6).
INSTANCE_TYPING_KEYS: tuple[str, ...] = (
    "amazon", "google", "glottolog", "icd10cm", "oae", "ncbi")

#: Keys whose instances are synthetic products under leaf categories.
_PRODUCT_KEYS = ("amazon", "google")
_PRODUCTS_PER_CATEGORY = 3


@dataclass(frozen=True, slots=True)
class Instance:
    """An instance entity attached under a taxonomy node."""

    name: str
    anchor_id: str      # the taxonomy node the instance lives under
    anchor_level: int


class InstanceTypingPools:
    """Instance typing datasets grouped by target ancestor level."""

    def __init__(self, taxonomy_key: str,
                 by_level: dict[int, dict[DatasetKind,
                                          tuple[Question, ...]]]):
        self.taxonomy_key = taxonomy_key
        self._by_level = dict(sorted(by_level.items()))

    @property
    def target_levels(self) -> list[int]:
        return list(self._by_level)

    def questions(self, target_level: int,
                  dataset: DatasetKind) -> tuple[Question, ...]:
        return self._by_level[target_level][dataset]

    def total(self, dataset: DatasetKind) -> tuple[Question, ...]:
        out: list[Question] = []
        for level in self.target_levels:
            out.extend(self._by_level[level][dataset])
        return tuple(out)


def collect_instances(taxonomy_key: str, taxonomy: Taxonomy,
                      rng: random.Random) -> list[Instance]:
    """Materialize the instance population for a taxonomy."""
    deepest = taxonomy.num_levels - 1
    if taxonomy_key in _PRODUCT_KEYS:
        instances = []
        for node in taxonomy.nodes_at_level(deepest):
            for title in products_for_node(taxonomy, node.node_id,
                                           _PRODUCTS_PER_CATEGORY):
                instances.append(Instance(title, node.node_id,
                                          node.level))
        return instances
    # Leaf-entity taxonomies: the deepest level *is* the instance set,
    # typed against ancestors starting at the parent level.
    return [Instance(node.name, node.node_id, node.level)
            for node in taxonomy.nodes_at_level(deepest)]


def _uid(taxonomy_key: str, kind: QuestionKind, instance: Instance,
         target_level: int, asked: str) -> str:
    return (f"it|{taxonomy_key}|{kind.value}|{instance.name}"
            f"|{target_level}|{asked}")


def _pair(taxonomy: Taxonomy, taxonomy_key: str, kind: QuestionKind,
          instance: Instance, target: TaxonomyNode,
          truth: TaxonomyNode) -> Question:
    return Question(
        uid=_uid(taxonomy_key, kind, instance, truth.level,
                 target.node_id),
        taxonomy_key=taxonomy_key,
        domain=taxonomy.domain,
        qtype=QuestionType.TRUE_FALSE,
        kind=kind,
        level=truth.level,
        child_id=instance.anchor_id,
        child_name=instance.name,
        true_parent_id=truth.node_id,
        true_parent_name=truth.name,
        asked_parent_name=target.name,
    )


def build_instance_typing_pools(
        taxonomy_key: str, taxonomy: Taxonomy | None = None,
        sample_size: int | None = None,
        seed: str = "") -> InstanceTypingPools:
    """Generate the Figure 6 datasets for one taxonomy."""
    if taxonomy_key not in INSTANCE_TYPING_KEYS:
        raise QuestionGenerationError(
            f"{taxonomy_key} has no well-defined instances "
            f"(paper Section 4.5)")
    if taxonomy is None:
        taxonomy = build_taxonomy(taxonomy_key)
    rng = random.Random(f"instances|{seed}|{taxonomy_key}")
    instances = collect_instances(taxonomy_key, taxonomy, rng)
    if sample_size is None:
        sample_size = cochran_sample_size(len(instances))
    sample_size = min(sample_size, len(instances))
    sampled = rng.sample(instances, sample_size)

    by_level: dict[int, dict[DatasetKind, list[Question]]] = {}
    for instance in sampled:
        anchor = taxonomy.node(instance.anchor_id)
        # Targets: the anchor itself for product instances (products sit
        # *under* the category), else the ancestor chain only.
        targets = ([anchor] if taxonomy_key in _PRODUCT_KEYS else [])
        targets += taxonomy.ancestors(instance.anchor_id)
        for truth in targets:
            slot = by_level.setdefault(truth.level, {
                DatasetKind.EASY: [], DatasetKind.HARD: []})
            positive = _pair(taxonomy, taxonomy_key,
                             QuestionKind.POSITIVE, instance, truth,
                             truth)
            easy_pick = _random_other(taxonomy, truth, rng)
            if easy_pick is not None:
                slot[DatasetKind.EASY].append(positive)
                slot[DatasetKind.EASY].append(_pair(
                    taxonomy, taxonomy_key, QuestionKind.NEGATIVE_EASY,
                    instance, easy_pick, truth))
            siblings = taxonomy.siblings(truth.node_id)
            if siblings:
                slot[DatasetKind.HARD].append(positive)
                slot[DatasetKind.HARD].append(_pair(
                    taxonomy, taxonomy_key, QuestionKind.NEGATIVE_HARD,
                    instance, rng.choice(siblings), truth))

    return InstanceTypingPools(taxonomy_key, {
        level: {kind: tuple(questions)
                for kind, questions in kinds.items()}
        for level, kinds in by_level.items()
    })


def _random_other(taxonomy: Taxonomy, truth: TaxonomyNode,
                  rng: random.Random) -> TaxonomyNode | None:
    """A random same-level node other than ``truth`` (one bounded draw)."""
    pool = taxonomy.nodes_at_level(truth.level)
    if len(pool) < 2:
        return None
    truth_pos = taxonomy.position_in_level(truth.node_id)
    pick = rng.randrange(len(pool) - 1)
    if pick >= truth_pos:
        pick += 1
    return pool[pick]
