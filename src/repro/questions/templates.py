"""Question templates (paper Tables 2 and 3).

Each domain wraps concept names in its own phrasing; the paper also
evaluated slight paraphrases (relation "a type of" vs "a kind of" /
"a sort of"; MCQ adjective "appropriate" vs "suitable" / "proper") and
found no meaningful difference, so the default variant is 0 everywhere
while the harness still exposes all three.
"""

from __future__ import annotations

from repro.errors import PromptError
from repro.questions.model import (MCQ_LETTERS, Question, QuestionType)
from repro.taxonomy.node import Domain

#: Table 2/3 paraphrase variants.
RELATION_VARIANTS = ("a type of", "a kind of", "a sort of")
ADJECTIVE_VARIANTS = ("appropriate", "suitable", "proper")

#: How each domain mentions a concept in True/False questions:
#: (prefix, suffix) around the concept name.
_TF_WRAPPERS: dict[Domain, tuple[str, str]] = {
    Domain.SHOPPING: ("", " products"),
    Domain.GENERAL: ("", " entity type"),
    Domain.COMPUTER_SCIENCE: ("", " computer science research concept"),
    Domain.GEOGRAPHY: ("", " geographical concept"),
    Domain.LANGUAGE: ("", " language"),
    Domain.HEALTH: ("", ""),
    Domain.BIOLOGY: ("", ""),
    Domain.MEDICAL: ("", " Adverse Events concept"),
}

#: MCQ subject wrapper (Table 3 uses slightly different nouns).
_MCQ_WRAPPERS: dict[Domain, tuple[str, str]] = {
    Domain.SHOPPING: ("", " product"),
    Domain.GENERAL: ("", " entity type"),
    Domain.COMPUTER_SCIENCE: ("", " research concept"),
    Domain.GEOGRAPHY: ("", " geographical concept"),
    Domain.LANGUAGE: ("", " language"),
    Domain.HEALTH: ("", ""),
    Domain.BIOLOGY: ("", ""),
    Domain.MEDICAL: ("", " Adverse Events concept"),
}

TF_ANSWER_SUFFIX = "answer with (Yes/No/I don't know)"


def _wrap(wrappers: dict[Domain, tuple[str, str]], domain: Domain,
          name: str) -> str:
    prefix, suffix = wrappers[domain]
    return f"{prefix}{name}{suffix}"


def true_false_prompt(domain: Domain, child_name: str, parent_name: str,
                      variant: int = 0) -> str:
    """Render a Table 2 True/False question."""
    if not 0 <= variant < len(RELATION_VARIANTS):
        raise PromptError(f"unknown template variant: {variant}")
    relation = RELATION_VARIANTS[variant]
    child = _wrap(_TF_WRAPPERS, domain, child_name)
    parent = _wrap(_TF_WRAPPERS, domain, parent_name)
    verb = "Are" if domain is Domain.SHOPPING else "Is"
    return f"{verb} {child} {relation} {parent}? {TF_ANSWER_SUFFIX}"


def mcq_prompt(domain: Domain, child_name: str, options: tuple[str, ...],
               variant: int = 0) -> str:
    """Render a Table 3 multiple-choice question."""
    if not 0 <= variant < len(ADJECTIVE_VARIANTS):
        raise PromptError(f"unknown template variant: {variant}")
    if len(options) != len(MCQ_LETTERS):
        raise PromptError("MCQ prompts need exactly 4 options")
    adjective = ADJECTIVE_VARIANTS[variant]
    subject = _wrap(_MCQ_WRAPPERS, domain, child_name)
    listing = " ".join(f"{letter}) {option}"
                       for letter, option in zip(MCQ_LETTERS, options))
    return (f"What is the most {adjective} supertype of {subject}? "
            f"{listing}")


def render_question(question: Question, variant: int = 0) -> str:
    """Render any :class:`Question` into its prompt text."""
    if question.qtype is QuestionType.MCQ:
        return mcq_prompt(question.domain, question.child_name,
                          question.options, variant)
    return true_false_prompt(question.domain, question.child_name,
                             question.asked_parent_name, variant)
