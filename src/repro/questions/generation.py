"""Question generation per taxonomy level (paper Section 2.2).

For each level ``n`` (children) the generator samples entities with the
95%/5% Cochran size, then emits for every sampled child:

* a **positive** question against the true parent,
* a **negative-easy** question against a random other node at the
  parent's level,
* a **negative-hard** question against an uncle (sibling of the true
  parent) — dropped when the child has no uncles, which is why hard
  counts in Table 4 occasionally run a few questions short, and
* an **MCQ** with the true parent and three uncle distractors (padded
  with other parent-level nodes, then with the child's own siblings,
  when fewer than three uncles exist — e.g. Schema.org's three roots).

All sampling is driven by ``random.Random`` seeded from the taxonomy
key and level, so pools are a pure function of the taxonomy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import QuestionGenerationError
from repro.questions.model import (Question, QuestionKind, QuestionType)
from repro.stats.sampling import cochran_sample_size
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.node import TaxonomyNode

_MCQ_OPTION_COUNT = 4


@dataclass(frozen=True, slots=True)
class LevelQuestions:
    """All question kinds generated for one child level."""

    taxonomy_key: str
    level: int
    positives: tuple[Question, ...]
    negatives_easy: tuple[Question, ...]
    negatives_hard: tuple[Question, ...]
    mcqs: tuple[Question, ...]

    @property
    def easy(self) -> tuple[Question, ...]:
        return self.positives + self.negatives_easy

    @property
    def hard(self) -> tuple[Question, ...]:
        """Positives paired with hard negatives (same pairing as paper).

        Positives whose child has no uncles are dropped together with
        the missing hard negative, keeping the set balanced.
        """
        with_hard = {q.child_id for q in self.negatives_hard}
        kept = tuple(q for q in self.positives if q.child_id in with_hard)
        return kept + self.negatives_hard


def _uid(taxonomy_key: str, kind: QuestionKind, child: TaxonomyNode,
         asked: str) -> str:
    return f"{taxonomy_key}|{kind.value}|{child.node_id}|{asked}"


def _tf_question(taxonomy: Taxonomy, taxonomy_key: str,
                 kind: QuestionKind, child: TaxonomyNode,
                 asked_parent: TaxonomyNode) -> Question:
    true_parent = taxonomy.parent(child.node_id)
    return Question(
        uid=_uid(taxonomy_key, kind, child, asked_parent.node_id),
        taxonomy_key=taxonomy_key,
        domain=taxonomy.domain,
        qtype=QuestionType.TRUE_FALSE,
        kind=kind,
        level=child.level,
        child_id=child.node_id,
        child_name=child.name,
        true_parent_id=true_parent.node_id,
        true_parent_name=true_parent.name,
        asked_parent_name=asked_parent.name,
    )


def _sample_easy_negative(taxonomy: Taxonomy, child: TaxonomyNode,
                          rng: random.Random) -> TaxonomyNode | None:
    """A random parent-level node that is not the true parent.

    One bounded draw: sample an index over the level minus one slot and
    shift picks at/after the parent's position up by one.  Uniform over
    the non-parent candidates (the rejection loop's contract) without
    the degenerate many-retry case when the level is tiny.
    """
    candidates = taxonomy.nodes_at_level(child.level - 1)
    if len(candidates) < 2:
        return None
    parent_pos = taxonomy.position_in_level(child.parent_id)
    pick = rng.randrange(len(candidates) - 1)
    if pick >= parent_pos:
        pick += 1
    return candidates[pick]


def _mcq_distractors(taxonomy: Taxonomy, child: TaxonomyNode,
                     rng: random.Random) -> list[TaxonomyNode] | None:
    """Three distractors: uncles first, then padding (see module doc)."""
    distractors = list(taxonomy.uncles(child.node_id))
    if len(distractors) > 3:
        distractors = rng.sample(distractors, 3)
    if len(distractors) < 3:
        taken = {node.node_id for node in distractors}
        taken.add(child.parent_id)
        pad_pool = [node for node in
                    taxonomy.nodes_at_level(child.level - 1)
                    if node.node_id not in taken]
        pad_pool += [node for node in taxonomy.siblings(child.node_id)
                     if node.node_id not in taken]
        rng.shuffle(pad_pool)
        distractors.extend(pad_pool[:3 - len(distractors)])
    if len(distractors) < 3:
        return None
    return distractors


def _mcq_question(taxonomy: Taxonomy, taxonomy_key: str,
                  child: TaxonomyNode,
                  rng: random.Random) -> Question | None:
    distractors = _mcq_distractors(taxonomy, child, rng)
    if distractors is None:
        return None
    true_parent = taxonomy.parent(child.node_id)
    options = [true_parent.name] + [node.name for node in distractors]
    rng.shuffle(options)
    answer_index = options.index(true_parent.name)
    return Question(
        uid=_uid(taxonomy_key, QuestionKind.MCQ, child, "options"),
        taxonomy_key=taxonomy_key,
        domain=taxonomy.domain,
        qtype=QuestionType.MCQ,
        kind=QuestionKind.MCQ,
        level=child.level,
        child_id=child.node_id,
        child_name=child.name,
        true_parent_id=true_parent.node_id,
        true_parent_name=true_parent.name,
        options=tuple(options),
        answer_index=answer_index,
    )


def generate_level_questions(taxonomy_key: str, taxonomy: Taxonomy,
                             level: int,
                             sample_size: int | None = None,
                             seed: str = "") -> LevelQuestions:
    """Generate all question kinds for child level ``level`` (>= 1)."""
    if level < 1:
        raise QuestionGenerationError(
            "questions probe child levels >= 1 (roots have no parent)")
    children = taxonomy.nodes_at_level(level)
    if not children:
        raise QuestionGenerationError(
            f"{taxonomy_key}: no entities at level {level}")
    if sample_size is None:
        sample_size = cochran_sample_size(len(children))
    sample_size = min(sample_size, len(children))
    rng = random.Random(f"{seed}|{taxonomy_key}|level{level}")
    sampled = rng.sample(children, sample_size)

    positives: list[Question] = []
    negatives_easy: list[Question] = []
    negatives_hard: list[Question] = []
    mcqs: list[Question] = []
    for child in sampled:
        true_parent = taxonomy.parent(child.node_id)
        positives.append(_tf_question(
            taxonomy, taxonomy_key, QuestionKind.POSITIVE, child,
            true_parent))

        easy_negative = _sample_easy_negative(taxonomy, child, rng)
        if easy_negative is not None:
            negatives_easy.append(_tf_question(
                taxonomy, taxonomy_key, QuestionKind.NEGATIVE_EASY,
                child, easy_negative))

        uncles = taxonomy.uncles(child.node_id)
        if uncles:
            negatives_hard.append(_tf_question(
                taxonomy, taxonomy_key, QuestionKind.NEGATIVE_HARD,
                child, rng.choice(uncles)))

        mcq = _mcq_question(taxonomy, taxonomy_key, child, rng)
        if mcq is not None:
            mcqs.append(mcq)

    return LevelQuestions(
        taxonomy_key=taxonomy_key,
        level=level,
        positives=tuple(positives),
        negatives_easy=tuple(negatives_easy),
        negatives_hard=tuple(negatives_hard),
        mcqs=tuple(mcqs),
    )
