"""Question data model shared by generation, prompting and evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.taxonomy.node import Domain

MCQ_LETTERS = ("A", "B", "C", "D")


class QuestionType(str, Enum):
    """Template family: True/False (Table 2) or MCQ (Table 3)."""

    TRUE_FALSE = "true-false"
    MCQ = "mcq"


class QuestionKind(str, Enum):
    """Provenance of the asked parent (paper Section 2.2)."""

    POSITIVE = "positive"
    NEGATIVE_EASY = "negative-easy"
    NEGATIVE_HARD = "negative-hard"
    MCQ = "mcq"


class DatasetKind(str, Enum):
    """Evaluation dataset: positives paired with one negative flavour."""

    EASY = "easy"     # positive + negative-easy
    HARD = "hard"     # positive + negative-hard
    MCQ = "mcq"

    @property
    def question_kinds(self) -> tuple[QuestionKind, ...]:
        if self is DatasetKind.EASY:
            return (QuestionKind.POSITIVE, QuestionKind.NEGATIVE_EASY)
        if self is DatasetKind.HARD:
            return (QuestionKind.POSITIVE, QuestionKind.NEGATIVE_HARD)
        return (QuestionKind.MCQ,)


class Answer(str, Enum):
    """Canonical answers the harness compares against."""

    YES = "yes"
    NO = "no"
    IDK = "idk"            # "I don't know" => counted as a miss
    A = "A"
    B = "B"
    C = "C"
    D = "D"
    UNPARSEABLE = "unparseable"

    @property
    def is_miss(self) -> bool:
        return self in (Answer.IDK, Answer.UNPARSEABLE)


_LETTER_ANSWERS = {
    "A": Answer.A, "B": Answer.B, "C": Answer.C, "D": Answer.D,
}


def letter_answer(letter: str) -> Answer:
    """Map "A".."D" to the corresponding :class:`Answer`."""
    return _LETTER_ANSWERS[letter]


@dataclass(frozen=True, slots=True)
class Question:
    """One benchmark question about a child->parent Is-A edge.

    ``level`` is the child entity's level; a question at level ``n``
    probes the "level n to level n-1" relation in the paper's phrasing.
    For True/False questions ``asked_parent_name`` is the candidate
    parent named in the prompt (the true parent for positives, a
    distractor for negatives); MCQ questions instead carry four
    ``options`` and the index of the correct one.
    """

    uid: str
    taxonomy_key: str
    domain: Domain
    qtype: QuestionType
    kind: QuestionKind
    level: int
    child_id: str
    child_name: str
    true_parent_id: str
    true_parent_name: str
    asked_parent_name: str | None = None
    options: tuple[str, ...] = field(default=())
    answer_index: int | None = None

    def __post_init__(self) -> None:
        if self.qtype is QuestionType.MCQ:
            if len(self.options) != len(MCQ_LETTERS):
                raise ValueError("MCQ questions need exactly 4 options")
            if self.answer_index is None or not (
                    0 <= self.answer_index < len(self.options)):
                raise ValueError("MCQ answer_index out of range")
        elif self.asked_parent_name is None:
            raise ValueError("True/False questions need an asked parent")

    @property
    def expected_answer(self) -> Answer:
        """The ground-truth answer."""
        if self.qtype is QuestionType.MCQ:
            return letter_answer(MCQ_LETTERS[self.answer_index])
        if self.kind is QuestionKind.POSITIVE:
            return Answer.YES
        return Answer.NO

    @property
    def level_label(self) -> str:
        """Paper-style label, e.g. "level 2-1" or "level 1-root"."""
        upper = "root" if self.level == 1 else str(self.level - 1)
        return f"level {self.level}-{upper}"


def level_label(level: int) -> str:
    """Paper-style label for a child level (see Table 4 row names)."""
    upper = "root" if level == 1 else str(level - 1)
    return f"level {level}-{upper}"
