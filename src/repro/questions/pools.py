"""Question pools: per-level datasets and Table 4 statistics.

A :class:`QuestionPool` is what the evaluation runner consumes: a flat
tuple of questions tagged with taxonomy, dataset kind and level.  The
:class:`TaxonomyPools` aggregate holds one pool per (level, dataset)
plus the level-combined totals that Tables 5-7 evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.generators.registry import build_taxonomy, get_spec
from repro.questions.generation import (LevelQuestions,
                                        generate_level_questions)
from repro.questions.model import DatasetKind, Question, level_label
from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class QuestionPool:
    """A named, ordered set of questions fed to models as one dataset."""

    taxonomy_key: str
    dataset: DatasetKind
    level: int | None          # None = all levels combined
    questions: tuple[Question, ...]

    def __len__(self) -> int:
        return len(self.questions)

    @property
    def label(self) -> str:
        scope = "total" if self.level is None else level_label(self.level)
        return f"{self.taxonomy_key}/{self.dataset.value}/{scope}"


class TaxonomyPools:
    """All evaluation datasets derived from one taxonomy."""

    def __init__(self, taxonomy_key: str, taxonomy: Taxonomy,
                 per_level: dict[int, LevelQuestions]):
        self.taxonomy_key = taxonomy_key
        self.taxonomy = taxonomy
        self._per_level = dict(sorted(per_level.items()))

    @property
    def question_levels(self) -> list[int]:
        """Child levels with questions (1 .. num_levels - 1)."""
        return list(self._per_level)

    def level_pool(self, level: int, dataset: DatasetKind) -> QuestionPool:
        """The per-level dataset (one line of Table 4)."""
        generated = self._per_level[level]
        questions = {
            DatasetKind.EASY: generated.easy,
            DatasetKind.HARD: generated.hard,
            DatasetKind.MCQ: generated.mcqs,
        }[dataset]
        return QuestionPool(self.taxonomy_key, dataset, level, questions)

    def total_pool(self, dataset: DatasetKind) -> QuestionPool:
        """All levels combined (the Tables 5-7 evaluation sets)."""
        questions: list[Question] = []
        for level in self.question_levels:
            questions.extend(self.level_pool(level, dataset).questions)
        return QuestionPool(self.taxonomy_key, dataset, None,
                            tuple(questions))

    def statistics(self) -> list[dict[str, object]]:
        """Rows of Table 4 for this taxonomy (plus the totals row)."""
        rows = []
        for level in self.question_levels:
            rows.append({
                "level": level_label(level),
                "easy": len(self.level_pool(level, DatasetKind.EASY)),
                "hard": len(self.level_pool(level, DatasetKind.HARD)),
                "mcq": len(self.level_pool(level, DatasetKind.MCQ)),
            })
        rows.append({
            "level": "total",
            "easy": sum(row["easy"] for row in rows),
            "hard": sum(row["hard"] for row in rows),
            "mcq": sum(row["mcq"] for row in rows),
        })
        return rows


def build_pools(taxonomy_key: str, taxonomy: Taxonomy | None = None,
                sample_size: int | None = None,
                seed: str = "") -> TaxonomyPools:
    """Generate every level's datasets for one taxonomy.

    ``sample_size`` overrides the Cochran size (useful for fast test
    runs); ``seed`` decorrelates repeated samplings.
    """
    if taxonomy is None:
        taxonomy = build_taxonomy(get_spec(taxonomy_key).key)
    per_level = {
        level: generate_level_questions(
            taxonomy_key, taxonomy, level,
            sample_size=sample_size, seed=seed)
        for level in range(1, taxonomy.num_levels)
    }
    return TaxonomyPools(taxonomy_key, taxonomy, per_level)


@lru_cache(maxsize=32)
def default_pools(taxonomy_key: str,
                  sample_size: int | None = None) -> TaxonomyPools:
    """Cached pools over the default synthetic taxonomy."""
    return build_pools(taxonomy_key, sample_size=sample_size)
