"""Question pools: per-level datasets and Table 4 statistics.

A :class:`QuestionPool` is what the evaluation runner consumes: a flat
tuple of questions tagged with taxonomy, dataset kind and level.  The
:class:`TaxonomyPools` aggregate holds one pool per (level, dataset)
plus the level-combined totals that Tables 5-7 evaluate.

Pools over the registry taxonomies are a pure function of
``(taxonomy key, sample_size, seed)``, so :func:`build_pools` consults
the on-disk artifact store (:mod:`repro.store`) first: a warm load
deserializes the columnar artifact in milliseconds instead of
regenerating the taxonomy and resampling every level.  Pass
``store=False`` to force generation (the store itself does this on a
miss), or an explicit :class:`repro.store.ArtifactStore` to use a
non-default cache directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.generators.registry import build_taxonomy, get_spec
from repro.questions.generation import (LevelQuestions,
                                        generate_level_questions)
from repro.questions.model import DatasetKind, Question, level_label
from repro.taxonomy.taxonomy import Taxonomy


@dataclass(frozen=True, slots=True)
class QuestionPool:
    """A named, ordered set of questions fed to models as one dataset."""

    taxonomy_key: str
    dataset: DatasetKind
    level: int | None          # None = all levels combined
    questions: tuple[Question, ...]

    def __len__(self) -> int:
        return len(self.questions)

    @property
    def label(self) -> str:
        scope = "total" if self.level is None else level_label(self.level)
        return f"{self.taxonomy_key}/{self.dataset.value}/{scope}"


class TaxonomyPools:
    """All evaluation datasets derived from one taxonomy.

    ``taxonomy`` may be the :class:`Taxonomy` itself or a zero-argument
    callable producing it; the store's decoder passes a thunk so warm
    loads skip rebuilding the node graph until something asks for it.
    """

    def __init__(self, taxonomy_key: str,
                 taxonomy: Taxonomy | Callable[[], Taxonomy],
                 per_level: dict[int, LevelQuestions]):
        self.taxonomy_key = taxonomy_key
        if callable(taxonomy):
            self._taxonomy: Taxonomy | None = None
            self._taxonomy_thunk: Callable[[], Taxonomy] | None = taxonomy
        else:
            self._taxonomy = taxonomy
            self._taxonomy_thunk = None
        self._per_level = dict(sorted(per_level.items()))
        self._totals: dict[DatasetKind, QuestionPool] = {}

    @property
    def taxonomy(self) -> Taxonomy:
        """The source taxonomy (materialized lazily on store loads)."""
        if self._taxonomy is None:
            self._taxonomy = self._taxonomy_thunk()
            self._taxonomy_thunk = None
        return self._taxonomy

    @property
    def question_levels(self) -> list[int]:
        """Child levels with questions (1 .. num_levels - 1)."""
        return list(self._per_level)

    @property
    def per_level(self) -> dict[int, LevelQuestions]:
        """The raw per-level generation results (store codec input)."""
        return self._per_level

    def level_pool(self, level: int, dataset: DatasetKind) -> QuestionPool:
        """The per-level dataset (one line of Table 4)."""
        generated = self._per_level[level]
        questions = {
            DatasetKind.EASY: generated.easy,
            DatasetKind.HARD: generated.hard,
            DatasetKind.MCQ: generated.mcqs,
        }[dataset]
        return QuestionPool(self.taxonomy_key, dataset, level, questions)

    def total_pool(self, dataset: DatasetKind) -> QuestionPool:
        """All levels combined (the Tables 5-7 evaluation sets).

        Cached per dataset kind: the overall tables request the same
        total once per model x prompt setting, and re-concatenating
        thousands of question tuples each time dominated their setup.
        """
        cached = self._totals.get(dataset)
        if cached is None:
            questions: list[Question] = []
            for level in self.question_levels:
                questions.extend(self.level_pool(level, dataset).questions)
            cached = QuestionPool(self.taxonomy_key, dataset, None,
                                  tuple(questions))
            self._totals[dataset] = cached
        return cached

    def statistics(self) -> list[dict[str, object]]:
        """Rows of Table 4 for this taxonomy (plus the totals row)."""
        rows = []
        for level in self.question_levels:
            rows.append({
                "level": level_label(level),
                "easy": len(self.level_pool(level, DatasetKind.EASY)),
                "hard": len(self.level_pool(level, DatasetKind.HARD)),
                "mcq": len(self.level_pool(level, DatasetKind.MCQ)),
            })
        rows.append({
            "level": "total",
            "easy": sum(row["easy"] for row in rows),
            "hard": sum(row["hard"] for row in rows),
            "mcq": sum(row["mcq"] for row in rows),
        })
        return rows


def generate_pools(taxonomy_key: str, taxonomy: Taxonomy | None = None,
                   sample_size: int | None = None,
                   seed: str = "") -> TaxonomyPools:
    """Generate every level's datasets for one taxonomy, bypassing any
    cache.  This is the pure producer the artifact store and the
    parallel build workers call; results are a deterministic function
    of the arguments."""
    if taxonomy is None:
        taxonomy = build_taxonomy(get_spec(taxonomy_key).key)
    per_level = {
        level: generate_level_questions(
            taxonomy_key, taxonomy, level,
            sample_size=sample_size, seed=seed)
        for level in range(1, taxonomy.num_levels)
    }
    return TaxonomyPools(taxonomy_key, taxonomy, per_level)


def build_pools(taxonomy_key: str, taxonomy: Taxonomy | None = None,
                sample_size: int | None = None,
                seed: str = "", store=True) -> TaxonomyPools:
    """Datasets for one taxonomy, served from the artifact store.

    ``sample_size`` overrides the Cochran size (useful for fast test
    runs); ``seed`` decorrelates repeated samplings.  ``store`` picks
    the cache: ``True`` (default) uses the default on-disk store,
    ``False``/``None`` generates from scratch, an
    :class:`repro.store.ArtifactStore` instance is used directly.
    Passing an explicit ``taxonomy`` always generates directly — the
    store only covers the registry taxonomies it can fingerprint.
    """
    if taxonomy is not None:
        return generate_pools(taxonomy_key, taxonomy,
                              sample_size=sample_size, seed=seed)
    if store is True:
        from repro.store.artifacts import default_store
        store = default_store()
    if not store:
        return generate_pools(taxonomy_key, sample_size=sample_size,
                              seed=seed)
    return store.get_or_build(taxonomy_key, sample_size=sample_size,
                              seed=seed)


@lru_cache(maxsize=32)
def default_pools(taxonomy_key: str,
                  sample_size: int | None = None) -> TaxonomyPools:
    """Cached pools over the default synthetic taxonomy."""
    return build_pools(taxonomy_key, sample_size=sample_size)
