"""ASCII renderings of the paper's figures.

The reproduction is terminal-first: Figure 2's bar chart, Figure 3's
per-level line charts and Figure 4's radar charts are rendered as
text so `python -m repro` and the benches can show the *figure*, not
just its numbers.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_FULL = "#"
_EMPTY = "."


def bar_chart(values: Mapping[str, float], width: int = 48,
              title: str = "", log_scale: bool = False) -> str:
    """Horizontal bar chart; one labelled bar per entry.

    ``log_scale`` renders bars proportional to log10(value), which is
    how Figure 2's hit counts (spanning 10^3..10^8) stay readable.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    scaled = {
        label: (math.log10(value + 1.0) if log_scale else value)
        for label, value in values.items()
    }
    top = max(scaled.values()) or 1.0
    label_width = max(len(label) for label in values) + 1
    lines = [title] if title else []
    for label, value in values.items():
        filled = round(scaled[label] / top * width)
        bar = _FULL * filled + _EMPTY * (width - filled)
        rendered = (f"{values[label]:,.0f}" if values[label] >= 10
                    else f"{values[label]:.3f}")
        lines.append(f"{label:<{label_width}}|{bar}| {rendered}")
    return "\n".join(lines)


def line_chart(series: Mapping[str, Sequence[float]],
               x_labels: Sequence[str], height: int = 12,
               title: str = "", y_min: float = 0.0,
               y_max: float = 1.0) -> str:
    """Multi-series line chart on a character grid (Figure 3 style).

    Each series gets a distinct marker; collisions show the later
    series' marker.  Values are clamped into [y_min, y_max].
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the x-axis length")
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")

    markers = "ox*+@%&=~^"
    column_width = max(max(len(label) for label in x_labels) + 1, 6)
    grid = [[" "] * (column_width * len(x_labels))
            for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, value in enumerate(values):
            clamped = min(max(value, y_min), y_max)
            rel = (clamped - y_min) / (y_max - y_min)
            row = height - 1 - round(rel * (height - 1))
            col = x * column_width + column_width // 2
            grid[row][col] = marker
    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        rel = 1.0 - row_index / (height - 1)
        y_value = y_min + rel * (y_max - y_min)
        lines.append(f"{y_value:5.2f} |" + "".join(row))
    axis = " " * 6 + "+" + "-" * (column_width * len(x_labels))
    lines.append(axis)
    lines.append(" " * 7 + "".join(
        label.center(column_width) for label in x_labels))
    legend = "  ".join(f"{markers[i % len(markers)]}={label}"
                       for i, label in enumerate(series))
    lines.append(" " * 7 + legend)
    return "\n".join(lines)


def radar_table(spokes: Sequence[str],
                series: Mapping[str, Sequence[float]],
                title: str = "") -> str:
    """Figure 4's radar charts as an aligned spoke table.

    A true polar plot adds nothing in a terminal; the spoke table
    carries the same comparison (per-taxonomy values per setting).
    """
    if not series:
        raise ValueError("radar_table needs at least one series")
    for label, values in series.items():
        if len(values) != len(spokes):
            raise ValueError(
                f"series {label!r} does not match the spoke count")
    spoke_width = max(len(spoke) for spoke in spokes) + 2
    name_width = max(len(label) for label in series) + 2
    lines = [title] if title else []
    lines.append(" " * name_width + "".join(
        spoke.rjust(spoke_width) for spoke in spokes))
    for label, values in series.items():
        lines.append(f"{label:<{name_width}}" + "".join(
            f"{value:.3f}".rjust(spoke_width) for value in values))
    return "\n".join(lines)
