"""Terminal renderings of the paper's figures."""

from repro.figures.ascii import bar_chart, line_chart, radar_table

__all__ = ["bar_chart", "line_chart", "radar_table"]
