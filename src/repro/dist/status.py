"""Status aggregation over a sharded run's K shard directories.

An unmerged sharded run has no top-level ledger or heartbeat — its
truth is spread over K shard directories — so the single-run status
machinery (`run_status`, `repro runs list`, `repro watch`) needs this
module to fold K liveness signals into one answer.  Each shard gets
the standard four-state verdict from its own heartbeat + ledger
freshness, plus ``pending`` for a shard whose worker never started
(queued behind the process pool, or orphaned by a dead driver); the
run-level fold is pessimistic about death and optimistic about work:

* any shard ``running``            -> ``running``
* else any shard ``stalled``       -> ``stalled``
* else every shard ``finished``    -> ``unmerged`` (merge will flip
  the run to ``finished``)
* else                             -> ``crashed``
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.runs.heartbeat import (DEFAULT_STALL_DEADLINE_S,
                                  read_heartbeat, run_status)
from repro.runs.registry import RunRegistry
from repro.dist.planner import ShardPlan, load_shard_plan
from repro.dist.worker import replay_shard

#: The extra statuses sharded runs introduce beyond the standard four.
SHARD_ONLY_STATUSES = ("pending", "unmerged")


@dataclass(frozen=True, slots=True)
class ShardStatus:
    """One shard's progress + liveness snapshot."""

    shard: int
    status: str
    tasks: int
    questions_done: int
    questions_total: int
    attempts: int

    @property
    def fraction(self) -> float:
        if self.questions_total <= 0:
            return 1.0 if self.status == "finished" else 0.0
        return min(1.0, self.questions_done / self.questions_total)

    def as_row(self) -> dict[str, object]:
        return {
            "shard": self.shard,
            "tasks": self.tasks,
            "questions": (f"{self.questions_done}"
                          f"/{self.questions_total}"),
            "attempts": self.attempts,
            "status": self.status,
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "shard": self.shard,
            "status": self.status,
            "tasks": self.tasks,
            "questions_done": self.questions_done,
            "questions_total": self.questions_total,
            "attempts": self.attempts,
        }


def _shard_progress_ts(registry: RunRegistry, run_id: str,
                       shard: int) -> float | None:
    """Last time the shard's ledger or span log visibly advanced."""
    latest: float | None = None
    for path in (registry.shard_ledger_path(run_id, shard),
                 registry.shard_spans_path(run_id, shard)):
        try:
            mtime = path.stat().st_mtime
        except OSError:
            continue
        latest = mtime if latest is None else max(latest, mtime)
    return latest


def shard_statuses(run_id: str,
                   registry: RunRegistry | None = None,
                   plan: ShardPlan | None = None,
                   stall_deadline_s: float = DEFAULT_STALL_DEADLINE_S
                   ) -> list[ShardStatus]:
    """Per-shard snapshots, shard index order."""
    registry = registry if registry is not None else RunRegistry()
    if plan is None:
        plan = load_shard_plan(registry, run_id)
    statuses: list[ShardStatus] = []
    for shard in range(plan.num_shards):
        ledger_path = registry.shard_ledger_path(run_id, shard)
        state = replay_shard(ledger_path, shard)
        heartbeat = read_heartbeat(
            registry.shard_heartbeat_path(run_id, shard))
        if heartbeat is None and not ledger_path.exists():
            status = "pending"
        else:
            status = run_status(
                state.finished, heartbeat,
                _shard_progress_ts(registry, run_id, shard),
                stall_deadline_s=stall_deadline_s)
        # Count only records inside this shard's own task ranges —
        # a resumed shard replays foreign cell-started events, never
        # foreign records, so the plain sum is already scoped.
        done = state.recorded_questions
        statuses.append(ShardStatus(
            shard=shard, status=status,
            tasks=len(plan.shards[shard]),
            questions_done=done,
            questions_total=plan.shard_questions(shard),
            attempts=state.attempts))
    return statuses


def sharded_run_status(run_id: str,
                       registry: RunRegistry | None = None,
                       stall_deadline_s: float =
                       DEFAULT_STALL_DEADLINE_S) -> str:
    """Fold K shard statuses into one run-level status."""
    statuses = [shard.status for shard in shard_statuses(
        run_id, registry=registry,
        stall_deadline_s=stall_deadline_s)]
    if not statuses:
        return "unmerged"
    if any(status == "running" for status in statuses):
        return "running"
    if any(status == "stalled" for status in statuses):
        return "stalled"
    if all(status == "finished" for status in statuses):
        return "unmerged"
    return "crashed"


# ----------------------------------------------------------------------
# ASCII shard dashboard (``repro watch`` on an unmerged sharded run)
# ----------------------------------------------------------------------
def render_shard_dashboard(run_id: str,
                           statuses: list[ShardStatus]) -> str:
    """One frame: run header plus a progress bar per shard."""
    from repro.obs.live import _bar
    done = sum(shard.questions_done for shard in statuses)
    total = sum(shard.questions_total for shard in statuses)
    finished = sum(1 for shard in statuses
                   if shard.status == "finished")
    fraction = (done / total) if total else 0.0
    lines = [
        (f"run {run_id} [sharded x{len(statuses)}] — "
         f"{finished}/{len(statuses)} shards finished, "
         f"{done}/{total} questions ({fraction * 100:.1f}%)"),
    ]
    for shard in statuses:
        lines.append(
            f"shard {shard.shard:02d} {_bar(shard.fraction)} "
            f"{shard.questions_done}/{shard.questions_total} "
            f"({shard.tasks} tasks, attempt "
            f"{max(1, shard.attempts)}) {shard.status}")
    if finished == len(statuses):
        lines.append(f"all shards finished — run `repro runs merge "
                     f"{run_id}` to fold them into the run ledger")
    return "\n".join(lines)


def watch_shards(run_id: str,
                 registry: RunRegistry | None = None,
                 interval_s: float = 1.0,
                 stall_deadline_s: float = DEFAULT_STALL_DEADLINE_S,
                 emit=None,
                 until_finished: bool = True) -> list[ShardStatus]:
    """Poll + render the shard dashboard until every shard settles.

    "Settled" means no shard is ``running`` or ``pending`` — finished,
    stalled and crashed are all terminal for a watcher (resume is an
    operator action).  Returns the final snapshot.
    """
    registry = registry if registry is not None else RunRegistry()
    plan = load_shard_plan(registry, run_id)

    def _print(frame: str) -> None:  # pragma: no cover - terminal io
        print("\x1b[H\x1b[2J" + frame, flush=True)

    emit = emit if emit is not None else _print
    while True:
        statuses = shard_statuses(run_id, registry=registry,
                                  plan=plan,
                                  stall_deadline_s=stall_deadline_s)
        emit(render_shard_dashboard(run_id, statuses))
        if until_finished and not any(
                shard.status in ("running", "pending")
                for shard in statuses):
            return statuses
        time.sleep(interval_s)
