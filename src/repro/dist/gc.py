"""Registry garbage collection for sharded sweeps.

Sharded runs leave two classes of disposable state behind: the
``shards/`` directory of a successfully *merged* run (K ledgers,
span logs, heartbeats and caches whose every byte has been folded
into the top-level run artifacts), and debris from crashes — run
directories whose creator died between the exclusive ``mkdir`` and
the manifest write, and ``*.tmp`` files from a merge or atomic write
that never reached its ``os.replace``.  None of it is load-bearing,
all of it accretes, and ``repro runs gc`` prunes it.

Safety rails: anything younger than ``min_age_s`` is left alone (it
may belong to a run that is mid-create or mid-merge *right now*),
an unmerged run's shard directories are never touched (they are the
only copy of the work), and ``--dry-run`` reports what would go
without deleting a byte.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runs.registry import RunRegistry

#: Default minimum age before crash debris is considered abandoned.
DEFAULT_MIN_AGE_S = 3600.0


@dataclass(frozen=True, slots=True)
class GcCandidate:
    """One path the collector decided (or proposed) to remove."""

    path: str
    reason: str            # orphan-run | merged-shards | stale-tmp
    bytes: int

    def as_row(self) -> dict[str, object]:
        return {"path": self.path, "reason": self.reason,
                "bytes": self.bytes}


@dataclass(frozen=True, slots=True)
class GcReport:
    """Outcome of one collection pass."""

    dry_run: bool
    removed: tuple[GcCandidate, ...] = field(default=())

    @property
    def bytes_reclaimed(self) -> int:
        return sum(candidate.bytes for candidate in self.removed)

    def to_dict(self) -> dict[str, object]:
        return {
            "dry_run": self.dry_run,
            "bytes_reclaimed": self.bytes_reclaimed,
            "removed": [candidate.as_row()
                        for candidate in self.removed],
        }


def _tree_bytes(path: Path) -> int:
    """Total file bytes under ``path`` (0 on racing deletion)."""
    if path.is_file():
        try:
            return path.stat().st_size
        except OSError:
            return 0
    total = 0
    for root, _, names in os.walk(path, onerror=lambda err: None):
        for name in names:
            try:
                total += (Path(root) / name).stat().st_size
            except OSError:
                continue
    return total


def _old_enough(path: Path, now: float, min_age_s: float) -> bool:
    try:
        return now - path.stat().st_mtime >= min_age_s
    except OSError:
        return False


def _stale_tmps(run_dir: Path, now: float,
                min_age_s: float) -> list[Path]:
    """``*.tmp`` files under a run dir (atomic-write leftovers)."""
    try:
        candidates = sorted(run_dir.rglob("*.tmp"))
    except OSError:
        return []
    return [path for path in candidates
            if path.is_file() and _old_enough(path, now, min_age_s)]


def gc_runs(registry: RunRegistry | None = None,
            dry_run: bool = False,
            min_age_s: float = DEFAULT_MIN_AGE_S,
            now: float | None = None) -> GcReport:
    """Collect disposable registry state; see the module docstring.

    Returns the full candidate list (with per-path byte counts)
    whether or not anything was actually deleted.
    """
    registry = registry if registry is not None else RunRegistry()
    now = time.time() if now is None else now
    candidates: list[GcCandidate] = []

    for orphan in registry.orphan_dirs():
        if _old_enough(orphan, now, min_age_s):
            candidates.append(GcCandidate(
                path=str(orphan), reason="orphan-run",
                bytes=_tree_bytes(orphan)))

    for run_id in registry.list_ids():
        run_dir = registry.run_dir(run_id)
        shards_dir = registry.shards_dir(run_id)
        if shards_dir.is_dir():
            try:
                finished = registry.state(run_id).finished
            except Exception:
                finished = False    # undecodable run: keep everything
            if finished:
                candidates.append(GcCandidate(
                    path=str(shards_dir), reason="merged-shards",
                    bytes=_tree_bytes(shards_dir)))
        for tmp in _stale_tmps(run_dir, now, min_age_s):
            if any(tmp.is_relative_to(candidate.path)
                   for candidate in candidates):
                continue            # parent already scheduled
            candidates.append(GcCandidate(
                path=str(tmp), reason="stale-tmp",
                bytes=_tree_bytes(tmp)))

    if not dry_run:
        for candidate in candidates:
            path = Path(candidate.path)
            try:
                if path.is_dir():
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - racing deletion
                continue
    return GcReport(dry_run=dry_run, removed=tuple(candidates))
