"""Shard workers: execute one shard of a run in its own process.

Each shard owns a *shard directory* (``<run>/shards/shard-NN/``) with
the same artifact shapes as a whole run — ``ledger.jsonl``,
``spans.jsonl``, ``heartbeat.json``, optionally ``cache.json`` — so
every durability property proven for single-process runs carries over
file for file: appends are single locked writes, a torn final line is
the crash signature, the heartbeat separates "slow" from "gone".

A shard ledger speaks the run ledger's event language with two
additions, ``shard-started`` / ``shard-finished``, bracketing each
attempt the way ``run-started`` / ``run-finished`` bracket a run.
Cells are *never* sealed here: a shard may own only a range of a
cell's questions, so ``cell-finished`` is the merge's exclusive right
— which is also what lets the merge detect coverage holes instead of
trusting K workers' self-reports.

Crash-safe resume is per shard: :func:`run_shard` replays its own
ledger first and re-asks only the question indices of its tasks that
have no record yet, exactly the ``resume_run`` contract scoped down to
one shard.  Because pools, prompts and the simulated backends are pure
functions of the request, a shard's records are bit-identical whether
it ran clean, crashed and resumed, or ran inline in the driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.results import QuestionRecord
from repro.core.runner import EvaluationRunner
from repro.engine.cache import ResponseCache
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry
from repro.errors import RunError
from repro.llm.prompting import PromptSetting
from repro.llm.registry import get_model
from repro.obs.export import JsonlSpanSink
from repro.obs.tracer import NullTracer, Tracer
from repro.runs.driver import (ModelResolver, _pool_for,
                               _resolve_tracer, build_request_pools)
from repro.runs.heartbeat import HeartbeatWriter
from repro.runs.ledger import CellState, RunLedger, replay_ledger
from repro.obs.jsonl import iter_jsonl
from repro.dist.planner import ShardPlan, load_shard_plan
from repro.runs.registry import RunRegistry


class ShardLedger(RunLedger):
    """A run ledger plus the shard attempt bracket events."""

    def shard_started(self, run_id: str, shard: int,
                      attempt: int = 1) -> None:
        self._append({"event": "shard-started", "run_id": run_id,
                      "shard": shard, "attempt": attempt,
                      "ts": time.time()}, sync=self._sync_boundary())

    def shard_finished(self, shard: int,
                       stats: dict | None = None) -> None:
        self._append({"event": "shard-finished", "shard": shard,
                      "stats": stats, "ts": time.time()},
                     sync=self._sync_boundary())


@dataclass
class ShardState:
    """One shard ledger folded back into state."""

    shard: int
    attempts: int = 0
    finished: bool = False
    stats: dict | None = None
    cells: dict[str, CellState] = field(default_factory=dict)

    @property
    def recorded_questions(self) -> int:
        return sum(len(cell.records) for cell in self.cells.values())

    def done_for(self, cell_id: str,
                 indices) -> dict[int, QuestionRecord]:
        """Already-persisted records of one task's index range."""
        cell = self.cells.get(cell_id)
        if cell is None:
            return {}
        return {index: cell.records[index] for index in indices
                if index in cell.records}


def replay_shard(path, shard: int) -> ShardState:
    """Fold a shard ledger into :class:`ShardState`.

    Cell/record folding is delegated to the run ledger's replayer
    (shard brackets are unknown events to it, skipped by design); the
    brackets themselves are folded in a second tolerant pass.  A
    missing file is simply a shard that never started.
    """
    state = ShardState(shard=shard)
    try:
        run_state = replay_ledger(path)
    except FileNotFoundError:
        return state
    state.cells = run_state.cells
    for _, event in iter_jsonl(path).records:
        kind = event.get("event") if isinstance(event, dict) else None
        if kind == "shard-started":
            try:
                attempt = int(event.get("attempt", 1))
            except (TypeError, ValueError):
                attempt = 1
            state.attempts = max(state.attempts, attempt)
            state.finished = False      # a new attempt reopens it
        elif kind == "shard-finished":
            state.finished = True
            stats = event.get("stats")
            state.stats = stats if isinstance(stats, dict) else None
    return state


@dataclass(frozen=True, slots=True)
class ShardResult:
    """Outcome of one :func:`run_shard` invocation."""

    run_id: str
    shard: int
    evaluated: int
    replayed: int
    stats: EngineStats | None = None

    def to_dict(self) -> dict[str, object]:
        return {"run_id": self.run_id, "shard": self.shard,
                "evaluated": self.evaluated,
                "replayed": self.replayed,
                "stats": (self.stats.to_dict()
                          if self.stats is not None else None)}


def _shard_engine(request, cache: ResponseCache | None
                  ) -> EvaluationEngine | None:
    """The worker's engine: same policy as ``_build_engine``, plus an
    explicit cache instance when the run is cache-backed (each shard's
    cache is its own object persisted to its own file — no shared
    mutable state crosses a process boundary)."""
    if (request.workers <= 1 and cache is None
            and request.batch_size <= 1 and not request.coalesce):
        return None
    # cache=True regardless of a warm seed: the driver's engine has an
    # in-memory cache layer by default, and a shard's middleware stack
    # must mirror it so the same request leaves the same provenance
    # trail sharded or inline.
    config = EngineConfig(
        max_workers=max(1, request.workers),
        retry=RetryPolicy(retries=max(0, request.retries)),
        batch_size=request.batch_size,
        coalesce=request.coalesce,
        trail=request.trail)
    return EvaluationEngine(config, cache=cache)


def run_shard(run_id: str, shard: int,
              registry: RunRegistry | None = None,
              resolve_model: ModelResolver | None = None,
              plan: ShardPlan | None = None,
              durability: str = "cell",
              trace: bool = True,
              tracer: "Tracer | NullTracer | None" = None,
              warm_cache: str | None = None) -> ShardResult:
    """Execute (or resume) one shard of a sharded run.

    Idempotent: a shard whose ledger already carries a
    ``shard-finished`` event returns a pure replay summary with zero
    model calls.  A partially recorded shard re-asks only its holes.

    ``warm_cache`` names a pre-existing shared cache file to seed the
    shard's response cache from (read-only — concurrent shards may
    all load it); the shard's final cache (seed + its own responses)
    is persisted to the shard directory, never to the shared path.
    """
    registry = registry if registry is not None else RunRegistry()
    resolve = resolve_model if resolve_model is not None else get_model
    request = registry.request(run_id)
    if plan is None:
        plan = load_shard_plan(registry, run_id)
    if not 0 <= shard < plan.num_shards:
        raise RunError(f"run {run_id} has {plan.num_shards} shards; "
                       f"no shard {shard}")
    tasks = plan.shards[shard]
    ledger_path = registry.shard_ledger_path(run_id, shard)
    state = replay_shard(ledger_path, shard)
    if state.finished:
        return ShardResult(
            run_id=run_id, shard=shard, evaluated=0,
            replayed=state.recorded_questions,
            stats=(EngineStats.from_dict(state.stats)
                   if state.stats else None))

    pools = build_request_pools(request)
    cache = (ResponseCache.load(warm_cache)
             if warm_cache is not None else None)
    engine = _shard_engine(request, cache)
    tracer = _resolve_tracer(tracer, trace)
    if (engine is not None and tracer.enabled
            and not engine.tracer.enabled):
        engine.tracer = tracer
    telemetry = Telemetry() if engine is None else None
    sink = None
    if tracer.enabled and tracer.sink is None:
        sink = JsonlSpanSink(registry.shard_spans_path(run_id, shard))
        tracer.sink = sink

    evaluated = 0
    replayed = 0
    heartbeat = HeartbeatWriter(
        registry.shard_heartbeat_path(run_id, shard))
    try:
        with ShardLedger(ledger_path, durability=durability) as ledger:
            ledger.shard_started(run_id, shard,
                                 attempt=state.attempts + 1)
            runner = EvaluationRunner(variant=request.variant,
                                      keep_records=False,
                                      engine=engine, ledger=ledger,
                                      tracer=tracer,
                                      telemetry=telemetry,
                                      trail=request.trail)
            started = time.perf_counter()
            with tracer.span("shard", run_id=run_id, shard=shard,
                             tasks=len(tasks),
                             attempt=state.attempts + 1):
                for task in tasks:
                    pool = _pool_for(task.cell, pools)
                    if len(pool) != task.n:
                        raise RunError(
                            f"shard plan sized cell "
                            f"{task.cell.cell_id} at {task.n} "
                            f"questions but the request now builds "
                            f"{len(pool)} — the plan predates a "
                            f"generator change")
                    done = state.done_for(task.cell.cell_id,
                                          task.indices)
                    replayed += len(done)
                    evaluated += task.size - len(done)
                    runner.evaluate_slice(
                        resolve(task.cell.model), pool,
                        PromptSetting(task.cell.setting),
                        task.indices, done=done)
            if telemetry is not None:
                telemetry.record_run(time.perf_counter() - started, 1)
            stats = (engine.stats() if engine is not None
                     else telemetry.snapshot())
            ledger.shard_finished(shard, stats.to_dict())
        if cache is not None:
            cache.save(registry.shard_cache_path(run_id, shard))
    finally:
        heartbeat.close()
        if sink is not None:
            tracer.sink = None
            sink.close()
    return ShardResult(run_id=run_id, shard=shard,
                       evaluated=evaluated, replayed=replayed,
                       stats=stats)


def shard_entry(root: str, run_id: str, shard: int,
                durability: str = "cell", trace: bool = True,
                warm_cache: str | None = None,
                resolve_model: ModelResolver | None = None
                ) -> dict[str, object]:
    """Process-pool entry point (module-level, so it pickles).

    ``resolve_model`` must itself be picklable when crossing a
    process boundary — a module-level function, or ``None`` for the
    model registry's resolver.
    """
    result = run_shard(run_id, shard, registry=RunRegistry(root),
                       resolve_model=resolve_model,
                       durability=durability, trace=trace,
                       warm_cache=warm_cache)
    return result.to_dict()
