"""Deterministic merge: K shard ledgers -> one run, bit-identical.

The merge is the counterpart of the planner's disjoint-exact-cover
invariant: it folds every shard's ``record`` events back together,
proves the union covers every planned cell exactly (no holes, no
conflicting duplicates), and then *re-emits the sequential event
stream* — walking the plan's cell order, writing ``cell-started``,
the records in index order, and ``cell-finished`` with metrics
computed from the merged records — into the run's top-level
``ledger.jsonl``.  Because records carry no timestamps and metrics
are pure functions of records, the merged ledger's cell and record
events are byte-identical to a single-process run of the same
request, which is the contract the scaling benchmark gates.

Order-insensitivity falls out of the shape: shard ledgers are folded
into an index-keyed map, so the merge result cannot depend on which
worker finished first, how a shard's engine interleaved questions, or
how many times a shard crashed and resumed.

Crash safety: the merged ledger and span log are written to temp
files in the run directory and ``os.replace``d into place, so a merge
that dies mid-write leaves the run in the mergeable "all shards
finished" state it started in (stale ``*.tmp`` files are ``repro
runs gc`` food).  A re-merge of an already merged run is a no-op
load unless forced.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.core.results import (PoolResult, QuestionRecord,
                                metrics_from_records)
from repro.engine.cache import ResponseCache, merge_caches
from repro.engine.telemetry import EngineStats
from repro.errors import RunError
from repro.obs.export import JsonlSpanSink
from repro.obs.history import append_entry, entry_from_result
from repro.obs.jsonl import iter_jsonl
from repro.obs.tracer import Tracer
from repro.runs.driver import CellKey, RunResult, load_run
from repro.runs.ledger import RunLedger
from repro.runs.registry import RunRegistry
from repro.dist.planner import ShardPlan, load_shard_plan
from repro.dist.worker import ShardState, replay_shard


def merge_stats(stats_list: list[EngineStats]) -> EngineStats | None:
    """Aggregate per-shard engine stats into one run-level snapshot.

    Counters sum; wall time is the max (shards ran concurrently) and
    busy time the sum; workers sum across processes.  The latency
    quantiles are record-weighted means of the shard quantiles — an
    approximation (exact quantiles would need the raw histograms),
    which is fine because stats are observability, explicitly outside
    the bit-identical determinism contract.
    """
    stats_list = [stats for stats in stats_list if stats is not None]
    if not stats_list:
        return None
    records = sum(stats.records for stats in stats_list)

    def weighted(attr: str) -> float:
        if records == 0:
            return 0.0
        return sum(getattr(stats, attr) * stats.records
                   for stats in stats_list) / records

    with_latency = [stats for stats in stats_list if stats.records]
    return EngineStats(
        records=records,
        calls=sum(stats.calls for stats in stats_list),
        retries=sum(stats.retries for stats in stats_list),
        faults=sum(stats.faults for stats in stats_list),
        timeouts=sum(stats.timeouts for stats in stats_list),
        cache_hits=sum(stats.cache_hits for stats in stats_list),
        cache_misses=sum(stats.cache_misses for stats in stats_list),
        wall_time_s=max(stats.wall_time_s for stats in stats_list),
        busy_time_s=sum(stats.busy_time_s for stats in stats_list),
        workers=sum(stats.workers for stats in stats_list),
        # Integer nano-dollar sums are associative, so the merged
        # totals are bit-identical to the single-process run's —
        # unlike the latency quantiles, cost is *inside* the
        # determinism contract.
        prompt_tokens=sum(stats.prompt_tokens
                          for stats in stats_list),
        completion_tokens=sum(stats.completion_tokens
                              for stats in stats_list),
        cost_nanos=sum(stats.cost_nanos for stats in stats_list),
        latency_p50_s=weighted("latency_p50_s"),
        latency_p90_s=weighted("latency_p90_s"),
        latency_p99_s=weighted("latency_p99_s"),
        latency_min_s=(min(stats.latency_min_s
                           for stats in with_latency)
                       if with_latency else 0.0),
        latency_max_s=(max(stats.latency_max_s
                           for stats in with_latency)
                       if with_latency else 0.0),
    )


def _fold_records(run_id: str, plan: ShardPlan,
                  states: list[ShardState]
                  ) -> dict[str, dict[int, QuestionRecord]]:
    """Union every shard's records, proving exact disjoint coverage."""
    expected = dict(plan.cells)
    merged: dict[str, dict[int, QuestionRecord]] = {
        cell_id: {} for cell_id, _ in plan.cells}
    for state in states:
        for cell_id, cell in state.cells.items():
            if cell_id not in merged:
                raise RunError(
                    f"shard {state.shard} of run {run_id} recorded "
                    f"cell {cell_id} which is not in the shard plan")
            if cell.expected_n and cell.expected_n != expected[cell_id]:
                raise RunError(
                    f"shard {state.shard} of run {run_id} sized cell "
                    f"{cell_id} at {cell.expected_n} questions but "
                    f"the plan says {expected[cell_id]}")
            bucket = merged[cell_id]
            for index, record in cell.records.items():
                previous = bucket.get(index)
                if previous is not None and previous != record:
                    raise RunError(
                        f"run {run_id} cell {cell_id} question "
                        f"{index} has conflicting records across "
                        f"shards — the shard plan overlapped or a "
                        f"backend is non-deterministic")
                bucket[index] = record
    incomplete = []
    for cell_id, n in plan.cells:
        missing = [i for i in range(n) if i not in merged[cell_id]]
        if missing:
            incomplete.append(f"{cell_id} (missing {len(missing)} of "
                              f"{n})")
    if incomplete:
        preview = "; ".join(incomplete[:4])
        more = (f" and {len(incomplete) - 4} more cells"
                if len(incomplete) > 4 else "")
        raise RunError(
            f"run {run_id} cannot be merged yet: {preview}{more}. "
            f"Resume the unfinished shards first "
            f"(repro runs resume {run_id}).")
    return merged


def _write_merged_ledger(registry: RunRegistry, run_id: str,
                         plan: ShardPlan,
                         merged: dict[str, dict[int, QuestionRecord]],
                         attempt: int,
                         stats: EngineStats | None) -> dict:
    """Emit the sequential event stream to a temp file, then swap it
    into place.  Returns cell id -> metrics."""
    target = registry.ledger_path(run_id)
    handle, tmp = tempfile.mkstemp(dir=target.parent,
                                   suffix=".ledger.tmp")
    os.close(handle)
    cell_metrics: dict[str, object] = {}
    try:
        with RunLedger(tmp, durability="close") as ledger:
            ledger.run_started(run_id, attempt=attempt)
            for cell_id, n in plan.cells:
                ledger.cell_started(cell_id, n)
                records = [merged[cell_id][i] for i in range(n)]
                for index, record in enumerate(records):
                    ledger.record(cell_id, index, record)
                metrics = metrics_from_records(records)
                cell_metrics[cell_id] = metrics
                ledger.cell_finished(cell_id, metrics)
            ledger.run_finished(
                len(plan.cells),
                stats.to_dict() if stats is not None else None)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return cell_metrics


def _merge_spans(registry: RunRegistry, run_id: str,
                 plan: ShardPlan, dataset: str) -> None:
    """Adopt every shard's span log under one top-level ``run`` span.

    Shard span files are read tolerantly (a missing file means the
    shard ran untraced; a torn tail is the usual crash signature) and
    re-homed with :meth:`Tracer.adopt`, so ``repro obs trace``
    renders one tree spanning all K processes.
    """
    target = registry.spans_path(run_id)
    handle, tmp = tempfile.mkstemp(dir=target.parent,
                                   suffix=".spans.tmp")
    os.close(handle)
    try:
        Path(tmp).write_text("", encoding="utf-8")
        sink = JsonlSpanSink(tmp)
        tracer = Tracer(sink=sink)
        with tracer.span("run", run_id=run_id, dataset=dataset,
                         shards=plan.num_shards,
                         merged=True) as run_span:
            for shard in range(plan.num_shards):
                path = registry.shard_spans_path(run_id, shard)
                try:
                    payloads = iter_jsonl(path).payloads
                except OSError:
                    continue
                tracer.adopt(payloads, parent=run_span.span_id)
        sink.close()
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def merge_run(run_id: str,
              registry: RunRegistry | None = None,
              keep_records: bool = True,
              force: bool = False) -> RunResult:
    """Fold a sharded run's K shard ledgers into its run ledger.

    Refuses (with the unfinished cells named) while any planned
    question lacks a record; idempotent once merged — a second call
    is a pure :func:`load_run` unless ``force`` re-merges from the
    shard ledgers (e.g. after restoring a shard from backup).
    """
    registry = registry if registry is not None else RunRegistry()
    request = registry.request(run_id)
    if not force and registry.state(run_id).finished:
        return load_run(run_id, registry=registry,
                        keep_records=keep_records)
    plan = load_shard_plan(registry, run_id)
    states = [replay_shard(registry.shard_ledger_path(run_id, shard),
                           shard)
              for shard in range(plan.num_shards)]
    merged = _fold_records(run_id, plan, states)
    attempt = max([state.attempts for state in states] + [1])
    stats = merge_stats([
        EngineStats.from_dict(state.stats)
        for state in states if state.stats])
    cell_metrics = _write_merged_ledger(registry, run_id, plan,
                                        merged, attempt, stats)
    _merge_spans(registry, run_id, plan, request.dataset)
    append_entry(entry_from_result(
        run_id, request.dataset, cell_metrics, stats=stats,
        attempts=attempt, shards=plan.num_shards), registry)

    cells: dict[CellKey, PoolResult] = {}
    replayed = 0
    for cell_id, n in plan.cells:
        key = CellKey.parse(cell_id)
        if key is None:  # pragma: no cover - planner emits only keys
            continue
        records = tuple(merged[cell_id][i] for i in range(n))
        replayed += n
        cells[key] = PoolResult(
            pool_label=key.pool_label, model=key.model,
            setting=key.setting, metrics=cell_metrics[cell_id],
            records=records if keep_records else ())
    return RunResult(run_id=run_id, request=request, cells=cells,
                     stats=stats, replayed=replayed)


def merge_shard_caches(run_id: str,
                       registry: RunRegistry | None = None,
                       target: str | Path | None = None,
                       capacity: int | None = None) -> ResponseCache:
    """Fold per-shard cache files into one shared cache.

    The pre-existing ``target`` content is merged first (its entries
    win, keeping warm-cache behaviour stable across re-runs), then
    the shard caches in ascending shard order — a deterministic
    first-writer-wins fold with no concurrent writes anywhere.  When
    ``target`` is given the merged cache is also saved there.
    """
    registry = registry if registry is not None else RunRegistry()
    plan = load_shard_plan(registry, run_id)
    caches: list[ResponseCache] = []
    if target is not None and Path(target).exists():
        caches.append(ResponseCache.load(target))
    for shard in range(plan.num_shards):
        path = registry.shard_cache_path(run_id, shard)
        if path.exists():
            caches.append(ResponseCache.load(path))
    merged = merge_caches(caches, capacity=capacity)
    if target is not None:
        merged.save(target)
    return merged
