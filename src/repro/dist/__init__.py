"""``repro.dist`` — sharded distributed runs with deterministic merge.

The subsystem splits one :class:`repro.runs.request.RunRequest` into K
disjoint shards (:mod:`~repro.dist.planner`), executes each shard in
an independent process with its own ledger/spans/heartbeat/cache
(:mod:`~repro.dist.worker`), folds the shard ledgers into a run whose
metrics, records and tables are bit-identical to a single-process run
(:mod:`~repro.dist.merge`), aggregates K liveness signals into one
status (:mod:`~repro.dist.status`), and prunes the leftovers
(:mod:`~repro.dist.gc`).  ``execute_run_sharded`` /
``resume_run_sharded`` (:mod:`~repro.dist.driver`) are the high-level
entry points ``repro run --shards N`` drives.
"""

from repro.dist.driver import execute_run_sharded, resume_run_sharded
from repro.dist.gc import (DEFAULT_MIN_AGE_S, GcCandidate, GcReport,
                           gc_runs)
from repro.dist.merge import (merge_run, merge_shard_caches,
                              merge_stats)
from repro.dist.planner import (ShardPlan, ShardTask, load_shard_plan,
                                partition_tasks, plan_shards,
                                save_shard_plan)
from repro.dist.status import (ShardStatus, render_shard_dashboard,
                               shard_statuses, sharded_run_status,
                               watch_shards)
from repro.dist.worker import (ShardLedger, ShardResult, ShardState,
                               replay_shard, run_shard, shard_entry)

__all__ = [
    "DEFAULT_MIN_AGE_S",
    "GcCandidate",
    "GcReport",
    "ShardLedger",
    "ShardPlan",
    "ShardResult",
    "ShardState",
    "ShardStatus",
    "ShardTask",
    "execute_run_sharded",
    "gc_runs",
    "load_shard_plan",
    "merge_run",
    "merge_shard_caches",
    "merge_stats",
    "partition_tasks",
    "plan_shards",
    "render_shard_dashboard",
    "replay_shard",
    "resume_run_sharded",
    "run_shard",
    "save_shard_plan",
    "shard_entry",
    "shard_statuses",
    "sharded_run_status",
    "watch_shards",
]
