"""Sharded execution: fan a run's shards across worker processes.

``execute_run_sharded`` is ``execute_run``'s fleet-shaped sibling: it
creates the run, persists the shard plan, executes every shard (in a
:class:`~concurrent.futures.ProcessPoolExecutor`, mirroring
``repro.store.parallel`` — or inline with ``procs=0`` for
deterministic single-process tests and non-picklable model
resolvers), and folds the shard ledgers into the top-level run with
:func:`repro.dist.merge.merge_run`.

Failure semantics are deliberately partial-progress-friendly: a shard
that dies does not abort its siblings — the driver lets every shard
finish, then raises one error naming the casualties, because all the
completed work is already durable in the shard ledgers and
``resume_run_sharded`` re-enters only the holes.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.errors import RunError
from repro.runs.driver import (ModelResolver, RunResult,
                               build_request_pools, load_run,
                               plan_cells)
from repro.runs.registry import RunRegistry
from repro.runs.request import RunRequest
from repro.dist.merge import merge_run, merge_shard_caches
from repro.dist.planner import (ShardPlan, load_shard_plan,
                                plan_shards, save_shard_plan)
from repro.dist.worker import run_shard, shard_entry


def _run_shards(registry: RunRegistry, run_id: str, plan: ShardPlan,
                procs: int | None,
                resolve_model: ModelResolver | None,
                durability: str, trace: bool,
                cache_path: str | None) -> tuple[list[str], int]:
    """Execute every shard.

    Returns ``(failure descriptions, questions actually evaluated)``
    — the latter so the driver can report how much fresh model work
    this invocation did versus what it replayed from shard ledgers.

    ``procs=0`` runs the shards inline in this process, one after
    another — the path for tests, debuggers and model resolvers that
    cannot cross a pickle boundary.  Any other value fans out over a
    process pool (``None`` = one process per shard, capped at the
    machine's cores).
    """
    failures: list[str] = []
    evaluated = 0
    if procs == 0:
        for shard in range(plan.num_shards):
            try:
                result = run_shard(run_id, shard, registry=registry,
                                   resolve_model=resolve_model,
                                   plan=plan, durability=durability,
                                   trace=trace,
                                   warm_cache=cache_path)
                evaluated += result.evaluated
            except Exception as exc:
                failures.append(f"shard {shard}: {exc}")
        return failures, evaluated
    if procs is None:
        procs = min(plan.num_shards, os.cpu_count() or 1)
    procs = max(1, procs)
    with ProcessPoolExecutor(max_workers=procs) as executor:
        futures = {
            executor.submit(shard_entry, str(registry.root), run_id,
                            shard, durability, trace, cache_path,
                            resolve_model): shard
            for shard in range(plan.num_shards)}
        for future in as_completed(futures):
            shard = futures[future]
            try:
                evaluated += int(future.result()["evaluated"])
            except Exception as exc:
                failures.append(f"shard {shard}: {exc}")
    return failures, evaluated


def _finish(registry: RunRegistry, run_id: str,
            failures: list[str], evaluated: int, keep_records: bool,
            cache_path: str | None) -> RunResult:
    """Merge (or report the casualties of) one shard sweep."""
    if failures:
        raise RunError(
            f"run {run_id}: {len(failures)} shard(s) failed — "
            + "; ".join(sorted(failures))
            + ". Completed work is durable in the shard ledgers; "
            f"`repro runs resume {run_id}` re-enters only the holes.")
    result = merge_run(run_id, registry=registry,
                       keep_records=keep_records)
    result.evaluated = evaluated
    result.replayed = max(0, result.replayed - evaluated)
    if cache_path is not None:
        merge_shard_caches(run_id, registry=registry,
                           target=cache_path)
    return result


def execute_run_sharded(request: RunRequest, shards: int,
                        registry: RunRegistry | None = None,
                        run_id: str | None = None,
                        procs: int | None = None,
                        resolve_model: ModelResolver | None = None,
                        keep_records: bool = True,
                        durability: str = "cell",
                        trace: bool = True,
                        cache_path: str | None = None) -> RunResult:
    """Run the full sweep as ``shards`` independent workers + merge.

    The returned :class:`RunResult` — metrics, per-question records,
    regenerated tables — is bit-identical to ``execute_run`` of the
    same request (the scaling benchmark gates this).  On worker
    failure the surviving shards' work stays on disk and a single
    :class:`RunError` names the failed shards.

    ``resolve_model`` must be picklable (a module-level function)
    when ``procs != 0``; ``cache_path`` names a shared warm cache
    each worker seeds from and the merged shard caches fold back
    into.
    """
    if shards < 1:
        raise RunError(f"shards must be >= 1, got {shards}")
    registry = registry if registry is not None else RunRegistry()
    # Build pools up front: persists the artifacts, so forked workers
    # load them warm instead of regenerating taxonomies K times.
    pools = build_request_pools(request)
    cells = plan_cells(request, pools)
    if run_id is None:
        run_id = registry.create(request, cells=len(cells))
    plan = plan_shards(request, shards, pools)
    save_shard_plan(registry, run_id, plan)
    failures, evaluated = _run_shards(registry, run_id, plan,
                                      procs, resolve_model,
                                      durability, trace, cache_path)
    return _finish(registry, run_id, failures, evaluated,
                   keep_records, cache_path)


def resume_run_sharded(run_id: str,
                       registry: RunRegistry | None = None,
                       procs: int | None = None,
                       resolve_model: ModelResolver | None = None,
                       keep_records: bool = True,
                       durability: str = "cell",
                       trace: bool = True,
                       cache_path: str | None = None) -> RunResult:
    """Finish an interrupted sharded run, reusing all durable work.

    Every shard is re-entered through :func:`run_shard`, which is
    idempotent — finished shards replay for free, crashed shards
    re-ask only their missing question indices — and the merge runs
    (or re-loads) at the end, so the call converges to the same
    bit-identical result from any crash point, including a crash
    *during a previous merge*.
    """
    registry = registry if registry is not None else RunRegistry()
    if registry.state(run_id).finished:
        return load_run(run_id, registry=registry,
                        keep_records=keep_records)
    plan = load_shard_plan(registry, run_id)
    failures, evaluated = _run_shards(registry, run_id, plan,
                                      procs, resolve_model,
                                      durability, trace, cache_path)
    return _finish(registry, run_id, failures, evaluated,
                   keep_records, cache_path)
