"""Shard planning: split one run request into K disjoint shards.

A shard is a list of :class:`ShardTask`s — ``(cell, start, stop)``
question ranges — that one worker process executes end to end.  The
planner starts from the exact cell list :func:`repro.runs.driver
.plan_cells` produces (so the shard union *is* the single-process
plan), splits any cell larger than the per-shard question target into
ranges, and packs the resulting tasks onto shards with a
longest-processing-time greedy keyed on question count, the best
available cost estimate for simulated and real backends alike.

Two invariants make the downstream merge deterministic and the plan a
durable artifact:

* **Disjoint exact cover** — for every cell, the union of its task
  ranges across all shards is exactly ``[0, n)`` with no overlap
  (property-tested for arbitrary K);
* **Pure function of the request** — the plan depends only on cell
  sizes, which are pure functions of the request, so replanning the
  same request yields the same shards.  The plan is still persisted
  (``shards.json`` next to the manifest, written atomically) because
  workers, merge, status and gc must agree on it even across a
  generator change that would alter pool sizes.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import RunError
from repro.runs.driver import (CellKey, _pool_for, build_request_pools,
                               plan_cells)
from repro.runs.request import RunRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.runs.registry import RunRegistry

#: Bump when the ``shards.json`` layout changes shape.
SHARD_PLAN_VERSION = 1


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One unit of shard work: questions ``[start, stop)`` of a cell.

    ``n`` is the cell's *full* pool size — carried so workers and the
    merge can validate coverage without rebuilding pools, and so a
    generator change that resizes pools is detected instead of
    silently producing a different sweep.
    """

    cell: CellKey
    start: int
    stop: int
    n: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop <= self.n:
            raise RunError(
                f"bad shard task range [{self.start}, {self.stop}) "
                f"for cell of {self.n} questions")

    @property
    def size(self) -> int:
        return self.stop - self.start

    @property
    def indices(self) -> range:
        return range(self.start, self.stop)

    def to_dict(self) -> dict[str, object]:
        return {"cell": self.cell.cell_id, "start": self.start,
                "stop": self.stop, "n": self.n}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardTask":
        cell = CellKey.parse(str(payload["cell"]))
        if cell is None:
            raise RunError(
                f"unparseable cell id in shard plan: "
                f"{payload['cell']!r}")
        return cls(cell=cell, start=int(payload["start"]),
                   stop=int(payload["stop"]), n=int(payload["n"]))


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """K shards plus the original cell order they were cut from.

    ``cells`` is the single-process plan — ``(cell_id, n)`` in
    execution order — which is what the merge walks to reproduce the
    sequential event stream without rebuilding any pool.
    """

    cells: tuple[tuple[str, int], ...]
    shards: tuple[tuple[ShardTask, ...], ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def total_questions(self) -> int:
        return sum(n for _, n in self.cells)

    def tasks(self) -> tuple[ShardTask, ...]:
        """Every task across every shard, shard-major order."""
        return tuple(task for shard in self.shards for task in shard)

    def shard_questions(self, shard: int) -> int:
        """Questions assigned to one shard (its cost estimate)."""
        return sum(task.size for task in self.shards[shard])

    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": SHARD_PLAN_VERSION,
            "shards": self.num_shards,
            "cells": [{"cell": cell_id, "n": n}
                      for cell_id, n in self.cells],
            "tasks": [[task.to_dict() for task in shard]
                      for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardPlan":
        try:
            cells = tuple((str(entry["cell"]), int(entry["n"]))
                          for entry in payload["cells"])
            shards = tuple(
                tuple(ShardTask.from_dict(task) for task in shard)
                for shard in payload["tasks"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RunError(
                f"malformed shard plan payload: {exc}") from exc
        return cls(cells=cells, shards=shards)


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _split_task(task: ShardTask, pieces: int) -> list[ShardTask]:
    """Cut one task into ``pieces`` contiguous near-equal ranges."""
    pieces = max(1, min(pieces, task.size))
    base, extra = divmod(task.size, pieces)
    out: list[ShardTask] = []
    start = task.start
    for piece in range(pieces):
        stop = start + base + (1 if piece < extra else 0)
        out.append(ShardTask(cell=task.cell, start=start, stop=stop,
                             n=task.n))
        start = stop
    return out


def partition_tasks(tasks: list[ShardTask],
                    shards: int) -> tuple[tuple[ShardTask, ...], ...]:
    """Pack tasks onto ``shards`` balanced-by-question-count shards.

    Deterministic: ties break on the tasks' original (cell plan,
    range start) order and on the lowest shard index.  Oversized
    tasks are pre-split to the per-shard target, and the largest
    remaining tasks keep halving until every shard can get work (so
    no shard idles while another owns two cells).
    """
    if shards < 1:
        raise RunError(f"shards must be >= 1, got {shards}")
    order = {id(task): index for index, task in enumerate(tasks)}

    def key(task: ShardTask) -> tuple[int, int]:
        return (order[id(task)], task.start)

    total = sum(task.size for task in tasks)
    target = max(1, math.ceil(total / shards)) if total else 1
    chunks: list[tuple[tuple[int, int], ShardTask]] = []
    for index, task in enumerate(tasks):
        for piece in _split_task(task, math.ceil(task.size / target)):
            chunks.append(((index, piece.start), piece))
    # Guarantee >= shards chunks whenever there are enough questions.
    while (len(chunks) < shards
           and any(piece.size > 1 for _, piece in chunks)):
        at = max(range(len(chunks)),
                 key=lambda i: (chunks[i][1].size, -i))
        key_at, piece = chunks.pop(at)
        for half in _split_task(piece, 2):
            chunks.append(((key_at[0], half.start), half))
    # LPT greedy: largest chunk first onto the least-loaded shard.
    chunks.sort(key=lambda pair: (-pair[1].size, pair[0]))
    loads = [0] * shards
    buckets: list[list[tuple[tuple[int, int], ShardTask]]] = \
        [[] for _ in range(shards)]
    for chunk_key, piece in chunks:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        loads[shard] += piece.size
        buckets[shard].append((chunk_key, piece))
    return tuple(
        tuple(piece for _, piece in sorted(bucket,
                                           key=lambda pair: pair[0]))
        for bucket in buckets)


def plan_shards(request: RunRequest, shards: int,
                pools: dict[str, object] | None = None) -> ShardPlan:
    """Split the request's cell plan into ``shards`` disjoint shards."""
    if shards < 1:
        raise RunError(f"shards must be >= 1, got {shards}")
    if pools is None:
        pools = build_request_pools(request)
    cells = plan_cells(request, pools)
    tasks = []
    ordered: list[tuple[str, int]] = []
    for cell in cells:
        n = len(_pool_for(cell, pools))
        ordered.append((cell.cell_id, n))
        if n > 0:
            tasks.append(ShardTask(cell=cell, start=0, stop=n, n=n))
    return ShardPlan(cells=tuple(ordered),
                     shards=partition_tasks(tasks, shards))


# ----------------------------------------------------------------------
# Persistence (``shards.json`` next to the manifest)
# ----------------------------------------------------------------------
def save_shard_plan(registry: "RunRegistry", run_id: str,
                    plan: ShardPlan) -> Path:
    """Atomically persist the plan inside the run directory."""
    target = registry.shard_plan_path(run_id)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(plan.to_dict(), stream, indent=1)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def load_shard_plan(registry: "RunRegistry", run_id: str) -> ShardPlan:
    """The persisted plan of a sharded run.

    Raises :class:`RunError` when the run was never sharded (or the
    plan file is corrupt) — callers branch on
    :meth:`RunRegistry.shard_count` first when "unsharded" is an
    expected state rather than an error.
    """
    path = registry.shard_plan_path(run_id)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RunError(f"run {run_id} has no shard plan ({path}); "
                       f"it was not executed with --shards") from None
    except (OSError, ValueError) as exc:
        raise RunError(
            f"corrupt shard plan for run {run_id}: {exc}") from exc
    return ShardPlan.from_dict(payload)
