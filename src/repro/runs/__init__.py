"""repro.runs — the durable run ledger.

Benchmark campaigns against slow, flaky endpoints need runs that
survive crashes, resume without repeating paid work, and diff against
each other after the fact.  This package is that layer, sitting
between the experiment drivers and the evaluation runner:

* :class:`RunLedger` / :func:`replay_ledger` — an append-only JSONL
  event log per run (run/cell lifecycle + every scored question),
  with atomic locked appends, tiered fsync durability and a replayer
  that tolerates the torn final line a crash leaves behind;
* :class:`RunRequest` — the frozen description of a sweep, content-
  addressed via the same fingerprint machinery as the dataset store;
* :class:`RunRegistry` — the directory of runs (``REPRO_RUNS_DIR``),
  listable and loadable;
* :func:`execute_run` / :func:`resume_run` / :func:`load_run` —
  run a sweep streaming into the ledger, finish an interrupted run
  bit-identically (only missing question indices are re-asked), or
  rebuild every :class:`repro.core.results.PoolResult` from disk with
  zero model calls;
* :func:`diff_runs` — per-cell metric deltas and per-question answer
  flips between any two runs.

Quickstart::

    >>> from repro.runs import RunRequest, execute_run, load_run
    >>> request = RunRequest(models=("GPT-4",),
    ...                      taxonomy_keys=("ebay",), sample_size=20)
    >>> result = execute_run(request)          # streams to the ledger
    >>> again = load_run(result.run_id)        # zero model calls
    >>> again.matrix() == result.matrix()
    True
"""

from repro.runs.diff import CellDiff, QuestionFlip, RunDiff, diff_runs
from repro.runs.driver import (CellKey, RunResult, coerce_run,
                               create_run, execute_run, load_run,
                               plan_cells)
from repro.runs.heartbeat import (HEARTBEAT_FILENAME, HeartbeatWriter,
                                  pid_alive, read_heartbeat,
                                  run_status)
from repro.runs.ledger import (LEDGER_FILENAME, CellState, RunLedger,
                               RunState, replay_ledger)
from repro.runs.registry import (HISTORY_FILENAME, MANIFEST_FILENAME,
                                 RUNS_ENV, SPANS_FILENAME,
                                 RunRegistry, RunSummary,
                                 default_runs_root)
from repro.runs.request import LEDGER_SCHEMA_VERSION, RunRequest
from repro.runs.resume import resume_run

__all__ = [
    "CellDiff",
    "CellKey",
    "CellState",
    "HEARTBEAT_FILENAME",
    "HISTORY_FILENAME",
    "HeartbeatWriter",
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA_VERSION",
    "MANIFEST_FILENAME",
    "QuestionFlip",
    "RunDiff",
    "RunLedger",
    "RunRegistry",
    "RunRequest",
    "RunResult",
    "RunState",
    "RunSummary",
    "RUNS_ENV",
    "SPANS_FILENAME",
    "coerce_run",
    "create_run",
    "default_runs_root",
    "diff_runs",
    "execute_run",
    "load_run",
    "pid_alive",
    "plan_cells",
    "read_heartbeat",
    "replay_ledger",
    "resume_run",
    "run_status",
]
