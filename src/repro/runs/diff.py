"""Diffing two ledgered runs: metric deltas and answer flips.

``diff_runs(a, b)`` lines two runs up cell by cell (same model, pool
and setting) and reports, for every shared cell, the accuracy / miss
deltas plus the individual questions whose *parsed answer changed* —
the unit of regression a benchmark campaign actually debugs ("which
questions did the new endpoint start getting wrong?").  Cells present
in only one run are listed separately instead of silently dropped.

Both sides load from their ledgers alone, so diffing costs zero model
calls no matter how large the sweeps were.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import Metrics
from repro.engine.telemetry import EngineStats
from repro.runs.driver import CellKey, RunResult, coerce_run
from repro.runs.registry import RunRegistry


@dataclass(frozen=True, slots=True)
class QuestionFlip:
    """One question whose parsed answer differs between the runs."""

    question_uid: str
    parsed_a: str
    parsed_b: str
    expected: str

    @property
    def regression(self) -> bool:
        """True when run A was correct and run B no longer is."""
        return (self.parsed_a == self.expected
                and self.parsed_b != self.expected)

    @property
    def improvement(self) -> bool:
        return (self.parsed_a != self.expected
                and self.parsed_b == self.expected)

    def to_dict(self) -> dict[str, str]:
        return {"question_uid": self.question_uid,
                "parsed_a": self.parsed_a, "parsed_b": self.parsed_b,
                "expected": self.expected}


@dataclass(frozen=True, slots=True)
class CellDiff:
    """One shared cell, compared."""

    key: CellKey
    metrics_a: Metrics
    metrics_b: Metrics
    flips: tuple[QuestionFlip, ...]

    @property
    def accuracy_delta(self) -> float:
        return self.metrics_b.accuracy - self.metrics_a.accuracy

    @property
    def miss_delta(self) -> float:
        return self.metrics_b.miss_rate - self.metrics_a.miss_rate

    @property
    def changed(self) -> bool:
        return bool(self.flips) or self.metrics_a != self.metrics_b

    def as_row(self) -> dict[str, object]:
        return {
            "cell": self.key.cell_id,
            "acc_a": f"{self.metrics_a.accuracy:.3f}",
            "acc_b": f"{self.metrics_b.accuracy:.3f}",
            "d_acc": f"{self.accuracy_delta:+.3f}",
            "miss_a": f"{self.metrics_a.miss_rate:.3f}",
            "miss_b": f"{self.metrics_b.miss_rate:.3f}",
            "d_miss": f"{self.miss_delta:+.3f}",
            "flips": len(self.flips),
            "regressions": sum(1 for flip in self.flips
                               if flip.regression),
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "cell": self.key.cell_id,
            "accuracy_a": self.metrics_a.accuracy,
            "accuracy_b": self.metrics_b.accuracy,
            "accuracy_delta": self.accuracy_delta,
            "miss_a": self.metrics_a.miss_rate,
            "miss_b": self.metrics_b.miss_rate,
            "miss_delta": self.miss_delta,
            "flips": [flip.to_dict() for flip in self.flips],
        }


@dataclass(frozen=True, slots=True)
class RunDiff:
    """Full comparison of two runs."""

    run_a: str
    run_b: str
    cells: tuple[CellDiff, ...]
    only_in_a: tuple[str, ...]
    only_in_b: tuple[str, ...]
    #: Persisted engine snapshots (``None`` for pre-stats ledgers).
    stats_a: EngineStats | None = None
    stats_b: EngineStats | None = None

    @property
    def changed_cells(self) -> tuple[CellDiff, ...]:
        return tuple(cell for cell in self.cells if cell.changed)

    @property
    def total_flips(self) -> int:
        return sum(len(cell.flips) for cell in self.cells)

    @property
    def identical(self) -> bool:
        return (not self.changed_cells and not self.only_in_a
                and not self.only_in_b)

    def perf_summary(self) -> dict[str, float] | None:
        """Wall-clock, throughput and cost deltas, when both runs
        have persisted stats (``None`` otherwise)."""
        if self.stats_a is None or self.stats_b is None:
            return None
        return {
            "wall_a_s": self.stats_a.wall_time_s,
            "wall_b_s": self.stats_b.wall_time_s,
            "wall_delta_s": (self.stats_b.wall_time_s
                             - self.stats_a.wall_time_s),
            "throughput_a": self.stats_a.throughput,
            "throughput_b": self.stats_b.throughput,
            "throughput_delta": (self.stats_b.throughput
                                 - self.stats_a.throughput),
            "cost_a_usd": self.stats_a.cost_usd,
            "cost_b_usd": self.stats_b.cost_usd,
            "cost_delta_usd": (self.stats_b.cost_usd
                               - self.stats_a.cost_usd),
        }

    def rows(self) -> list[dict[str, object]]:
        return [cell.as_row() for cell in self.cells]

    def to_dict(self) -> dict[str, object]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "identical": self.identical,
            "total_flips": self.total_flips,
            "cells": [cell.to_dict() for cell in self.cells],
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
            "perf": self.perf_summary(),
        }


def _flips(result_a, result_b) -> tuple[QuestionFlip, ...]:
    by_uid = {record.question_uid: record
              for record in result_b.records}
    flips = []
    for record in result_a.records:
        other = by_uid.get(record.question_uid)
        if other is None or record.parsed == other.parsed:
            continue
        flips.append(QuestionFlip(
            question_uid=record.question_uid,
            parsed_a=record.parsed.value,
            parsed_b=other.parsed.value,
            expected=record.expected.value))
    return tuple(flips)


def diff_runs(a: "RunResult | str", b: "RunResult | str",
              registry: RunRegistry | None = None) -> RunDiff:
    """Compare two runs (results or registry ids), cell by cell."""
    result_a = coerce_run(a, registry=registry)
    result_b = coerce_run(b, registry=registry)
    cells_a = {key.cell_id: (key, result)
               for key, result in result_a.cells.items()}
    cells_b = {key.cell_id: (key, result)
               for key, result in result_b.cells.items()}
    shared = [cell_id for cell_id in cells_a if cell_id in cells_b]
    diffs = []
    for cell_id in shared:
        key, res_a = cells_a[cell_id]
        _, res_b = cells_b[cell_id]
        diffs.append(CellDiff(
            key=key,
            metrics_a=res_a.metrics,
            metrics_b=res_b.metrics,
            flips=_flips(res_a, res_b)))
    return RunDiff(
        run_a=result_a.run_id,
        run_b=result_b.run_id,
        cells=tuple(diffs),
        only_in_a=tuple(cell_id for cell_id in cells_a
                        if cell_id not in cells_b),
        only_in_b=tuple(cell_id for cell_id in cells_b
                        if cell_id not in cells_a),
        stats_a=result_a.stats,
        stats_b=result_b.stats,
    )
