"""The append-only run ledger: every sweep event, durably, as JSONL.

One ledger file per run.  The writer appends one JSON document per
line — run-started, cell-started, one ``record`` per scored question,
cell-finished with the cell's :class:`Metrics`, run-finished with the
engine's telemetry snapshot — each as a *single* ``write()`` call
under one lock, so concurrent engine workers can never interleave
bytes within a line.  Durability is tiered:

* every append is flushed to the OS immediately (a crashed *process*
  loses nothing that was written);
* ``fsync`` runs at cell boundaries by default (``durability="cell"``)
  so a power loss costs at most one in-flight cell, or on every append
  with ``durability="record"`` when each question must survive the
  machine dying (~190us per append on ext4 — two-thirds of a simulated
  model call — which is why it is opt-in).

The replayer is the inverse: it folds a ledger back into per-cell
state, keying records by question index so out-of-order streaming
(engine workers finish in any order) and resumed attempts (later
events win) both converge to the same state.  A torn final line is the
expected crash signature and is dropped; corruption anywhere else
raises :class:`repro.errors.LedgerCorruptError`.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import Metrics
from repro.core.results import (QuestionRecord, metrics_from_dict,
                                metrics_to_dict, record_from_dict,
                                record_to_dict)
from repro.errors import LedgerCorruptError, RunError
from repro.obs.jsonl import JsonlCorruptError, iter_jsonl

#: File name of the event log inside a run directory.
LEDGER_FILENAME = "ledger.jsonl"

_log = logging.getLogger("repro.runs.ledger")

_DURABILITY_MODES = ("record", "cell", "close")


class RunLedger:
    """Thread-safe append-only JSONL event writer for one run.

    The runner calls :meth:`cell_started` / :meth:`record` /
    :meth:`cell_finished`; the driver brackets them with
    :meth:`run_started` / :meth:`run_finished`.  Any object with these
    five methods can stand in as a ledger sink (the runner is
    duck-typed), but this one is the durable implementation.
    """

    def __init__(self, path: str | Path, durability: str = "cell"):
        if durability not in _DURABILITY_MODES:
            raise RunError(f"durability must be one of "
                           f"{_DURABILITY_MODES}, got {durability!r}")
        self.path = Path(path)
        self.durability = durability
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _append(self, payload: dict, sync: bool = False) -> None:
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                raise RunError("ledger is closed")
            self._file.write(line)
            self._file.flush()
            if sync or self.durability == "record":
                os.fsync(self._file.fileno())

    def _sync_boundary(self) -> bool:
        return self.durability in ("record", "cell")

    # ------------------------------------------------------------------
    def run_started(self, run_id: str, resumed: bool = False,
                    attempt: int = 1) -> None:
        self._append({"event": "run-started", "run_id": run_id,
                      "resumed": resumed, "attempt": attempt,
                      "ts": time.time()}, sync=self._sync_boundary())

    def cell_started(self, cell_id: str, n: int) -> None:
        self._append({"event": "cell-started", "cell": cell_id,
                      "n": n})

    def record(self, cell_id: str, index: int,
               record: QuestionRecord) -> None:
        self._append({"event": "record", "cell": cell_id, "i": index,
                      **record_to_dict(record)})

    def cell_finished(self, cell_id: str, metrics: Metrics) -> None:
        self._append({"event": "cell-finished", "cell": cell_id,
                      **metrics_to_dict(metrics)},
                     sync=self._sync_boundary())

    def run_finished(self, cells: int,
                     stats: dict | None = None) -> None:
        self._append({"event": "run-finished", "cells": cells,
                      "stats": stats, "ts": time.time()},
                     sync=self._sync_boundary())

    def budget_exhausted(self, budget: dict,
                         stats: dict | None = None) -> None:
        """The run stopped at a cell boundary on a spend ceiling.

        Deliberately *not* ``run-finished``: the run stays unfinished
        so ``resume_run`` completes the remaining cells (unbudgeted by
        default) to bytes identical to an uninterrupted run.  Old
        readers skip the event (forward-compatible unknown kind).
        """
        self._append({"event": "budget-exhausted", "budget": budget,
                      "stats": stats, "ts": time.time()},
                     sync=self._sync_boundary())

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            self._closed = True

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class CellState:
    """One cell folded out of the event stream."""

    cell_id: str
    expected_n: int = 0
    records: dict[int, QuestionRecord] = field(default_factory=dict)
    metrics: Metrics | None = None

    @property
    def complete(self) -> bool:
        return self.metrics is not None

    @property
    def partial(self) -> bool:
        return self.metrics is None and bool(self.records)

    def ordered_records(self) -> tuple[QuestionRecord, ...]:
        """Records in question order (raises on holes)."""
        missing = [i for i in range(self.expected_n)
                   if i not in self.records]
        if missing:
            raise RunError(
                f"cell {self.cell_id} is missing record indices "
                f"{missing[:5]}{'...' if len(missing) > 5 else ''}")
        return tuple(self.records[i] for i in range(self.expected_n))


@dataclass
class RunState:
    """Everything a ledger says about a run, after replay."""

    run_id: str | None = None
    cells: dict[str, CellState] = field(default_factory=dict)
    attempts: int = 0
    finished: bool = False
    stats: dict | None = None
    events: int = 0
    #: Last budget-exhausted event's payload (None = never stopped).
    budget: dict | None = None

    @property
    def completed_cells(self) -> int:
        return sum(1 for cell in self.cells.values() if cell.complete)

    @property
    def recorded_questions(self) -> int:
        return sum(len(cell.records) for cell in self.cells.values())


def replay_ledger(path: str | Path) -> RunState:
    """Fold a ledger file into a :class:`RunState`.

    Tolerates a torn final line (the crash signature the ledger is
    built to survive); any earlier undecodable line raises
    :class:`LedgerCorruptError`.  Unknown event types are skipped so
    old readers survive new writers.
    """
    state = RunState()
    try:
        batch = iter_jsonl(path)
    except JsonlCorruptError as exc:
        raise LedgerCorruptError(exc.path, exc.line_number,
                                 exc.reason) from exc
    if batch.torn:
        _log.warning("ledger-torn-line dropped path=%s line=%d",
                     path, batch.torn_line)
    last = len(batch.records) - 1
    for index, (number, event) in enumerate(batch.records):
        try:
            _apply(state, event)
        except (ValueError, KeyError, TypeError) as exc:
            if index == last and not batch.torn:
                # Decoded but unappliable tail: same crash signature.
                _log.warning("ledger-torn-line dropped path=%s "
                             "line=%d", path, number)
                break
            raise LedgerCorruptError(str(path), number,
                                     repr(exc)) from exc
        state.events += 1
    return state


def _apply(state: RunState, event: dict) -> None:
    kind = event["event"]
    if kind == "run-started":
        state.run_id = event["run_id"]
        state.attempts = max(state.attempts, int(event["attempt"]))
        state.finished = False      # a new attempt reopens the run
    elif kind == "cell-started":
        cell = state.cells.setdefault(
            event["cell"], CellState(cell_id=event["cell"]))
        cell.expected_n = int(event["n"])
    elif kind == "record":
        cell = state.cells.setdefault(
            event["cell"], CellState(cell_id=event["cell"]))
        cell.records[int(event["i"])] = record_from_dict(event)
    elif kind == "cell-finished":
        cell = state.cells.setdefault(
            event["cell"], CellState(cell_id=event["cell"]))
        cell.metrics = metrics_from_dict(event)
    elif kind == "run-finished":
        state.finished = True
        state.stats = event.get("stats")
        state.budget = None        # a completed run clears the stop
    elif kind == "budget-exhausted":
        budget = event.get("budget")
        state.budget = budget if isinstance(budget, dict) else {}
        if state.stats is None:
            stats = event.get("stats")
            state.stats = stats if isinstance(stats, dict) else None
    # unknown events: forward-compatible skip
