"""Run heartbeats: a liveness marker next to each run's ledger.

The ledger records *progress*; it cannot distinguish "the process is
between cells" from "the process is gone".  The heartbeat closes that
gap: ``execute_run``/``resume_run`` keep a small ``heartbeat.json``
fresh for the duration of the run (an atomically replaced document
with the writer's pid and a monotonic-enough wall timestamp, rewritten
every interval by a daemon thread), and readers combine three signals
into one status:

* a ``run-finished`` event in the ledger  -> ``finished``;
* no heartbeat, or a heartbeat whose pid is no longer alive
  -> ``crashed``;
* a live pid but neither the heartbeat nor the ledger advancing
  within the stall deadline -> ``stalled``;
* otherwise -> ``running``.

``repro runs list`` derives its status column this way; the live
follower (`repro watch`) uses the same freshness signals but skips
the pid check — a watcher may be on a different host than the run.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path

#: File name of the liveness marker inside a run directory.
HEARTBEAT_FILENAME = "heartbeat.json"

#: Seconds between heartbeat rewrites.
DEFAULT_INTERVAL_S = 1.0

#: How long ledger + heartbeat may both sit still before a run is
#: considered stalled (readers can override per call).
DEFAULT_STALL_DEADLINE_S = 30.0

#: The four states ``repro runs list`` reports.
RUN_STATUSES = ("running", "stalled", "finished", "crashed")


class HeartbeatWriter:
    """Keeps a run's ``heartbeat.json`` fresh from a daemon thread.

    The first beat is written synchronously in the constructor so a
    watcher never observes a started run without a heartbeat; after
    that a daemon thread rewrites the file every ``interval_s``.
    ``close()`` stops the thread and leaves the last document behind
    (its staleness is the crash/stall signal).
    """

    def __init__(self, path: str | Path,
                 interval_s: float = DEFAULT_INTERVAL_S,
                 clock=time.time):
        self.path = Path(path)
        self.interval_s = interval_s
        self._clock = clock
        self._started_ts = clock()
        self._stop = threading.Event()
        self.beat()
        self._thread = threading.Thread(
            target=self._loop, name="repro-heartbeat", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.beat()
            except OSError:  # pragma: no cover - disk gone mid-run
                return

    def beat(self) -> None:
        """Atomically rewrite the heartbeat document."""
        payload = {
            "pid": os.getpid(),
            "ts": self._clock(),
            "started_ts": self._started_ts,
            "interval_s": self.interval_s,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=self.path.parent,
                                       suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "HeartbeatWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_heartbeat(path: str | Path) -> dict | None:
    """The heartbeat document, or ``None`` when absent/unreadable.

    An unreadable file is treated as absent: the heartbeat is a
    liveness hint, never load-bearing state.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "ts" not in payload:
        return None
    return payload


def pid_alive(pid: object) -> bool:
    """True when ``pid`` names a live process on this host."""
    try:
        pid = int(pid)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - platform oddities
        return False
    return True


def run_status(finished: bool, heartbeat: dict | None,
               progress_ts: float | None, now: float | None = None,
               stall_deadline_s: float = DEFAULT_STALL_DEADLINE_S
               ) -> str:
    """Fold the three liveness signals into one registry status.

    ``progress_ts`` is the last time the run's ledger (or span log)
    visibly advanced — typically the file mtime; ``None`` when the
    run never wrote an event.
    """
    if finished:
        return "finished"
    if heartbeat is None or not pid_alive(heartbeat.get("pid")):
        return "crashed"
    now = time.time() if now is None else now
    freshest = max(float(heartbeat["ts"]),
                   progress_ts if progress_ts is not None else 0.0)
    if now - freshest > stall_deadline_s:
        return "stalled"
    return "running"
