"""The run request: everything that determines a sweep's results.

A :class:`RunRequest` is the durable description of one benchmark
sweep — which models, which taxonomies, which dataset and prompting
settings, at what sample size, seed and template variant, through
which engine shape.  It is what the manifest persists, what the
fingerprint hashes, and what resume replans from; because pools and
the simulated models are pure functions of these fields, two
executions of the same request produce bit-identical records.

The fingerprint reuses :func:`repro.store.fingerprint.code_fingerprint`
so that a change to the generation path (which would change the
questions themselves) lands new runs under a new identity instead of
silently diffing incomparable sweeps against each other.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.errors import RunError
from repro.llm.prompting import PromptSetting
from repro.questions.model import DatasetKind
from repro.store.fingerprint import code_fingerprint

#: Bump when the manifest / ledger event layout changes shape.
LEDGER_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class RunRequest:
    """One sweep, fully described.

    ``per_level`` switches the cell space from one level-combined pool
    per taxonomy (Tables 5-7) to one pool per question level
    (Figure 3).  ``workers``/``retries`` describe the engine the run
    is meant to execute under; they cannot change the results (the
    scheduler is deterministic) but they are part of the run's
    identity so a manifest fully reproduces the original invocation.
    """

    dataset: str = DatasetKind.HARD.value
    models: tuple[str, ...] = ("GPT-4",)
    taxonomy_keys: tuple[str, ...] = ("ebay",)
    settings: tuple[str, ...] = (PromptSetting.ZERO_SHOT.value,)
    sample_size: int | None = None
    seed: str = ""
    variant: int = 0
    per_level: bool = False
    workers: int = 1
    retries: int = 3
    batch_size: int = 1
    coalesce: bool = False
    #: Capture per-question provenance trails (repro.obs.trail) and
    #: stamp them onto every ledger record.  Cannot change the scored
    #: payload, but changes the ledger bytes — so it is part of the
    #: fingerprint like every other invocation knob.
    trail: bool = False
    #: Spend ceilings enforced at cell boundaries (None = unlimited).
    #: Like the engine shape they cannot change a completed cell's
    #: results — only where the run stops — but they are part of the
    #: fingerprint so the manifest reproduces the invocation.
    max_cost_usd: float | None = None
    max_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.dataset not in {kind.value for kind in DatasetKind}:
            raise RunError(f"unknown dataset kind: {self.dataset!r}")
        bad = [s for s in self.settings
               if s not in {s.value for s in PromptSetting}]
        if bad or not self.settings:
            raise RunError(f"bad prompt settings: {bad!r}")
        if not self.models or not self.taxonomy_keys:
            raise RunError("a run needs >= 1 model and >= 1 taxonomy")
        if self.workers < 1:
            raise RunError("workers must be at least 1")
        if self.batch_size < 1:
            raise RunError("batch_size must be at least 1")
        if self.max_cost_usd is not None and self.max_cost_usd <= 0:
            raise RunError("max_cost_usd must be positive when set")
        if self.max_tokens is not None and self.max_tokens <= 0:
            raise RunError("max_tokens must be positive when set")

    # ------------------------------------------------------------------
    @property
    def dataset_kind(self) -> DatasetKind:
        return DatasetKind(self.dataset)

    def fingerprint(self) -> str:
        """Content-address of the request (includes generator code)."""
        material = "|".join((
            f"schema={LEDGER_SCHEMA_VERSION}",
            f"code={code_fingerprint()}",
            f"dataset={self.dataset}",
            f"models={','.join(self.models)}",
            f"taxonomies={','.join(self.taxonomy_keys)}",
            f"settings={','.join(self.settings)}",
            f"sample={'cochran' if self.sample_size is None else self.sample_size}",
            f"seed={self.seed}",
            f"variant={self.variant}",
            f"per_level={int(self.per_level)}",
            f"workers={self.workers}",
            f"retries={self.retries}",
            f"batch={self.batch_size}",
            f"coalesce={int(self.coalesce)}",
            f"trail={int(self.trail)}",
            f"max_cost={self.max_cost_usd}",
            f"max_tokens={self.max_tokens}",
        ))
        return hashlib.sha256(material.encode()).hexdigest()[:24]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "dataset": self.dataset,
            "models": list(self.models),
            "taxonomy_keys": list(self.taxonomy_keys),
            "settings": list(self.settings),
            "sample_size": self.sample_size,
            "seed": self.seed,
            "variant": self.variant,
            "per_level": self.per_level,
            "workers": self.workers,
            "retries": self.retries,
            "batch_size": self.batch_size,
            "coalesce": self.coalesce,
            "trail": self.trail,
            "max_cost_usd": self.max_cost_usd,
            "max_tokens": self.max_tokens,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRequest":
        try:
            return cls(
                dataset=payload["dataset"],
                models=tuple(payload["models"]),
                taxonomy_keys=tuple(payload["taxonomy_keys"]),
                settings=tuple(payload["settings"]),
                sample_size=payload.get("sample_size"),
                seed=payload.get("seed", ""),
                variant=payload.get("variant", 0),
                per_level=payload.get("per_level", False),
                workers=payload.get("workers", 1),
                retries=payload.get("retries", 3),
                batch_size=payload.get("batch_size", 1),
                coalesce=payload.get("coalesce", False),
                trail=payload.get("trail", False),
                max_cost_usd=payload.get("max_cost_usd"),
                max_tokens=payload.get("max_tokens"),
            )
        except (KeyError, TypeError) as exc:
            raise RunError(
                f"malformed run-request payload: {exc}") from exc

    def with_engine(self, workers: int, retries: int,
                    batch_size: int | None = None,
                    coalesce: bool | None = None) -> "RunRequest":
        """The same sweep under a different engine shape (resume)."""
        return replace(
            self, workers=workers, retries=retries,
            batch_size=(self.batch_size if batch_size is None
                        else batch_size),
            coalesce=self.coalesce if coalesce is None else coalesce)
