"""Crash-safe resume: finish an interrupted run without repeating work.

``resume_run`` replays the run's ledger, then walks the request's cell
plan in the same deterministic order the original execution used:

* a cell with a ``cell-finished`` event is decoded straight from the
  ledger — zero model calls;
* a cell with records but no seal (the crash point) is *re-entered at
  the exact question indices that are missing*: the engine may have
  completed indices out of order before dying, so the holes are an
  arbitrary subset, and only they are re-asked;
* a cell the first attempt never reached runs in full.

Because pools, prompts and the simulated backends are pure functions
of the request, the merged records — part decoded, part freshly asked
— are bit-identical to an uninterrupted run's, at any worker count.
The resumed attempt appends to the *same* ledger (a ``run-started``
event with an incremented attempt count marks the seam), so the file
remains the complete, append-only history of the run.
"""

from __future__ import annotations

import time

from repro.core.results import PoolResult
from repro.core.runner import EvaluationRunner
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import Telemetry
from repro.errors import RunError
from repro.llm.prompting import PromptSetting
from repro.llm.registry import get_model
from repro.obs.export import JsonlSpanSink
from repro.obs.history import append_entry, entry_from_result
from repro.obs.tracer import NullTracer, Tracer
from repro.runs.driver import (CellKey, ModelResolver, RunResult,
                               _build_engine, _pool_for,
                               _resolve_tracer, build_request_pools,
                               plan_cells)
from repro.runs.heartbeat import HeartbeatWriter
from repro.runs.ledger import RunLedger
from repro.runs.registry import RunRegistry


def resume_run(run_id: str,
               registry: RunRegistry | None = None,
               engine: EvaluationEngine | None = None,
               resolve_model: ModelResolver | None = None,
               keep_records: bool = True,
               durability: str = "cell",
               tracer: "Tracer | NullTracer | None" = None,
               trace: bool = True) -> RunResult:
    """Complete ``run_id``, reusing every record already on disk.

    Resuming an already finished run degenerates to a pure ledger
    load (zero model calls), so the call is idempotent.  A run halted
    by a spend ceiling (``budget-exhausted`` in the ledger) resumes
    through the exact same paths — and deliberately *without*
    re-applying the ceiling, so the completed result is bit-identical
    to an unbudgeted run.  The resumed
    attempt's spans append to the run's existing ``spans.jsonl`` (its
    ``run`` span carries ``resumed``/``attempt`` attributes), exactly
    as its ledger events append to the existing ledger.
    """
    registry = registry if registry is not None else RunRegistry()
    resolve = resolve_model if resolve_model is not None else get_model
    request = registry.request(run_id)
    state = registry.state(run_id)
    pools = build_request_pools(request)
    cells = plan_cells(request, pools)
    if engine is None:
        engine = _build_engine(request)
    tracer = _resolve_tracer(tracer, trace)
    if (engine is not None and tracer.enabled
            and not engine.tracer.enabled):
        engine.tracer = tracer
    telemetry = Telemetry() if engine is None else None
    sink = None
    if tracer.enabled and tracer.sink is None:
        sink = JsonlSpanSink(registry.spans_path(run_id))
        tracer.sink = sink

    results: dict[CellKey, PoolResult] = {}
    evaluated = 0
    replayed = 0
    resumed_cells: list[str] = []
    heartbeat = HeartbeatWriter(registry.heartbeat_path(run_id))
    try:
        with RunLedger(registry.ledger_path(run_id),
                       durability=durability) as ledger:
            ledger.run_started(run_id, resumed=True,
                               attempt=state.attempts + 1)
            runner = EvaluationRunner(variant=request.variant,
                                      keep_records=keep_records,
                                      engine=engine, ledger=ledger,
                                      tracer=tracer,
                                      telemetry=telemetry,
                                      trail=request.trail)
            started = time.perf_counter()
            with tracer.span("run", run_id=run_id,
                             dataset=request.dataset,
                             workers=request.workers, resumed=True,
                             attempt=state.attempts + 1):
                for cell in cells:
                    pool = _pool_for(cell, pools)
                    cell_state = state.cells.get(cell.cell_id)
                    setting = PromptSetting(cell.setting)
                    if cell_state is not None and cell_state.complete:
                        if cell_state.expected_n != len(pool):
                            raise RunError(
                                f"cell {cell.cell_id} recorded "
                                f"{cell_state.expected_n} questions "
                                f"but the request now plans "
                                f"{len(pool)} — the run predates a "
                                f"generator change and cannot be "
                                f"resumed")
                        records = cell_state.ordered_records()
                        replayed += len(records)
                        results[cell] = PoolResult(
                            pool_label=cell.pool_label,
                            model=cell.model,
                            setting=cell.setting,
                            metrics=cell_state.metrics,
                            records=records if keep_records else (),
                        )
                        continue
                    model = resolve(cell.model)
                    if cell_state is not None and cell_state.records:
                        done = {
                            index: record
                            for index, record
                            in cell_state.records.items()
                            if 0 <= index < len(pool)}
                        resumed_cells.append(cell.cell_id)
                        replayed += len(done)
                        evaluated += len(pool) - len(done)
                        results[cell] = runner.complete_cell(
                            model, pool, setting, done)
                    else:
                        evaluated += len(pool)
                        results[cell] = runner.evaluate(model, pool,
                                                        setting)
            if telemetry is not None:
                telemetry.record_run(
                    time.perf_counter() - started, 1)
            stats = (engine.stats() if engine is not None
                     else telemetry.snapshot())
            ledger.run_finished(len(cells), stats.to_dict())
        append_entry(entry_from_result(
            run_id, request.dataset,
            {key.cell_id: result.metrics
             for key, result in results.items()},
            stats=stats, attempts=state.attempts + 1), registry)
    finally:
        heartbeat.close()
        if sink is not None:
            tracer.sink = None
            sink.close()
    return RunResult(run_id=run_id, request=request, cells=results,
                     stats=stats, evaluated=evaluated,
                     replayed=replayed,
                     resumed_cells=tuple(resumed_cells))
