"""The run registry: a directory of content-addressed run directories.

Layout: ``<root>/<fingerprint12>-<seq>/`` with two files per run —
``manifest.json`` (the frozen :class:`RunRequest`, its fingerprint and
creation time; written atomically via temp file + ``os.replace``) and
``ledger.jsonl`` (the append-only event log).  The fingerprint covers
the full run request plus the generator code fingerprint, so runs of
different sweeps — or of the same sweep across a generator change —
can never collide; the ``-<seq>`` suffix separates repeated runs of
the identical request.

``REPRO_RUNS_DIR`` relocates the default root (the tests point it at
a per-session scratch directory).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import RunError, UnknownRunError
from repro.runs.heartbeat import (DEFAULT_STALL_DEADLINE_S,
                                  HEARTBEAT_FILENAME, read_heartbeat,
                                  run_status)
from repro.runs.ledger import (LEDGER_FILENAME, RunState, replay_ledger)
from repro.runs.request import LEDGER_SCHEMA_VERSION, RunRequest

#: Environment override for the default registry root.
RUNS_ENV = "REPRO_RUNS_DIR"

MANIFEST_FILENAME = "manifest.json"

#: File name of the span log inside a run directory.
SPANS_FILENAME = "spans.jsonl"

#: File name of the cross-run metric time series in the registry root.
HISTORY_FILENAME = "history.jsonl"

#: File name of the shard plan inside a sharded run directory.
SHARD_PLAN_FILENAME = "shards.json"

#: Directory of per-shard state inside a sharded run directory.
SHARDS_DIRNAME = "shards"


def default_runs_root() -> Path:
    value = os.environ.get(RUNS_ENV)
    if value:
        return Path(value)
    return Path.home() / ".cache" / "repro-taxoglimpse" / "runs"


@dataclass(frozen=True, slots=True)
class RunSummary:
    """One registry listing row (``repro runs list``)."""

    run_id: str
    dataset: str
    models: int
    taxonomies: int
    settings: str
    sample_size: int | None
    per_level: bool
    cells_total: int
    cells_done: int
    questions: int
    finished: bool
    created_at: float
    #: Live status (``running``/``stalled``/``finished``/``crashed``,
    #: plus ``unmerged`` for sharded runs whose workers all finished,
    #: and ``invalid`` for undecodable run directories) derived from
    #: the heartbeat + the run-finished event.
    status: str = "crashed"
    #: Shard fan-out (0 = unsharded single-process run).
    shards: int = 0
    #: Accumulated spend from the run's persisted stats snapshot
    #: (0 for ledgers predating cost metering or still-running runs).
    cost_nanos: int = 0

    @property
    def cost_usd(self) -> float:
        return self.cost_nanos / 1e9

    def as_row(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "dataset": self.dataset,
            "models": self.models,
            "taxonomies": self.taxonomies,
            "settings": self.settings,
            "sample": ("cochran" if self.sample_size is None
                       else self.sample_size),
            "per_level": "yes" if self.per_level else "no",
            "cells": f"{self.cells_done}/{self.cells_total}",
            "questions": self.questions,
            "shards": self.shards if self.shards else "-",
            "cost_usd": f"{self.cost_usd:.4f}",
            "status": self.status,
        }

    def to_dict(self) -> dict[str, object]:
        """Machine-readable listing entry (``runs list --json``)."""
        return {
            "run_id": self.run_id,
            "dataset": self.dataset,
            "models": self.models,
            "taxonomies": self.taxonomies,
            "settings": self.settings.split(","),
            "sample_size": self.sample_size,
            "per_level": self.per_level,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "questions": self.questions,
            "finished": self.finished,
            "status": self.status,
            "shards": self.shards,
            "cost_nanos": self.cost_nanos,
            "cost_usd": self.cost_usd,
            "created_at": self.created_at,
        }


class RunRegistry:
    """Create, enumerate and load ledgered runs under one root."""

    def __init__(self, root: str | Path | None = None):
        self.root = (Path(root) if root is not None
                     else default_runs_root())

    # ------------------------------------------------------------------
    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def ledger_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / LEDGER_FILENAME

    def manifest_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / MANIFEST_FILENAME

    def spans_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / SPANS_FILENAME

    def heartbeat_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / HEARTBEAT_FILENAME

    def history_path(self) -> Path:
        """The registry-wide cross-run metric time series."""
        return self.root / HISTORY_FILENAME

    # ------------------------------------------------------------------
    # Sharded run layout (``repro.dist``)
    # ------------------------------------------------------------------
    def shard_plan_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / SHARD_PLAN_FILENAME

    def shards_dir(self, run_id: str) -> Path:
        return self.run_dir(run_id) / SHARDS_DIRNAME

    def shard_dir(self, run_id: str, shard: int) -> Path:
        return self.shards_dir(run_id) / f"shard-{shard:02d}"

    def shard_ledger_path(self, run_id: str, shard: int) -> Path:
        return self.shard_dir(run_id, shard) / LEDGER_FILENAME

    def shard_spans_path(self, run_id: str, shard: int) -> Path:
        return self.shard_dir(run_id, shard) / SPANS_FILENAME

    def shard_heartbeat_path(self, run_id: str, shard: int) -> Path:
        return self.shard_dir(run_id, shard) / HEARTBEAT_FILENAME

    def shard_cache_path(self, run_id: str, shard: int) -> Path:
        return self.shard_dir(run_id, shard) / "cache.json"

    def shard_count(self, run_id: str) -> int:
        """Planned shard fan-out (0 = unsharded; corrupt plan = 0).

        Cheap existence-plus-header probe for listings — use
        :func:`repro.dist.planner.load_shard_plan` when the full plan
        (with strict corruption errors) is needed.
        """
        path = self.shard_plan_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return max(0, int(payload["shards"]))
        except (OSError, ValueError, KeyError, TypeError):
            return 0

    # ------------------------------------------------------------------
    def create(self, request: RunRequest, cells: int) -> str:
        """Allocate a run directory and persist its manifest.

        The run id is ``<request fingerprint[:12]>-<seq>``; the seq
        suffix is claimed with an exclusive ``mkdir`` so two
        concurrent creators of the same request get distinct runs.
        """
        prefix = request.fingerprint()[:12]
        self.root.mkdir(parents=True, exist_ok=True)
        for seq in range(1, 10_000):
            run_id = f"{prefix}-{seq:02d}"
            try:
                self.run_dir(run_id).mkdir(parents=True,
                                           exist_ok=False)
            except FileExistsError:
                continue
            self._write_manifest(run_id, request, cells)
            return run_id
        raise RunError(  # pragma: no cover - 10k reruns of one sweep
            f"run id space exhausted for fingerprint {prefix}")

    def _write_manifest(self, run_id: str, request: RunRequest,
                        cells: int) -> None:
        payload = {
            "format_version": LEDGER_SCHEMA_VERSION,
            "run_id": run_id,
            "fingerprint": request.fingerprint(),
            "created_at": time.time(),
            "cells": cells,
            "request": request.to_dict(),
        }
        target = self.manifest_path(run_id)
        handle, tmp = tempfile.mkstemp(dir=target.parent,
                                       suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, indent=1)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def manifest(self, run_id: str) -> dict:
        """The run's manifest document.

        Reads without a prior existence probe: a run directory swept
        away between the probe and the read (``runs gc`` racing a
        lister) must surface as :class:`UnknownRunError`, never as an
        unhandled ``FileNotFoundError``.
        """
        path = self.manifest_path(run_id)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise UnknownRunError(run_id, str(self.root)) from None
        except OSError as exc:
            raise RunError(
                f"unreadable manifest for run {run_id!r}: "
                f"{exc}") from exc
        try:
            return json.loads(text)
        except ValueError as exc:
            raise RunError(
                f"corrupt manifest for run {run_id!r}: {exc}") from exc

    def request(self, run_id: str) -> RunRequest:
        return RunRequest.from_dict(self.manifest(run_id)["request"])

    def state(self, run_id: str) -> RunState:
        """Replay the run's ledger (empty state if never started)."""
        if not self.manifest_path(run_id).exists():
            raise UnknownRunError(run_id, str(self.root))
        path = self.ledger_path(run_id)
        try:
            return replay_ledger(path)
        except FileNotFoundError:
            # Never started, or the run vanished mid-read (gc race);
            # either way the ledger says nothing about the run.
            return RunState(run_id=run_id)

    # ------------------------------------------------------------------
    def list_ids(self) -> list[str]:
        try:
            return sorted(
                entry.name for entry in self.root.iterdir()
                if entry.is_dir()
                and (entry / MANIFEST_FILENAME).exists())
        except FileNotFoundError:
            return []

    def orphan_dirs(self) -> list[Path]:
        """Run directories without a manifest (crashed mid-create).

        These are invisible to :meth:`list_ids` — a ``create`` that
        died between its exclusive ``mkdir`` and the manifest write
        leaves one behind — and are what ``repro runs gc`` prunes.
        """
        try:
            return sorted(
                entry for entry in self.root.iterdir()
                if entry.is_dir()
                and not (entry / MANIFEST_FILENAME).exists())
        except FileNotFoundError:
            return []

    def list_runs(self) -> list[RunSummary]:
        """Summaries for every run, oldest first.

        The scan is a *consistent snapshot* under concurrent writers:
        a run directory that disappears between enumeration and
        decode (``runs gc``, a worker shuffling shard dirs) is simply
        skipped, while one that cannot be decoded (corrupt manifest
        or ledger — e.g. a creator crashed mid-write, or the disk
        lied) is *flagged* as an ``invalid`` row.  Neither case may
        poison the whole listing with an exception.
        """
        summaries = []
        for run_id in self.list_ids():
            try:
                summaries.append(self.summary(run_id))
            except UnknownRunError:
                continue                 # vanished mid-scan
            except RunError:
                summaries.append(RunSummary(
                    run_id=run_id, dataset="?", models=0, taxonomies=0,
                    settings="", sample_size=None, per_level=False,
                    cells_total=0, cells_done=0, questions=0,
                    finished=False, created_at=0.0, status="invalid"))
        return sorted(summaries,
                      key=lambda s: (s.created_at, s.run_id))

    def progress_ts(self, run_id: str) -> float | None:
        """Last time the run's ledger or span log visibly advanced."""
        latest: float | None = None
        for path in (self.ledger_path(run_id),
                     self.spans_path(run_id)):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            latest = mtime if latest is None else max(latest, mtime)
        return latest

    def status(self, run_id: str, finished: bool | None = None,
               stall_deadline_s: float = DEFAULT_STALL_DEADLINE_S
               ) -> str:
        """Live status of one run (heartbeat + run-finished event).

        For a sharded run that has not been merged yet, the top-level
        ledger and heartbeat do not exist — the truth lives in the K
        shard directories, so status aggregation is delegated to
        ``repro.dist`` (call-time import: ``dist`` imports ``runs`` at
        module level, so this direction must stay lazy).
        """
        if finished is None:
            finished = self.state(run_id).finished
        if not finished and self.shard_count(run_id) > 0:
            from repro.dist.status import sharded_run_status
            return sharded_run_status(
                run_id, registry=self,
                stall_deadline_s=stall_deadline_s)
        return run_status(
            finished, read_heartbeat(self.heartbeat_path(run_id)),
            self.progress_ts(run_id),
            stall_deadline_s=stall_deadline_s)

    def summary(self, run_id: str) -> RunSummary:
        manifest = self.manifest(run_id)
        request = RunRequest.from_dict(manifest["request"])
        state = self.state(run_id)
        # A budget stop is a deliberate pause, not a crash: the
        # heartbeat is gone but the ledger says why.
        if state.budget and not state.finished:
            status = "budget-stopped"
        else:
            status = self.status(run_id, finished=state.finished)
        return RunSummary(
            run_id=run_id,
            dataset=request.dataset,
            models=len(request.models),
            taxonomies=len(request.taxonomy_keys),
            settings=",".join(request.settings),
            sample_size=request.sample_size,
            per_level=request.per_level,
            cells_total=int(manifest.get("cells", 0)),
            cells_done=state.completed_cells,
            questions=state.recorded_questions,
            finished=state.finished,
            created_at=float(manifest.get("created_at", 0.0)),
            status=status,
            shards=self.shard_count(run_id),
            cost_nanos=int((state.stats or {}).get("cost_nanos", 0)),
        )
