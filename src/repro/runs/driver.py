"""Executing, loading and resuming ledgered runs.

``execute_run`` is the durable counterpart of
``TaxoGlimpse.run_table``: it plans the request's cell list (one cell
per model x pool x setting, in a deterministic order), opens the run's
ledger, and drives every cell through an
:class:`repro.core.runner.EvaluationRunner` whose ledger sink streams
each scored question to disk as it completes.  ``load_run`` is the
inverse — it rebuilds every completed cell's :class:`PoolResult` from
the ledger alone, with zero model calls, which is what makes a
finished sweep free to re-report and cheap to diff.
"""

from __future__ import annotations

import re
import time
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from repro.core.results import PoolResult
from repro.core.runner import EvaluationRunner
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry
from repro.errors import RunError
from repro.llm.base import ChatModel
from repro.llm.prompting import PromptSetting
from repro.llm.registry import get_model
from repro.core.metrics import Metrics
from repro.obs.cost import BudgetGuard, BudgetStop
from repro.obs.export import JsonlSpanSink
from repro.obs.history import append_entry, entry_from_result
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.questions.model import DatasetKind, level_label
from repro.questions.pools import QuestionPool, build_pools
from repro.runs.heartbeat import HeartbeatWriter
from repro.runs.ledger import RunLedger
from repro.runs.registry import RunRegistry
from repro.runs.request import RunRequest

#: ``level N-M`` / ``level N-root`` scope suffix of per-level pools.
_LEVEL_SCOPE = re.compile(r"^level (\d+)-")

ModelResolver = Callable[[str], ChatModel]


@dataclass(frozen=True, slots=True)
class CellKey:
    """Identity of one sweep cell: model x pool x setting."""

    model: str
    taxonomy_key: str
    dataset: str
    setting: str
    level: int | None = None

    @property
    def scope(self) -> str:
        return "total" if self.level is None else level_label(self.level)

    @property
    def pool_label(self) -> str:
        return f"{self.taxonomy_key}/{self.dataset}/{self.scope}"

    @property
    def cell_id(self) -> str:
        """The ledger's cell identifier (model|pool label|setting)."""
        return f"{self.model}|{self.pool_label}|{self.setting}"

    @classmethod
    def parse(cls, cell_id: str) -> "CellKey | None":
        """Inverse of :attr:`cell_id`; ``None`` for ad-hoc labels."""
        parts = cell_id.split("|")
        if len(parts) != 3:
            return None
        model, label, setting = parts
        label_parts = label.split("/")
        if len(label_parts) != 3:
            return None
        taxonomy_key, dataset, scope = label_parts
        if scope == "total":
            level = None
        else:
            match = _LEVEL_SCOPE.match(scope)
            if match is None:
                return None
            level = int(match.group(1))
        return cls(model=model, taxonomy_key=taxonomy_key,
                   dataset=dataset, setting=setting, level=level)


@dataclass
class RunResult:
    """Outcome of one executed, resumed or loaded run."""

    run_id: str
    request: RunRequest
    cells: dict[CellKey, PoolResult]
    stats: EngineStats | None = None
    #: Questions actually sent to a model by this invocation.
    evaluated: int = 0
    #: Questions served from the ledger by this invocation.
    replayed: int = 0
    #: Cells this invocation re-entered partway (resume only).
    resumed_cells: tuple[str, ...] = field(default=())
    #: Budget-stop payload when a spend ceiling halted the run early
    #: (see :class:`repro.obs.cost.BudgetStop`); ``None`` = ran to
    #: completion.
    budget: dict | None = None

    def matrix(self, setting: str | None = None
               ) -> dict[tuple[str, str], Metrics]:
        """(model, taxonomy) -> metrics over level-combined cells."""
        wanted = setting or self.request.settings[0]
        return {(key.model, key.taxonomy_key): result.metrics
                for key, result in self.cells.items()
                if key.level is None and key.setting == wanted}

    def level_metrics(self, setting: str | None = None
                      ) -> dict[tuple[str, str, int], Metrics]:
        """(model, taxonomy, level) -> metrics over per-level cells."""
        wanted = setting or self.request.settings[0]
        return {(key.model, key.taxonomy_key, key.level): result.metrics
                for key, result in self.cells.items()
                if key.level is not None and key.setting == wanted}


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_cells(request: RunRequest,
               pools: dict[str, object] | None = None
               ) -> list[CellKey]:
    """The request's cell list, in deterministic execution order."""
    if pools is None:
        pools = build_request_pools(request)
    cells: list[CellKey] = []
    for model in request.models:
        for key in request.taxonomy_keys:
            levels = (pools[key].question_levels if request.per_level
                      else [None])
            for setting in request.settings:
                for level in levels:
                    cells.append(CellKey(
                        model=model, taxonomy_key=key,
                        dataset=request.dataset, setting=setting,
                        level=level))
    return cells


def build_request_pools(request: RunRequest) -> dict[str, object]:
    """Question pools per taxonomy (served from the artifact store)."""
    return {key: build_pools(key, sample_size=request.sample_size,
                             seed=request.seed)
            for key in request.taxonomy_keys}


def _pool_for(cell: CellKey, pools: dict[str, object]) -> QuestionPool:
    taxonomy_pools = pools[cell.taxonomy_key]
    kind = DatasetKind(cell.dataset)
    if cell.level is None:
        return taxonomy_pools.total_pool(kind)
    return taxonomy_pools.level_pool(cell.level, kind)


def _build_engine(request: RunRequest) -> EvaluationEngine | None:
    """Engine matching the request's shape (``None`` = sequential).

    Batching or coalescing forces an engine even at one worker — both
    live in the engine's middleware stack, and the batched path needs
    the engine's widened fan-out pool to fill batches.
    """
    if (request.workers <= 1 and request.batch_size <= 1
            and not request.coalesce):
        return None
    config = EngineConfig(
        max_workers=request.workers,
        retry=RetryPolicy(retries=max(0, request.retries)),
        batch_size=request.batch_size,
        coalesce=request.coalesce,
        trail=request.trail)
    return EvaluationEngine(config)


def _spent_since(engine: EvaluationEngine | None,
                 telemetry: Telemetry | None,
                 base: EngineStats | None) -> EngineStats:
    """Live stats net of ``base`` (a reused engine keeps counting
    across runs; the budget guard must see only *this* run's spend)."""
    live = (engine.stats() if engine is not None
            else telemetry.snapshot())
    if base is None:
        return live
    return replace(
        live,
        prompt_tokens=live.prompt_tokens - base.prompt_tokens,
        completion_tokens=(live.completion_tokens
                           - base.completion_tokens),
        cost_nanos=live.cost_nanos - base.cost_nanos)


def _resolve_tracer(tracer: "Tracer | NullTracer | None",
                    trace: bool) -> "Tracer | NullTracer":
    """Explicit tracer wins; else a fresh one (or the no-op)."""
    if tracer is not None:
        return tracer
    return Tracer() if trace else NULL_TRACER


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def create_run(request: RunRequest,
               registry: RunRegistry | None = None) -> str:
    """Plan the request and allocate its run directory + manifest."""
    registry = registry if registry is not None else RunRegistry()
    pools = build_request_pools(request)
    return registry.create(request, cells=len(plan_cells(request,
                                                         pools)))


def execute_run(request: RunRequest,
                registry: RunRegistry | None = None,
                run_id: str | None = None,
                engine: EvaluationEngine | None = None,
                resolve_model: ModelResolver | None = None,
                keep_records: bool = True,
                durability: str = "cell",
                tracer: "Tracer | NullTracer | None" = None,
                trace: bool = True) -> RunResult:
    """Run the full sweep, streaming every event into the ledger.

    A crash (model failure, kill, power loss) leaves the ledger with
    everything completed so far; ``resume_run`` on the same ``run_id``
    finishes the job without repeating any scored question.

    Tracing is on by default: a ``run -> cell -> question`` span tree
    is streamed to ``spans.jsonl`` next to the ledger (each finished
    span is one flushed append, the ledger's crash contract), which is
    what ``repro obs trace <run-id>`` exports.  Pass ``trace=False``
    for the free no-op tracer, or an explicit ``tracer`` to aggregate
    spans elsewhere (its own sink is then left untouched).
    """
    registry = registry if registry is not None else RunRegistry()
    resolve = resolve_model if resolve_model is not None else get_model
    pools = build_request_pools(request)
    cells = plan_cells(request, pools)
    if run_id is None:
        run_id = registry.create(request, cells=len(cells))
    if engine is None:
        engine = _build_engine(request)
    tracer = _resolve_tracer(tracer, trace)
    if (engine is not None and tracer.enabled
            and not engine.tracer.enabled):
        engine.tracer = tracer
    telemetry = Telemetry() if engine is None else None
    sink = None
    if tracer.enabled and tracer.sink is None:
        sink = JsonlSpanSink(registry.spans_path(run_id))
        tracer.sink = sink
    guard = BudgetGuard(max_cost_usd=request.max_cost_usd,
                        max_tokens=request.max_tokens)
    budget_stop: BudgetStop | None = None
    results: dict[CellKey, PoolResult] = {}
    evaluated = 0
    heartbeat = HeartbeatWriter(registry.heartbeat_path(run_id))
    try:
        with RunLedger(registry.ledger_path(run_id),
                       durability=durability) as ledger:
            ledger.run_started(run_id)
            runner = EvaluationRunner(variant=request.variant,
                                      keep_records=keep_records,
                                      engine=engine, ledger=ledger,
                                      tracer=tracer,
                                      telemetry=telemetry,
                                      trail=request.trail)
            started = time.perf_counter()
            base = engine.stats() if engine is not None else None
            with tracer.span("run", run_id=run_id,
                             dataset=request.dataset,
                             workers=request.workers):
                for cell in cells:
                    if guard.enabled:
                        budget_stop = guard.stop_reason(
                            _spent_since(engine, telemetry, base),
                            completed_cells=len(results))
                        if budget_stop is not None:
                            break
                    pool = _pool_for(cell, pools)
                    results[cell] = runner.evaluate(
                        resolve(cell.model), pool,
                        PromptSetting(cell.setting))
                    evaluated += len(pool)
            if telemetry is not None:
                telemetry.record_run(
                    time.perf_counter() - started, 1)
            stats = (engine.stats() if engine is not None
                     else telemetry.snapshot())
            if budget_stop is not None:
                # Not run-finished: the run stays resumable, and the
                # completed cells' records are already sealed — resume
                # finishes the rest bit-identically to an unbudgeted
                # run.
                ledger.budget_exhausted(budget_stop.to_dict(),
                                        stats.to_dict())
            else:
                ledger.run_finished(len(cells), stats.to_dict())
        if budget_stop is None:
            # Partial runs never enter the history: their aggregate
            # metrics would skew every regression baseline.
            append_entry(entry_from_result(
                run_id, request.dataset,
                {key.cell_id: result.metrics
                 for key, result in results.items()},
                stats=stats), registry)
    finally:
        heartbeat.close()
        if sink is not None:
            tracer.sink = None
            sink.close()
    return RunResult(run_id=run_id, request=request, cells=results,
                     stats=stats, evaluated=evaluated,
                     budget=(None if budget_stop is None
                             else budget_stop.to_dict()))


# ----------------------------------------------------------------------
# Loading (zero model calls)
# ----------------------------------------------------------------------
def load_run(run_id: str,
             registry: RunRegistry | None = None,
             keep_records: bool = True) -> RunResult:
    """Rebuild a run's :class:`PoolResult`s from its ledger alone.

    Only completed cells are returned; partially recorded cells need
    :func:`repro.runs.resume.resume_run` to finish first.  No model,
    pool or taxonomy is touched — this is a pure disk read, which is
    what makes every paper table reconstructible offline.
    """
    registry = registry if registry is not None else RunRegistry()
    request = registry.request(run_id)
    state = registry.state(run_id)
    cells: dict[CellKey, PoolResult] = {}
    replayed = 0
    for cell_id, cell_state in state.cells.items():
        if not cell_state.complete:
            continue
        key = CellKey.parse(cell_id)
        if key is None:         # ad-hoc label outside the sweep space
            continue
        records = cell_state.ordered_records()
        replayed += len(records)
        cells[key] = PoolResult(
            pool_label=key.pool_label,
            model=key.model,
            setting=key.setting,
            metrics=cell_state.metrics,
            records=records if keep_records else (),
        )
    stats = (EngineStats.from_dict(state.stats)
             if state.stats else None)
    return RunResult(run_id=run_id, request=request, cells=cells,
                     stats=stats, replayed=replayed)


def coerce_run(run: "RunResult | str",
               registry: RunRegistry | None = None) -> RunResult:
    """Accept a :class:`RunResult` or a run id and return the result."""
    if isinstance(run, RunResult):
        return run
    if isinstance(run, str):
        return load_run(run, registry=registry)
    raise RunError(f"expected RunResult or run id, got {run!r}")
