"""Cache-key fingerprints for dataset artifacts.

An artifact is valid only while everything that determines its content
is unchanged: the taxonomy spec (Table 1 widths, naming seed, domain),
the build request (sample_size, seed), the on-disk schema version, and
the *generator code itself* — a change to the sampling logic or the
name forge must invalidate every cached pool even though the specs look
identical.  The code fingerprint hashes the source bytes of the modules
on the generation path, so editing any of them rotates every cache key
automatically; no manual version bumping required.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from repro.generators.base import DEFAULT_LEVEL_CAP, TaxonomySpec

#: Bump when the artifact payload layout changes shape.
SCHEMA_VERSION = 1

#: Modules whose source determines generated pool content.  Paths are
#: relative to the ``repro`` package root.
_CODE_PATHS = (
    "generators",                 # all ten specs + the shared framework
    "questions/generation.py",    # sampling + question assembly
    "questions/model.py",         # Question field layout
    "stats/sampling.py",          # Cochran sizes
    "taxonomy/builder.py",
    "taxonomy/node.py",
    "taxonomy/taxonomy.py",       # level ordering feeds sampling order
)


def _package_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hex digest over the generation-path source files."""
    digest = hashlib.sha256()
    root = _package_root()
    for rel in _CODE_PATHS:
        path = root / rel
        files = sorted(path.glob("*.py")) if path.is_dir() else [path]
        for file in files:
            digest.update(file.name.encode())
            digest.update(file.read_bytes())
    return digest.hexdigest()[:16]


def spec_fingerprint(spec: TaxonomySpec,
                     sample_size: int | None,
                     seed: str,
                     schema_version: int = SCHEMA_VERSION,
                     code: str | None = None) -> str:
    """Content-address for one (spec, build request) artifact."""
    material = "|".join((
        f"schema={schema_version}",
        f"code={code if code is not None else code_fingerprint()}",
        f"key={spec.key}",
        f"name={spec.display_name}",
        f"domain={spec.domain.value}",
        f"noun={spec.concept_noun}",
        f"widths={','.join(map(str, spec.level_widths))}",
        f"genseed={spec.seed}",
        f"cap={DEFAULT_LEVEL_CAP}",
        f"sample={'cochran' if sample_size is None else sample_size}",
        f"seed={seed}",
    ))
    return hashlib.sha256(material.encode()).hexdigest()[:24]
