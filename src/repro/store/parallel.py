"""Parallel dataset builds: fan taxonomy + pool generation across
processes.

Generation is CPU-bound pure Python (name forging, Pareto parent
assignment, per-level Cochran sampling), so threads gain nothing — the
driver uses :class:`concurrent.futures.ProcessPoolExecutor`.  Work is
chunked at two granularities: small taxonomies are one chunk each,
while large ones (NCBI, Amazon, Glottolog) are split into a
deepest-level chunk and a remaining-levels chunk, because the deepest
level dominates their generation time and would otherwise cap the
whole build at one taxonomy's critical path.  Each worker process
caches built taxonomies (``build_taxonomy`` is ``lru_cache``d), so the
two chunks of a split taxonomy cost at most one duplicate taxonomy
build.

Per-level question generation is a deterministic pure function of
``(key, level, sample_size, seed)``, so the parallel result is
bit-identical to a sequential build regardless of chunking — the test
suite and the dataset-build benchmark verify this question for
question.

Workers return *encoded payload chunks* rather than writing artifacts
themselves, so a crashed worker can never leave a torn file, and the
driver also works with persistence disabled (``store=False``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

from repro.generators.registry import (TAXONOMY_KEYS, build_taxonomy,
                                       get_spec)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.questions.generation import generate_level_questions
from repro.questions.pools import TaxonomyPools, generate_pools
from repro.store.artifacts import ArtifactStore, default_store
from repro.store.codec import (_encode_taxonomy, decode_pools,
                               encode_level, encode_pools,
                               taxonomy_index)
from repro.store.fingerprint import SCHEMA_VERSION, spec_fingerprint

#: Taxonomies at or above this entity count are split into two chunks
#: (deepest level / remaining levels) when building with multiple jobs.
SPLIT_ENTITY_THRESHOLD = 10_000


@lru_cache(maxsize=16)
def _worker_columns(key: str):
    """Taxonomy plus its encoded column and lookups, cached per worker."""
    taxonomy = build_taxonomy(key)
    column = _encode_taxonomy(taxonomy)
    index, by_name = taxonomy_index(column)
    return taxonomy, column, index, by_name


def _chunk_build(task: tuple) -> dict:
    """Worker entry point: generate and encode one chunk of levels.

    ``levels is None`` means every level (a whole-taxonomy chunk);
    ``with_taxonomy`` marks the one chunk per taxonomy that also
    carries the encoded taxonomy column back to the driver.  When
    ``trace`` is set the worker records ``taxonomy``/``encode`` spans
    on a process-local :class:`Tracer` and ships them home serialized
    (``chunk["spans"]``) for the driver to adopt — spans use wall-clock
    time, so worker timestamps line up with the driver's.
    """
    key, levels, with_taxonomy, sample_size, seed, trace = task
    tracer = Tracer() if trace else NULL_TRACER
    with tracer.span("taxonomy", taxonomy=key):
        taxonomy, column, index, by_name = _worker_columns(key)
    if levels is None:
        levels = tuple(range(1, taxonomy.num_levels))
    with tracer.span("encode", taxonomy=key, levels=len(levels)):
        entries = [
            encode_level(
                generate_level_questions(key, taxonomy, level,
                                         sample_size=sample_size,
                                         seed=seed),
                index, by_name, column["names"])
            for level in levels if 1 <= level < taxonomy.num_levels
        ]
    return {"taxonomy_key": key, "levels": entries,
            "taxonomy": column if with_taxonomy else None,
            "spans": [span.to_dict() for span in tracer.spans()]}


def _plan_chunks(missing: list[str], sample_size: int | None,
                 seed: str, trace: bool = False) -> list[tuple]:
    """Chunk ``missing`` into worker tasks, costliest first.

    Ordering matters: the executor hands tasks out one at a time, so
    putting the dominant chunks (NCBI's deepest level, then Amazon's)
    first lets the small taxonomies pack around them.
    """
    tasks: list[tuple[int, tuple]] = []
    for key in missing:
        spec = get_spec(key)
        deepest = spec.num_levels - 1
        if spec.num_entities >= SPLIT_ENTITY_THRESHOLD and deepest > 1:
            # The deepest level holds most of the entities; everything
            # above it (plus the taxonomy column) is the cheaper chunk.
            tasks.append((spec.num_entities,
                          (key, (deepest,), False, sample_size, seed,
                           trace)))
            tasks.append((spec.num_entities // 2,
                          (key, tuple(range(1, deepest)), True,
                           sample_size, seed, trace)))
        else:
            tasks.append((spec.num_entities,
                          (key, None, True, sample_size, seed, trace)))
    tasks.sort(key=lambda pair: pair[0], reverse=True)
    return [task for _, task in tasks]


def _assemble(missing: list[str], chunks: list[dict],
              sample_size: int | None, seed: str) -> list[dict]:
    """Merge worker chunks back into whole artifact payloads."""
    levels: dict[str, list[dict]] = {key: [] for key in missing}
    columns: dict[str, dict] = {}
    for chunk in chunks:
        key = chunk["taxonomy_key"]
        levels[key].extend(chunk["levels"])
        if chunk["taxonomy"] is not None:
            columns[key] = chunk["taxonomy"]
    payloads = []
    for key in missing:
        payloads.append({
            "schema": SCHEMA_VERSION,
            "fingerprint": spec_fingerprint(get_spec(key), sample_size,
                                            seed),
            "taxonomy_key": key,
            "sample_size": sample_size,
            "seed": seed,
            "taxonomy": columns[key],
            "levels": sorted(levels[key],
                             key=lambda entry: entry["level"]),
        })
    return payloads


def build_all_datasets(keys: tuple[str, ...] | list[str] | None = None,
                       sample_size: int | None = None,
                       seed: str = "",
                       jobs: int | None = None,
                       store: ArtifactStore | bool | None = True,
                       force: bool = False,
                       tracer: "Tracer | NullTracer | None" = None
                       ) -> dict[str, TaxonomyPools]:
    """Build (or load) every taxonomy's pools, fanning out over processes.

    Args:
        keys: Registry keys to build; defaults to all ten, and the
            result dict always follows the paper's registry order.
        sample_size: Per-level sample override (``None`` = Cochran).
        seed: Sampling seed, forwarded to every generator.
        jobs: Worker processes; ``None`` uses ``os.cpu_count()``,
            ``1`` builds inline with no pool.
        store: ``True`` = default on-disk store, ``False``/``None`` =
            no persistence, or an explicit :class:`ArtifactStore`.
        force: Rebuild even when a warm artifact exists.
        tracer: Span recorder; the build emits ``build -> taxonomy ->
            encode/write`` spans (worker-process spans are adopted
            into the driver's tracer).  ``None`` records nothing.

    Returns:
        ``{key: TaxonomyPools}`` with warm loads served from disk and
        only the missing (or forced) taxonomies generated.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if keys is None:
        keys = TAXONOMY_KEYS
    keys = [get_spec(key).key for key in keys]
    if store is True:
        store = default_store()
    elif store is False:
        store = None

    with tracer.span("build", taxonomies=len(keys)) as build_span:
        results: dict[str, TaxonomyPools] = {}
        missing: list[str] = []
        for key in keys:
            cached = None
            if store is not None and not force:
                with tracer.span("load", taxonomy=key) as load_span:
                    cached = store.load(key, sample_size, seed)
                    load_span.set(hit=cached is not None)
            if cached is not None:
                results[key] = cached
            else:
                missing.append(key)

        if missing:
            if jobs is None:
                jobs = os.cpu_count() or 1
            jobs = max(1, min(jobs, len(missing)))
            if jobs == 1:
                payloads = []
                for key in missing:
                    with tracer.span("taxonomy", taxonomy=key):
                        pools = generate_pools(key,
                                               sample_size=sample_size,
                                               seed=seed)
                    with tracer.span("encode", taxonomy=key):
                        payloads.append(encode_pools(
                            pools,
                            spec_fingerprint(get_spec(key),
                                             sample_size, seed),
                            sample_size, seed))
            else:
                tasks = _plan_chunks(missing, sample_size, seed,
                                     trace=tracer.enabled)
                with ProcessPoolExecutor(max_workers=jobs) as executor:
                    chunks = list(executor.map(_chunk_build, tasks))
                for chunk in chunks:
                    tracer.adopt(chunk.pop("spans", []),
                                 parent=build_span.span_id)
                payloads = _assemble(missing, chunks, sample_size,
                                     seed)
            for payload in payloads:
                if store is not None:
                    store.stats.builds += 1
                    with tracer.span(
                            "write",
                            taxonomy=payload["taxonomy_key"]):
                        store.save_payload(payload)
                results[payload["taxonomy_key"]] = \
                    decode_pools(payload)

    return {key: results[key] for key in keys}
