"""Columnar (de)serialization of taxonomies and question pools.

The artifact payload is a single JSON document laid out
struct-of-arrays style: the taxonomy is three parallel columns
(``ids``, ``names``, ``parents`` as row indices), and each question
column stores node *indices* rather than repeating id/name strings, so
an NCBI-scale artifact stays a few megabytes and decodes with tight
list comprehensions.  Everything a :class:`Question` carries (uids,
names, levels, MCQ options and answer positions) is reconstructed
bit-for-bit from the columns — round-trip equality is enforced by the
test suite and the dataset-build benchmark.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.questions.generation import LevelQuestions
from repro.questions.model import (Question, QuestionKind, QuestionType)
from repro.questions.pools import TaxonomyPools
from repro.store.fingerprint import SCHEMA_VERSION
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy


class ArtifactDecodeError(ReproError):
    """Raised when a payload does not decode; callers rebuild instead."""


# ----------------------------------------------------------------------
# Taxonomy columns
# ----------------------------------------------------------------------
def _encode_taxonomy(taxonomy: Taxonomy) -> dict:
    ids: list[str] = []
    names: list[str] = []
    parents: list[int] = []
    index: dict[str, int] = {}
    for node in taxonomy:
        index[node.node_id] = len(ids)
        ids.append(node.node_id)
        names.append(node.name)
        parents.append(-1 if node.parent_id is None
                       else index[node.parent_id])
    return {
        "name": taxonomy.name,
        "domain": taxonomy.domain.value,
        "concept_noun": taxonomy.concept_noun,
        "ids": ids,
        "names": names,
        "parents": parents,
    }


def _decode_taxonomy(payload: dict) -> Taxonomy:
    ids = payload["ids"]
    names = payload["names"]
    parents = payload["parents"]
    nodes: dict[str, TaxonomyNode] = {}
    rows: list[TaxonomyNode] = []
    # Builders append children after their parent, so one ordered pass
    # resolves parent ids, levels and children order simultaneously.
    for node_id, name, parent_row in zip(ids, names, parents):
        if parent_row < 0:
            node = TaxonomyNode(node_id=node_id, name=name, level=0)
        else:
            parent = rows[parent_row]
            node = TaxonomyNode(node_id=node_id, name=name,
                                level=parent.level + 1,
                                parent_id=parent.node_id)
            parent.children_ids.append(node_id)
        rows.append(node)
        nodes[node_id] = node
    return Taxonomy(payload["name"], Domain(payload["domain"]), nodes,
                    concept_noun=payload["concept_noun"])


# ----------------------------------------------------------------------
# Question columns
# ----------------------------------------------------------------------
def _tf_columns(questions, index: dict[str, int]) -> dict:
    return {
        "child": [index[q.child_id] for q in questions],
        "asked": [index[q.uid.rsplit("|", 1)[1]] for q in questions],
    }


def _mcq_columns(questions, index: dict[str, int],
                 by_name: dict[str, int], names: list[str]) -> dict:
    options: list[object] = []
    for question in questions:
        for option in question.options:
            row = by_name.get(option)
            # Generated names are globally unique, but fall back to the
            # literal string rather than mis-encode an aliased name.
            options.append(row if row is not None
                           and names[row] == option else option)
    return {
        "child": [index[q.child_id] for q in questions],
        "options": options,
        "answer": [q.answer_index for q in questions],
    }


class _Columns:
    """Raw taxonomy arrays plus the derived ``levels`` column.

    Question decoding reads these arrays directly — reconstructing the
    full :class:`Taxonomy` node graph (the dominant decode cost at NCBI
    scale) is deferred until something touches ``pools.taxonomy``.
    """

    __slots__ = ("ids", "names", "parents", "levels", "domain")

    def __init__(self, payload: dict):
        self.ids: list[str] = payload["ids"]
        self.names: list[str] = payload["names"]
        self.parents: list[int] = payload["parents"]
        self.domain = Domain(payload["domain"])
        levels: list[int] = []
        for parent_row in self.parents:
            levels.append(0 if parent_row < 0 else levels[parent_row] + 1)
        self.levels = levels


def _decode_tf(taxonomy_key: str, cols: _Columns, kind: QuestionKind,
               column: dict) -> tuple[Question, ...]:
    ids, names, levels = cols.ids, cols.names, cols.levels
    parents, domain = cols.parents, cols.domain
    kind_value = kind.value
    questions = []
    for child, asked in zip(column["child"], column["asked"]):
        child_id = ids[child]
        parent = parents[child]
        questions.append(Question(
            uid=f"{taxonomy_key}|{kind_value}|{child_id}|{ids[asked]}",
            taxonomy_key=taxonomy_key,
            domain=domain,
            qtype=QuestionType.TRUE_FALSE,
            kind=kind,
            level=levels[child],
            child_id=child_id,
            child_name=names[child],
            true_parent_id=ids[parent],
            true_parent_name=names[parent],
            asked_parent_name=names[asked],
        ))
    return tuple(questions)


def _decode_mcq(taxonomy_key: str, cols: _Columns,
                column: dict) -> tuple[Question, ...]:
    ids, names, levels = cols.ids, cols.names, cols.levels
    parents, domain = cols.parents, cols.domain
    questions = []
    flat = column["options"]
    for slot, (child, answer) in enumerate(
            zip(column["child"], column["answer"])):
        child_id = ids[child]
        parent = parents[child]
        options = tuple(
            value if isinstance(value, str) else names[value]
            for value in flat[slot * 4:slot * 4 + 4])
        questions.append(Question(
            uid=f"{taxonomy_key}|{QuestionKind.MCQ.value}"
                f"|{child_id}|options",
            taxonomy_key=taxonomy_key,
            domain=domain,
            qtype=QuestionType.MCQ,
            kind=QuestionKind.MCQ,
            level=levels[child],
            child_id=child_id,
            child_name=names[child],
            true_parent_id=ids[parent],
            true_parent_name=names[parent],
            options=options,
            answer_index=answer,
        ))
    return tuple(questions)


# ----------------------------------------------------------------------
# Whole-artifact payloads
# ----------------------------------------------------------------------
def taxonomy_index(taxonomy_column: dict) -> tuple[dict, dict]:
    """``(id -> row, name -> first row)`` lookups for a taxonomy column."""
    index = {node_id: row
             for row, node_id in enumerate(taxonomy_column["ids"])}
    by_name: dict[str, int] = {}
    for row, name in enumerate(taxonomy_column["names"]):
        by_name.setdefault(name, row)
    return index, by_name


def encode_level(generated: LevelQuestions, index: dict,
                 by_name: dict, names: list[str]) -> dict:
    """One level's question columns (a ``levels`` entry of the payload).

    Exposed separately so parallel build workers can encode single
    levels; :func:`encode_pools` assembles the same entries.
    """
    return {
        "level": generated.level,
        "positive": _tf_columns(generated.positives, index),
        "negative_easy": _tf_columns(generated.negatives_easy, index),
        "negative_hard": _tf_columns(generated.negatives_hard, index),
        "mcq": _mcq_columns(generated.mcqs, index, by_name, names),
    }


def encode_pools(pools: TaxonomyPools, fingerprint: str,
                 sample_size: int | None, seed: str) -> dict:
    """Serialize ``pools`` into the columnar artifact payload."""
    taxonomy_column = _encode_taxonomy(pools.taxonomy)
    index, by_name = taxonomy_index(taxonomy_column)
    levels = [encode_level(generated, index, by_name,
                           taxonomy_column["names"])
              for generated in pools.per_level.values()]
    return {
        "schema": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "taxonomy_key": pools.taxonomy_key,
        "sample_size": sample_size,
        "seed": seed,
        "taxonomy": taxonomy_column,
        "levels": levels,
    }


def decode_pools(payload: dict) -> TaxonomyPools:
    """Rebuild :class:`TaxonomyPools` from :func:`encode_pools` output.

    Raises :class:`ArtifactDecodeError` on any malformed payload so the
    store can fall back to regeneration.
    """
    try:
        if payload["schema"] != SCHEMA_VERSION:
            raise ArtifactDecodeError(
                f"schema {payload['schema']} != {SCHEMA_VERSION}")
        taxonomy_key = payload["taxonomy_key"]
        taxonomy_column = payload["taxonomy"]
        cols = _Columns(taxonomy_column)
        per_level: dict[int, LevelQuestions] = {}
        for entry in payload["levels"]:
            level = entry["level"]
            per_level[level] = LevelQuestions(
                taxonomy_key=taxonomy_key,
                level=level,
                positives=_decode_tf(taxonomy_key, cols,
                                     QuestionKind.POSITIVE,
                                     entry["positive"]),
                negatives_easy=_decode_tf(taxonomy_key, cols,
                                          QuestionKind.NEGATIVE_EASY,
                                          entry["negative_easy"]),
                negatives_hard=_decode_tf(taxonomy_key, cols,
                                          QuestionKind.NEGATIVE_HARD,
                                          entry["negative_hard"]),
                mcqs=_decode_mcq(taxonomy_key, cols, entry["mcq"]),
            )
        # The node graph is rebuilt only if a consumer dereferences
        # ``pools.taxonomy`` — question decoding never needs it.
        return TaxonomyPools(
            taxonomy_key,
            lambda: _decode_taxonomy(taxonomy_column),
            per_level)
    except ArtifactDecodeError:
        raise
    except Exception as exc:
        raise ArtifactDecodeError(f"malformed artifact: {exc!r}") from exc
