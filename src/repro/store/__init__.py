"""repro.store — the fast dataset pipeline.

The paper's benchmark datasets are a pure function of
``(taxonomy spec, sample_size, seed)``, so this package computes them
once and serves them from disk afterwards:

* :class:`ArtifactStore` — content-addressed on-disk cache of built
  taxonomies + question pools (compact columnar JSON); warm loads do
  zero generation work and stale artifacts self-invalidate because the
  cache key fingerprints the spec, the request, the schema version and
  the generator source code.
* :func:`build_all_datasets` — fans cold builds out across processes
  with results bit-identical to a sequential build.
* :func:`spec_fingerprint` / :func:`code_fingerprint` — the cache-key
  material.

``repro.questions.pools.build_pools`` routes through the default store
automatically; set ``REPRO_STORE_DIR`` to relocate it or to ``off`` to
disable caching.
"""

from repro.store.artifacts import (STORE_ENV, ArtifactStore, StoreStats,
                                   default_store)
from repro.store.codec import (ArtifactDecodeError, decode_pools,
                               encode_pools)
from repro.store.fingerprint import (SCHEMA_VERSION, code_fingerprint,
                                     spec_fingerprint)
from repro.store.parallel import build_all_datasets

__all__ = [
    "ArtifactStore",
    "ArtifactDecodeError",
    "StoreStats",
    "SCHEMA_VERSION",
    "STORE_ENV",
    "build_all_datasets",
    "code_fingerprint",
    "decode_pools",
    "default_store",
    "encode_pools",
    "spec_fingerprint",
]
