"""Content-addressed on-disk store for built datasets.

Layout: ``<root>/<taxonomy_key>/<fingerprint>.json`` where the
fingerprint covers the taxonomy spec, the build request
(sample_size/seed), the artifact schema version and the generator code
fingerprint (:mod:`repro.store.fingerprint`).  A spec edit, seed
change, schema bump or generator code change therefore lands on a new
path and the stale artifact is simply never read again — invalidation
is automatic, no manifest to maintain.

Corrupted or truncated artifacts are treated as misses: the store
rebuilds and rewrites them instead of crashing.  Writes go through a
temp file + ``os.replace`` so concurrent builders (the parallel driver,
multiple test processes) never observe half-written JSON.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.generators.registry import get_spec
from repro.store.codec import ArtifactDecodeError, decode_pools, encode_pools
from repro.store.fingerprint import spec_fingerprint

_log = logging.getLogger("repro.store.artifacts")

#: Environment override for the default store root; set to ``off`` (or
#: ``0`` / ``none``) to disable on-disk caching entirely.
STORE_ENV = "REPRO_STORE_DIR"

_DISABLED_VALUES = {"off", "0", "none", "disabled"}


@dataclass
class StoreStats:
    """Counters for observability and tests."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    invalid: int = 0          # artifacts present but unreadable/stale

    def as_row(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "invalid": self.invalid}


class ArtifactStore:
    """A directory of content-addressed dataset artifacts."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else _default_root()
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def fingerprint(self, taxonomy_key: str,
                    sample_size: int | None = None,
                    seed: str = "") -> str:
        return spec_fingerprint(get_spec(taxonomy_key), sample_size, seed)

    def path_for(self, taxonomy_key: str,
                 sample_size: int | None = None,
                 seed: str = "") -> Path:
        key = get_spec(taxonomy_key).key
        return (self.root / key /
                f"{self.fingerprint(key, sample_size, seed)}.json")

    # ------------------------------------------------------------------
    def load(self, taxonomy_key: str, sample_size: int | None = None,
             seed: str = ""):
        """Decoded pools on a warm hit, else ``None`` (miss/corrupt)."""
        path = self.path_for(taxonomy_key, sample_size, seed)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            pools = decode_pools(payload)
        except (OSError, ValueError, ArtifactDecodeError) as exc:
            # Corrupted / truncated / stale-schema artifact: drop it and
            # report a miss so the caller rebuilds.
            _log.warning("artifact-corrupt recovered path=%s error=%s",
                         path, type(exc).__name__)
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        self.stats.hits += 1
        return pools

    def save_payload(self, payload: dict) -> Path:
        """Atomically persist an encoded artifact payload."""
        path = self.root / payload["taxonomy_key"] / \
            f"{payload['fingerprint']}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def save(self, pools, sample_size: int | None = None,
             seed: str = "") -> Path:
        """Encode and persist built pools under their fingerprint."""
        fingerprint = self.fingerprint(pools.taxonomy_key, sample_size,
                                       seed)
        return self.save_payload(
            encode_pools(pools, fingerprint, sample_size, seed))

    # ------------------------------------------------------------------
    def get_or_build(self, taxonomy_key: str,
                     sample_size: int | None = None, seed: str = ""):
        """Warm load when possible, else generate, persist and return."""
        from repro.questions.pools import generate_pools
        pools = self.load(taxonomy_key, sample_size, seed)
        if pools is not None:
            return pools
        pools = generate_pools(get_spec(taxonomy_key).key,
                               sample_size=sample_size, seed=seed)
        self.stats.builds += 1
        self.save(pools, sample_size, seed)
        return pools


def _default_root() -> Path:
    value = os.environ.get(STORE_ENV)
    if value:
        return Path(value)
    return Path.home() / ".cache" / "repro-taxoglimpse" / "datasets"


def default_store() -> ArtifactStore | None:
    """The process-default store, or ``None`` when disabled via env."""
    value = os.environ.get(STORE_ENV, "").strip().lower()
    if value in _DISABLED_VALUES:
        return None
    return ArtifactStore()
