"""Hierarchical span tracing for the evaluation stack.

A :class:`Tracer` records *spans* — named, timed, attributed intervals
arranged in a tree: ``run -> cell -> question -> model_call / retry /
cache_lookup`` on the evaluation side, ``build -> taxonomy ->
encode / write`` in the dataset store.  Spans are opened as context
managers; parentage is tracked per thread (a span opened on a worker
thread nests under whatever span that same thread has open), and can
be forced explicitly with ``parent=`` when work hops threads — the
engine's fan-out opens every ``question`` span with the cell span as
its explicit parent, so worker interleaving never scrambles the tree.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span``
call returns one shared no-op context manager — instrumented code pays
one attribute dict and one method call when tracing is off, which the
``bench_obs_overhead`` benchmark keeps within budget.

Spans cross process boundaries by value: a worker process runs its own
tracer, serializes the finished spans with :meth:`Span.to_dict`, and
the driver re-homes the batch under its own tree with
:meth:`Tracer.adopt` (ids are remapped, roots are re-parented).  The
default clock is ``time.time`` precisely so timestamps from different
processes on one machine stay comparable; tests inject a fake clock
for deterministic durations.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

Clock = Callable[[], float]

#: Span names used by the built-in instrumentation, root to leaf.
#: ``batch``/``coalesced_wait``/``hedge`` are the engine's grouping
#: kinds (PR 7): ``batch`` spans are emitted on the batching
#: dispatcher's event-loop thread and so carry no parent.
EVALUATION_SPANS = ("run", "cell", "question", "model_call", "retry",
                    "cache_lookup", "batch", "coalesced_wait",
                    "hedge")
BUILD_SPANS = ("build", "taxonomy", "encode", "write", "load")


@dataclass(slots=True)
class Span:
    """One timed interval in the trace tree."""

    name: str
    span_id: int
    parent_id: int | None
    start_s: float
    end_s: float | None = None
    thread_id: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs) -> None:
        """Attach attributes after the span has been opened."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """JSONL-compatible payload (``obs.export`` reads it back)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "thread": self.thread_id,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload["name"],
            span_id=int(payload["id"]),
            parent_id=(None if payload.get("parent") is None
                       else int(payload["parent"])),
            start_s=float(payload["start_s"]),
            end_s=(None if payload.get("end_s") is None
                   else float(payload["end_s"])),
            thread_id=int(payload.get("thread", 0)),
            attrs=dict(payload.get("attrs") or {}),
        )


class _SpanContext:
    """Context manager binding one open span to one tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class Tracer:
    """Thread-safe span recorder with per-thread parent tracking.

    Args:
        clock: Injectable time source (defaults to wall clock so spans
            from different processes line up).
        sink: Optional callback invoked with every *finished* span —
            the run driver hangs a JSONL appender here so a crash
            still leaves every completed span on disk.
    """

    enabled = True

    def __init__(self, clock: Clock = time.time,
                 sink: Callable[[Span], None] | None = None):
        self._clock = clock
        self.sink = sink
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> int | None:
        """The id of this thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(self, name: str, parent: int | None = None,
             **attrs) -> _SpanContext:
        """Open a span; ``with tracer.span("cell", model=m) as s: ...``

        ``parent`` overrides the thread-local parent — required when
        the span logically nests under work on another thread.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent is None:
            parent = self.current_id()
        span = Span(name=name, span_id=span_id, parent_id=parent,
                    start_s=self._clock(),
                    thread_id=threading.get_ident(), attrs=attrs)
        self._stack().append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end_s = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:                       # unbalanced exit: drop if present
            try:
                stack.remove(span)
            except ValueError:  # pragma: no cover - foreign thread
                pass
        with self._lock:
            self._spans.append(span)
        if self.sink is not None:
            self.sink(span)

    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Every finished span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def adopt(self, payloads: Iterable[dict],
              parent: int | None = None) -> list[Span]:
        """Ingest serialized spans from another process.

        Ids are remapped into this tracer's id space (so batches from
        several workers can never collide) and spans without a parent
        inside the batch are re-homed under ``parent``.
        """
        batch = [Span.from_dict(payload) for payload in payloads]
        with self._lock:
            id_map = {}
            for span in batch:
                id_map[span.span_id] = self._next_id
                self._next_id += 1
            for span in batch:
                span.span_id = id_map[span.span_id]
                if span.parent_id in id_map:
                    span.parent_id = id_map[span.parent_id]
                else:
                    span.parent_id = parent
            self._spans.extend(batch)
        if self.sink is not None:
            for span in batch:
                self.sink(span)
        return batch


class _NullSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    duration_s = 0.0

    def set(self, **attrs) -> None:
        pass


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class NullTracer:
    """No-op tracer: every call is constant-time and allocation-free
    (beyond the caller's keyword dict)."""

    enabled = False
    sink = None

    def span(self, name: str, parent: int | None = None,
             **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def current_id(self) -> int | None:
        return None

    def spans(self) -> tuple[Span, ...]:
        return ()

    def clear(self) -> None:
        pass

    def adopt(self, payloads: Iterable[dict],
              parent: int | None = None) -> list[Span]:
        return []


#: Process-wide default: instrumentation is free unless opted in.
NULL_TRACER = NullTracer()
