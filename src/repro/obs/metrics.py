"""Named counters, gauges and fixed-bucket histograms.

The registry is the numeric half of ``repro.obs``: where the tracer
answers "where did the wall-clock go?", the registry answers "what did
the distribution look like?".  Every metric is thread-safe under its
own lock, and a :class:`Histogram` keeps fixed cumulative-style
buckets *plus* exact min/max and total, so p50/p90/p99 come out as
bucket-interpolated estimates while the extremes stay exact — the
shape LITE-style cost accounting needs, at O(buckets) memory no
matter how many observations land.

``repro.engine.telemetry.Telemetry`` is now a facade over one of
these registries; :func:`global_registry` carries process-wide
counters (cache persistence, recovery events) that have no obvious
single owner.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 0.1 ms .. 60 s, roughly log-spaced.
DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                   10.0, 30.0, 60.0)


class Counter:
    """Monotonically increasing value (floats allowed for seconds)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "help": self.help, "value": self.value}

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """Last-write-wins value, with a convenience high-water setter."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            self._value = max(self._value, value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "help": self.help, "value": self.value}

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``bounds`` are upper bucket edges; an implicit +Inf bucket catches
    the overflow.  ``quantile`` interpolates linearly inside the
    winning bucket (clamped by the exact min/max), which is accurate
    to a bucket width — plenty for latency tails, constant memory.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a sorted non-empty tuple")
        self.name = name
        self.help = help
        self.bounds = tuple(float(bound) for bound in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._max is not None else 0.0

    @property
    def mean(self) -> float:
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._total / self._count

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket counts (last entry is the +Inf overflow)."""
        with self._lock:
            return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen < rank or bucket_count == 0:
                    continue
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (self.bounds[index]
                        if index < len(self.bounds)
                        else (self._max or low))
                fraction = 1.0 - (seen - rank) / bucket_count
                value = low + (high - low) * fraction
                return min(max(value, self._min or 0.0),
                           self._max or value)
            return self._max or 0.0  # pragma: no cover - defensive

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind, "name": self.name, "help": self.help,
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count, "total": self._total,
                "min": self._min, "max": self._max,
            }

    def _load(self, payload: dict) -> None:
        with self._lock:
            self._counts = [int(c) for c in payload["counts"]]
            self._count = int(payload["count"])
            self._total = float(payload["total"])
            self._min = payload.get("min")
            self._max = payload.get("max")

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._total = 0.0
            self._min = None
            self._max = None


class MetricsRegistry:
    """Get-or-create home for named metrics.

    Re-requesting a name returns the existing metric; requesting it as
    a different kind raises, so two subsystems can never silently
    split one metric.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "",
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, bounds), "histogram")

    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, Counter | Gauge | Histogram]:
        with self._lock:
            return dict(self._metrics)

    def to_dict(self) -> dict:
        return {name: metric.to_dict()
                for name, metric in sorted(self.metrics().items())}

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        for name, entry in payload.items():
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(name, entry.get("help", "")).add(
                    float(entry["value"]))
            elif kind == "gauge":
                registry.gauge(name, entry.get("help", "")).set(
                    float(entry["value"]))
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, entry.get("help", ""),
                    bounds=tuple(entry["bounds"]))
                histogram._load(entry)
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry

    def reset(self) -> None:
        for metric in self.metrics().values():
            metric._reset()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """Process-wide registry for ownerless counters (cache persistence,
    corruption recoveries); tests read deltas, not absolutes."""
    return _GLOBAL
