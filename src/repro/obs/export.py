"""Exporters: span JSONL, Chrome ``trace_event`` JSON, Prometheus text.

Three consumers, three formats:

* :class:`JsonlSpanSink` / :func:`read_spans_jsonl` — the durable
  form.  One JSON document per finished span, appended next to the
  run's ledger, torn-final-line tolerant on read (same crash contract
  as the ledger itself).
* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto form:
  complete ("ph": "X") events with microsecond timestamps, span and
  parent ids carried in ``args`` so the tree is reconstructible from
  the JSON alone.
* :func:`format_prometheus` — a text-format dump of a
  :class:`repro.obs.metrics.MetricsRegistry`, histograms as
  cumulative ``_bucket{le=...}`` series plus exact ``_min``/``_max``.

:func:`registry_from_spans` bridges the two halves: it folds a span
list into per-name duration histograms and counters, which is how
``repro obs metrics <run-id>`` reports distributions offline from the
persisted span log with zero model calls.
"""

from __future__ import annotations

import json
import logging
import math
import threading
from pathlib import Path

from repro.obs.jsonl import JsonlCorruptError, iter_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span

_log = logging.getLogger("repro.obs.export")


# ----------------------------------------------------------------------
# Span JSONL
# ----------------------------------------------------------------------
class JsonlSpanSink:
    """Append finished spans to a JSONL file as they complete.

    Designed to hang off ``Tracer.sink``: every append is one
    ``write()`` + ``flush()`` under a lock, so a crashed process
    keeps every span that finished before it died.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._closed = False

    def __call__(self, span: Span) -> None:
        line = json.dumps(span.to_dict(),
                          separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                return
            self._file.write(line)
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            self._file.close()
            self._closed = True

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_spans_jsonl(spans, path: str | Path,
                      append: bool = False) -> Path:
    """Write a finished span list in one go (non-streaming form)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with open(target, mode, encoding="utf-8") as stream:
        for span in spans:
            stream.write(json.dumps(span.to_dict(),
                                    separators=(",", ":")) + "\n")
    return target


def read_spans_jsonl(path: str | Path) -> tuple[Span, ...]:
    """Load a span log; a torn final line (crash signature) is dropped
    with one log line, corruption anywhere else raises."""
    try:
        batch = iter_jsonl(path)
    except JsonlCorruptError as exc:
        raise ValueError(
            f"corrupt span log {exc.path} at line "
            f"{exc.line_number}: {exc.reason}") from exc
    if batch.torn:
        _log.warning("torn-span-line dropped path=%s line=%d", path,
                     batch.torn_line)
    spans: list[Span] = []
    last = len(batch.records) - 1
    for index, (number, payload) in enumerate(batch.records):
        try:
            spans.append(Span.from_dict(payload))
        except (ValueError, KeyError, TypeError) as exc:
            if index == last and not batch.torn:
                _log.warning("torn-span-line dropped path=%s "
                             "line=%d", path, number)
                break
            raise ValueError(
                f"corrupt span log {path} at line {number}: "
                f"{exc!r}") from exc
    return tuple(spans)


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(spans) -> dict:
    """Render spans as a Chrome ``trace_event`` document.

    Complete events ("ph": "X"), microsecond timestamps relative to
    the earliest span so the viewer opens at t=0.  ``args`` carries
    ``span_id``/``parent_id`` plus the span's own attributes, which is
    what lets a consumer rebuild the exact tree from the JSON.
    """
    spans = [span for span in spans if span.end_s is not None]
    origin = min((span.start_s for span in spans), default=0.0)
    events = []
    for span in spans:
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start_s - origin) * 1e6, 3),
            "dur": round(span.duration_s * 1e6, 3),
            "pid": 1,
            "tid": span.thread_id,
            "cat": "repro",
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id, **span.attrs},
        })
    events.sort(key=lambda event: (event["ts"],
                                   event["args"]["span_id"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(spans) -> dict[int | None, list[Span]]:
    """Children-by-parent-id index over a span list."""
    tree: dict[int | None, list[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    for children in tree.values():
        children.sort(key=lambda span: (span.start_s, span.span_id))
    return tree


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double quote and line feed are the three characters the
    text format requires escaping inside ``label="value"`` — in that
    order (backslash first, or the escapes themselves get re-escaped).
    Everything emitting labeled series (here and
    ``repro.obs.cost.CostLedger.to_prometheus``) must route label
    values through this, or a taxonomy name containing a quote would
    produce an unparseable exposition.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def format_prometheus(registry: MetricsRegistry) -> str:
    """Text-format dump of every metric in ``registry``.

    Histograms render as the standard ``_bucket``/``_sum``/``_count``
    family; the exact extremes are emitted as sibling ``{name}_min`` /
    ``{name}_max`` *gauge* families (their own ``# TYPE`` lines — bare
    suffixes on a histogram family are rejected by strict parsers).
    Non-finite values use the Prometheus spellings ``+Inf``/``-Inf``/
    ``NaN``, never Python's ``inf``.
    """
    lines: list[str] = []
    for name, metric in sorted(registry.metrics().items()):
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"{name} {_num(metric.value)}")
            continue
        cumulative = 0
        for bound, count in zip(metric.bounds,
                                metric.bucket_counts()):
            cumulative += count
            lines.append(
                f'{name}_bucket'
                f'{{le="{escape_label_value(_num(bound))}"}} '
                f'{cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
        lines.append(f"{name}_sum {_num(metric.total)}")
        lines.append(f"{name}_count {metric.count}")
        for suffix, value in (("min", metric.min), ("max", metric.max)):
            lines.append(f"# TYPE {name}_{suffix} gauge")
            lines.append(f"{name}_{suffix} {_num(value)}")
    return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Prometheus-legal number: ``+Inf``/``-Inf``/``NaN`` for the
    non-finite values, no trailing ``.0`` on integral ones."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value.is_integer():
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# Spans -> metrics
# ----------------------------------------------------------------------
def registry_from_spans(spans) -> MetricsRegistry:
    """Fold spans into per-name duration histograms and counters."""
    registry = MetricsRegistry()
    for span in spans:
        if span.end_s is None:
            continue
        safe = "".join(ch if ch.isalnum() else "_"
                       for ch in span.name)
        registry.counter(
            f"repro_span_{safe}_total",
            f"finished {span.name} spans").add(1)
        registry.histogram(
            f"repro_span_{safe}_seconds",
            f"duration of {span.name} spans").observe(span.duration_s)
    return registry
