"""Token and dollar accounting for evaluation runs.

The paper's scalability study (Figure 7) argues that the real obstacle
to "LLMs as taxonomies" is serving cost — yet until this module the
observability stack measured *time* and never *tokens or dollars*.
Everything here is deterministic by construction:

* :class:`TokenCounter` estimates tokens as ``ceil(len(text) / 4)`` —
  a pure function of the text, so a record's token counts are
  bit-identical whether the question ran sequentially, through the
  engine, or on a shard.  Backends with a real tokenizer register a
  per-model override (keyed by model *name*, which survives the whole
  middleware chain) or expose an optional ``count_tokens(text)``
  method (see :mod:`repro.llm.base`).
* Prices are integer **nano-dollars per token** (:class:`ModelPrice`).
  Integer accumulation is associative, so a sharded run's merged cost
  equals the single-process run's cost bit for bit — float summation
  order could not promise that.  API models carry their public
  2024-era list prices; open-source models are priced from the
  paper's measured GPU-seconds (:func:`repro.llm.costs.cost_estimate`)
  amortized at a documented $/GPU-hour.
* :class:`CostMeter` is the engine middleware billing each backend
  attempt (it sits inside the retry loop, so re-attempts are paid
  for, and inside the cache, so hits cost zero).
* :class:`CostLedger` folds a run's ledger records into
  per-(model, taxonomy, setting) cost cells for ``repro obs cost``.
* :class:`BudgetGuard` enforces per-run ``--max-cost-usd`` /
  ``--max-tokens`` ceilings at cell boundaries.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.trail import current_trail

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.engine.telemetry import EngineStats

NANOS_PER_USD = 1_000_000_000

#: Assumed blended price of one GPU-hour on the paper's testbed
#: (8x RTX 3090 + 4x A100 — a mid-2024 cloud A100 hour).
GPU_HOUR_USD = 2.50

#: Tokens one benchmark question is assumed to move (prompt plus
#: completion) when converting per-question GPU-seconds into a
#: per-token price.  The paper's prompts are one-sentence Yes/No
#: probes; 256 is deliberately round so the derivation is auditable.
NOMINAL_TOKENS_PER_QUESTION = 256

#: Public list prices (USD per 1k tokens, prompt/completion) for the
#: API models the paper evaluated, as of its 2024 evaluation window.
API_PRICES_USD_PER_1K: dict[str, tuple[float, float]] = {
    "GPT-4": (0.03, 0.06),
    "GPT-3.5": (0.0005, 0.0015),
    "Claude-3": (0.003, 0.015),
}

#: Fallback for models outside both tables (custom backends).
DEFAULT_PRICE_USD_PER_1K: tuple[float, float] = (0.001, 0.001)


def nanos_to_usd(nanos: int) -> float:
    """Dollars for an exact nano-dollar amount (display only)."""
    return nanos / NANOS_PER_USD


def usd_to_nanos(usd: float) -> int:
    """Exact nano-dollar amount for a dollar figure."""
    return round(usd * NANOS_PER_USD)


# ----------------------------------------------------------------------
# Token counting
# ----------------------------------------------------------------------
class TokenCounter:
    """Deterministic token estimator with per-model override hooks.

    The default heuristic is ``ceil(len(text) / 4)`` — the usual
    ~4-chars-per-token English rule of thumb.  Overrides are keyed by
    model *name* (the one attribute every middleware wrapper
    preserves), so the sequential runner, the engine stack and shard
    workers all resolve the same counter for the same model and the
    ledger's per-record counts stay bit-identical across execution
    shapes.
    """

    def __init__(self) -> None:
        self._overrides: dict[str, Callable[[str], int]] = {}
        self._lock = threading.Lock()

    def register(self, model_name: str,
                 fn: Callable[[str], int]) -> None:
        """Install a real tokenizer for one model name."""
        with self._lock:
            self._overrides[model_name] = fn

    def unregister(self, model_name: str) -> None:
        with self._lock:
            self._overrides.pop(model_name, None)

    @staticmethod
    def heuristic(text: str) -> int:
        """``ceil(len/4)``: the model-free fallback estimate."""
        return (len(text) + 3) // 4

    def resolve(self, model) -> Callable[[str], int]:
        """The counting function for ``model`` (name or backend).

        Resolution order: a registered per-name override, then a
        callable ``count_tokens`` attribute on the object itself
        (the optional :class:`repro.llm.base.ChatModel` hook), then
        the heuristic.
        """
        name = model if isinstance(model, str) else getattr(
            model, "name", None)
        with self._lock:
            override = self._overrides.get(name)
        if override is not None:
            return override
        hook = getattr(model, "count_tokens", None)
        if callable(hook):
            return hook
        return self.heuristic

    def count(self, text: str, model=None) -> int:
        return self.resolve(model)(text)


#: Process-wide counter the runner and engine share by default.
DEFAULT_TOKEN_COUNTER = TokenCounter()


def count_tokens(text: str, model=None) -> int:
    """Token estimate via the default counter (module-level shim)."""
    return DEFAULT_TOKEN_COUNTER.count(text, model)


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ModelPrice:
    """Per-token price card in integer nano-dollars.

    ``basis`` documents provenance: ``"api-tier"`` (public list
    price), ``"gpu-seconds"`` (derived from the paper's Figure 7
    latency at :data:`GPU_HOUR_USD`), or ``"default"``.
    """

    model: str
    prompt_nanos_per_token: int
    completion_nanos_per_token: int
    basis: str

    @property
    def prompt_usd_per_1k(self) -> float:
        return self.prompt_nanos_per_token * 1000 / NANOS_PER_USD

    @property
    def completion_usd_per_1k(self) -> float:
        return self.completion_nanos_per_token * 1000 / NANOS_PER_USD

    def cost_nanos(self, prompt_tokens: int,
                   completion_tokens: int) -> int:
        """Exact nano-dollar cost of one (attempted) call."""
        return (prompt_tokens * self.prompt_nanos_per_token
                + completion_tokens * self.completion_nanos_per_token)

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model,
            "prompt_$per1k": f"{self.prompt_usd_per_1k:.5f}",
            "completion_$per1k": f"{self.completion_usd_per_1k:.5f}",
            "basis": self.basis,
        }


def _per_1k_to_nanos(usd_per_1k: float) -> int:
    return round(usd_per_1k / 1000 * NANOS_PER_USD)


_PRICE_CACHE: dict[str, ModelPrice] = {}
_PRICE_LOCK = threading.Lock()


def price_for(model: str) -> ModelPrice:
    """The deterministic price card for one model name.

    API models use their embedded list prices; models in the paper's
    scalability table are priced from measured GPU-seconds per
    question; anything else gets the default tier so custom backends
    are still billed (at a visible, documented rate).
    """
    with _PRICE_LOCK:
        cached = _PRICE_CACHE.get(model)
    if cached is not None:
        return cached
    if model in API_PRICES_USD_PER_1K:
        prompt, completion = API_PRICES_USD_PER_1K[model]
        price = ModelPrice(model, _per_1k_to_nanos(prompt),
                           _per_1k_to_nanos(completion),
                           basis="api-tier")
    else:
        price = _gpu_seconds_price(model)
    with _PRICE_LOCK:
        _PRICE_CACHE[model] = price
    return price


def _gpu_seconds_price(model: str) -> ModelPrice:
    """Price an offline model from the paper's Figure 7 latency."""
    from repro.errors import ModelError
    from repro.llm.costs import cost_estimate
    try:
        estimate = cost_estimate(model)
    except ModelError:
        prompt, completion = DEFAULT_PRICE_USD_PER_1K
        return ModelPrice(model, _per_1k_to_nanos(prompt),
                          _per_1k_to_nanos(completion),
                          basis="default")
    per_question_usd = (estimate.seconds_per_question
                        * GPU_HOUR_USD / 3600.0)
    per_token_nanos = round(per_question_usd * NANOS_PER_USD
                            / NOMINAL_TOKENS_PER_QUESTION)
    return ModelPrice(model, per_token_nanos, per_token_nanos,
                      basis="gpu-seconds")


def pricing_table(models) -> list[dict[str, object]]:
    """Price cards for a model list (``obs cost --prices``)."""
    return [price_for(model).as_row() for model in models]


def call_cost_nanos(model: str, prompt_tokens: int,
                    completion_tokens: int) -> int:
    """Exact cost of one call against the model's price card."""
    return price_for(model).cost_nanos(prompt_tokens,
                                       completion_tokens)


# ----------------------------------------------------------------------
# Engine middleware
# ----------------------------------------------------------------------
class CostMeter:
    """ChatModel wrapper billing every attempt that passes through.

    Stack position (see ``EvaluationEngine.wrap``): inside the retry
    loop — each re-attempt pays its prompt tokens again, exactly as a
    real endpoint would bill it — and inside the cache, so a hit never
    reaches this layer and costs nothing.  Completion tokens are
    billed only when the attempt returns; a transient fault or
    timeout still pays for the prompt it sent.

    ``telemetry`` is duck-typed: any object with
    ``record_tokens(prompt_tokens, completion_tokens, cost_nanos)``.
    """

    def __init__(self, inner, telemetry,
                 counter: Callable[[str], int] | None = None,
                 price: ModelPrice | None = None):
        self.inner = inner
        self.name = inner.name
        self._telemetry = telemetry
        self._count = (counter if counter is not None
                       else DEFAULT_TOKEN_COUNTER.resolve(inner.name))
        self._price = price if price is not None else price_for(
            inner.name)

    def generate(self, prompt: str) -> str:
        trail = current_trail()
        prompt_tokens = self._count(prompt)
        try:
            response = self.inner.generate(prompt)
        except Exception:
            nanos = self._price.cost_nanos(prompt_tokens, 0)
            self._telemetry.record_tokens(prompt_tokens, 0, nanos)
            if trail is not None:
                trail.note_cost(prompt_tokens, 0, nanos)
            raise
        completion_tokens = self._count(response)
        nanos = self._price.cost_nanos(prompt_tokens,
                                       completion_tokens)
        self._telemetry.record_tokens(prompt_tokens,
                                      completion_tokens, nanos)
        if trail is not None:
            trail.note_cost(prompt_tokens, completion_tokens, nanos)
        return response

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostMeter({self.inner!r})"


# ----------------------------------------------------------------------
# Budget enforcement
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BudgetStop:
    """Why (and where) a budget stopped a run."""

    reason: str
    limit: str
    spent_tokens: int
    spent_cost_nanos: int
    completed_cells: int

    @property
    def spent_cost_usd(self) -> float:
        return nanos_to_usd(self.spent_cost_nanos)

    def to_dict(self) -> dict[str, object]:
        return {"reason": self.reason, "limit": self.limit,
                "spent_tokens": self.spent_tokens,
                "spent_cost_nanos": self.spent_cost_nanos,
                "spent_cost_usd": self.spent_cost_usd,
                "completed_cells": self.completed_cells}


class BudgetGuard:
    """Per-run spend ceiling checked at cell boundaries.

    The driver asks :meth:`stop_reason` with the engine's live stats
    snapshot before starting each cell; a non-``None`` answer means
    "write a ``budget-exhausted`` event and stop here".  Stopping at
    the boundary keeps every completed cell bit-identical to an
    unbudgeted run, which is what lets ``resume_run`` finish the job
    to the same bytes later.
    """

    def __init__(self, max_cost_usd: float | None = None,
                 max_tokens: int | None = None):
        if max_cost_usd is not None and max_cost_usd <= 0:
            raise ValueError("max_cost_usd must be positive")
        if max_tokens is not None and max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        self.max_cost_nanos = (None if max_cost_usd is None
                               else usd_to_nanos(max_cost_usd))
        self.max_tokens = max_tokens

    @property
    def enabled(self) -> bool:
        return (self.max_cost_nanos is not None
                or self.max_tokens is not None)

    def stop_reason(self, stats: "EngineStats | None",
                    completed_cells: int) -> BudgetStop | None:
        """A :class:`BudgetStop` when the ceiling is hit, else None."""
        if stats is None or not self.enabled:
            return None
        tokens = stats.prompt_tokens + stats.completion_tokens
        if (self.max_cost_nanos is not None
                and stats.cost_nanos >= self.max_cost_nanos):
            return BudgetStop(
                reason=(f"cost {nanos_to_usd(stats.cost_nanos):.6f} "
                        f"USD reached max "
                        f"{nanos_to_usd(self.max_cost_nanos):.6f} "
                        f"USD"),
                limit="max_cost_usd", spent_tokens=tokens,
                spent_cost_nanos=stats.cost_nanos,
                completed_cells=completed_cells)
        if (self.max_tokens is not None
                and tokens >= self.max_tokens):
            return BudgetStop(
                reason=(f"{tokens} tokens reached max "
                        f"{self.max_tokens}"),
                limit="max_tokens", spent_tokens=tokens,
                spent_cost_nanos=stats.cost_nanos,
                completed_cells=completed_cells)
        return None


# ----------------------------------------------------------------------
# Per-cell aggregation (``repro obs cost``)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CostCell:
    """Token/cost totals of one (model, taxonomy, setting) cell."""

    model: str
    taxonomy: str
    setting: str
    questions: int
    prompt_tokens: int
    completion_tokens: int
    cost_nanos: int

    @property
    def tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def cost_usd(self) -> float:
        return nanos_to_usd(self.cost_nanos)

    def as_row(self) -> dict[str, object]:
        return {
            "model": self.model,
            "taxonomy": self.taxonomy,
            "setting": self.setting,
            "questions": self.questions,
            "prompt_tok": self.prompt_tokens,
            "completion_tok": self.completion_tokens,
            "cost_usd": f"{self.cost_usd:.6f}",
        }

    def to_dict(self) -> dict[str, object]:
        return {"model": self.model, "taxonomy": self.taxonomy,
                "setting": self.setting, "questions": self.questions,
                "prompt_tokens": self.prompt_tokens,
                "completion_tokens": self.completion_tokens,
                "cost_nanos": self.cost_nanos,
                "cost_usd": self.cost_usd}


class CostLedger:
    """A run's ledger records folded into per-cell cost totals.

    Record-level token counts are pure functions of the prompt and
    response text, so the fold is exact and identical no matter how
    the run executed (sequential, engine, sharded-and-merged).
    Records written before token accounting existed fold to zero —
    cost unknown, reported as 0.
    """

    def __init__(self, run_id: str, cells: list[CostCell]):
        self.run_id = run_id
        self.cells = cells

    # ------------------------------------------------------------------
    @classmethod
    def from_state(cls, run_id: str, state) -> "CostLedger":
        """Fold a replayed :class:`repro.runs.ledger.RunState`."""
        from repro.runs.driver import CellKey
        cells: list[CostCell] = []
        for cell_id in sorted(state.cells):
            cell_state = state.cells[cell_id]
            key = CellKey.parse(cell_id)
            if key is None:
                continue
            prompt = completion = 0
            for record in cell_state.records.values():
                prompt += getattr(record, "prompt_tokens", 0)
                completion += getattr(record, "completion_tokens", 0)
            cells.append(CostCell(
                model=key.model, taxonomy=key.taxonomy_key,
                setting=key.setting,
                questions=len(cell_state.records),
                prompt_tokens=prompt,
                completion_tokens=completion,
                cost_nanos=call_cost_nanos(key.model, prompt,
                                           completion)))
        return cls(run_id, cells)

    @classmethod
    def from_run(cls, run_id: str, registry=None) -> "CostLedger":
        """Fold a registered run's ledger (pure disk read)."""
        from repro.runs.registry import RunRegistry
        registry = (registry if registry is not None
                    else RunRegistry())
        registry.manifest(run_id)        # raises UnknownRunError
        return cls.from_state(run_id, registry.state(run_id))

    # ------------------------------------------------------------------
    @property
    def total_prompt_tokens(self) -> int:
        return sum(cell.prompt_tokens for cell in self.cells)

    @property
    def total_completion_tokens(self) -> int:
        return sum(cell.completion_tokens for cell in self.cells)

    @property
    def total_cost_nanos(self) -> int:
        return sum(cell.cost_nanos for cell in self.cells)

    @property
    def total_cost_usd(self) -> float:
        return nanos_to_usd(self.total_cost_nanos)

    def rows(self) -> list[dict[str, object]]:
        """Per-cell rows plus a TOTAL row (``format_rows`` shape)."""
        rows = [cell.as_row() for cell in self.cells]
        rows.append({
            "model": "TOTAL", "taxonomy": "", "setting": "",
            "questions": sum(c.questions for c in self.cells),
            "prompt_tok": self.total_prompt_tokens,
            "completion_tok": self.total_completion_tokens,
            "cost_usd": f"{self.total_cost_usd:.6f}",
        })
        return rows

    def to_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "cells": [cell.to_dict() for cell in self.cells],
            "totals": {
                "prompt_tokens": self.total_prompt_tokens,
                "completion_tokens": self.total_completion_tokens,
                "cost_nanos": self.total_cost_nanos,
                "cost_usd": self.total_cost_usd,
            },
        }

    def to_prometheus(self) -> str:
        """Labeled cost series in the text exposition format."""
        from repro.obs.export import escape_label_value
        lines = [
            "# HELP repro_run_cost_usd accumulated cost per cell",
            "# TYPE repro_run_cost_usd counter",
        ]
        for metric, attr in (
                ("repro_run_cost_usd", "cost_usd"),
                ("repro_run_prompt_tokens_total", "prompt_tokens"),
                ("repro_run_completion_tokens_total",
                 "completion_tokens")):
            if metric != "repro_run_cost_usd":
                lines.append(f"# HELP {metric} accumulated "
                             f"{attr} per cell")
                lines.append(f"# TYPE {metric} counter")
            for cell in self.cells:
                labels = ",".join(
                    f'{key}="{escape_label_value(value)}"'
                    for key, value in (
                        ("model", cell.model),
                        ("taxonomy", cell.taxonomy),
                        ("setting", cell.setting)))
                lines.append(
                    f"{metric}{{{labels}}} {getattr(cell, attr)}")
        return "\n".join(lines) + "\n"
