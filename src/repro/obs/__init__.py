"""repro.obs — spans, metric histograms and trace export.

The observability layer for the whole evaluation stack.  Four pieces:

* ``tracer`` — hierarchical span tracing (``run -> cell -> question ->
  model_call/retry/cache_lookup``; ``build -> taxonomy ->
  encode/write`` in the dataset store) with per-thread parenting,
  explicit cross-thread parents, cross-process span adoption and an
  injectable clock.  :data:`NULL_TRACER` is the free default.
* ``metrics`` — named counters, gauges and fixed-bucket histograms
  (p50/p90/p99 estimates, exact min/max) behind a
  :class:`MetricsRegistry`; the engine's ``Telemetry`` is a facade
  over one, and ``EngineStats`` is a compatibility snapshot of it.
* ``export`` — JSONL span logs persisted next to each run's ledger,
  Chrome ``trace_event`` JSON for chrome://tracing, Prometheus text.
* ``report`` — per-phase wall-clock attribution and an ASCII
  flamegraph for terminals.
* ``cost`` — deterministic token counting, per-model pricing, the
  engine's :class:`CostMeter` middleware, per-run budget enforcement
  (:class:`BudgetGuard`) and the per-cell :class:`CostLedger`.
* ``alerts`` — declarative SLO rules (:class:`AlertRule`) evaluated
  over live follower snapshots by an :class:`AlertEvaluator` with
  ``for_s`` debounce and firing/resolved transitions.
* ``trail`` — per-question provenance: a :class:`TrailContext` opened
  around each prompt that every engine layer annotates (retries,
  cache, coalescing, batching, replicas, cost), frozen to a
  :class:`Trail` on the question record, plus the predicate compiler
  behind ``repro obs grep`` and the :func:`trail_summary` analytics
  behind ``repro obs trails``.

Quickstart::

    >>> from repro.obs import Tracer, chrome_trace
    >>> from repro.runs import RunRequest, execute_run
    >>> tracer = Tracer()
    >>> result = execute_run(
    ...     RunRequest(models=("GPT-4",), taxonomy_keys=("ebay",),
    ...                sample_size=6), tracer=tracer)
    >>> names = {span.name for span in tracer.spans()}
    >>> {"run", "cell", "question"} <= names
    True
"""

from repro.obs.alerts import (DEFAULT_RULES, AlertEvaluator,
                              AlertEvent, AlertRule)
from repro.obs.cost import (DEFAULT_TOKEN_COUNTER, BudgetGuard,
                            BudgetStop, CostCell, CostLedger,
                            CostMeter, ModelPrice, TokenCounter,
                            call_cost_nanos, count_tokens,
                            nanos_to_usd, price_for, pricing_table,
                            usd_to_nanos)
from repro.obs.export import (JsonlSpanSink, chrome_trace,
                              escape_label_value, format_prometheus,
                              read_spans_jsonl, registry_from_spans,
                              span_tree, write_spans_jsonl)
from repro.obs.history import (CheckResult, HistoryEntry,
                               RegressionReport, Thresholds,
                               append_entry, check_entries,
                               entry_from_result, latest_for,
                               load_entry, read_history, write_entry)
from repro.obs.jsonl import (JsonlBatch, JsonlCorruptError, JsonlTail,
                             iter_jsonl)
from repro.obs.live import (CellProgress, LedgerFollower, RunProgress,
                            render_dashboard, watch_run)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge,
                               Histogram, MetricsRegistry,
                               global_registry)
from repro.obs.report import (flame_report, phase_chart, phase_rows,
                              phase_table)
from repro.obs.tracer import (NULL_TRACER, NullTracer, Span, Tracer)
from repro.obs.trail import (Trail, TrailContext, TrailQueryError,
                             call_site, call_site_scope,
                             compile_predicate, current_trail,
                             prompt_key, trail_env, trail_from_dict,
                             trail_scope, trail_summary,
                             trail_to_dict)

__all__ = [
    "AlertEvaluator",
    "AlertEvent",
    "AlertRule",
    "BudgetGuard",
    "BudgetStop",
    "CellProgress",
    "CheckResult",
    "CostCell",
    "CostLedger",
    "CostMeter",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_RULES",
    "DEFAULT_TOKEN_COUNTER",
    "Gauge",
    "Histogram",
    "HistoryEntry",
    "JsonlBatch",
    "JsonlCorruptError",
    "JsonlSpanSink",
    "JsonlTail",
    "LedgerFollower",
    "MetricsRegistry",
    "ModelPrice",
    "NULL_TRACER",
    "NullTracer",
    "RegressionReport",
    "RunProgress",
    "Span",
    "Thresholds",
    "TokenCounter",
    "Tracer",
    "Trail",
    "TrailContext",
    "TrailQueryError",
    "append_entry",
    "call_cost_nanos",
    "call_site",
    "call_site_scope",
    "check_entries",
    "chrome_trace",
    "compile_predicate",
    "configure_logging",
    "count_tokens",
    "current_trail",
    "entry_from_result",
    "escape_label_value",
    "flame_report",
    "format_prometheus",
    "get_logger",
    "global_registry",
    "iter_jsonl",
    "latest_for",
    "load_entry",
    "nanos_to_usd",
    "phase_chart",
    "phase_rows",
    "phase_table",
    "price_for",
    "pricing_table",
    "prompt_key",
    "read_history",
    "read_spans_jsonl",
    "registry_from_spans",
    "render_dashboard",
    "span_tree",
    "trail_env",
    "trail_from_dict",
    "trail_scope",
    "trail_summary",
    "trail_to_dict",
    "usd_to_nanos",
    "watch_run",
    "write_entry",
    "write_spans_jsonl",
]
