"""Stdlib logging under the ``repro.*`` logger hierarchy.

Every module that logs does so through ``logging.getLogger("repro.<its
dotted path>")``; this module owns the single place that attaches a
handler, so importing repro never configures logging behind a host
application's back (library best practice: loggers, no handlers).

:func:`configure_logging` is what the CLI's ``--verbose`` / ``--quiet``
flags call: verbosity ``-1`` shows only errors, ``0`` (default)
warnings — recoveries from corruption, torn ledger lines — ``1``
retries/faults/cache traffic at INFO, and ``2`` everything.  Repeated
calls reconfigure the same handler instead of stacking duplicates.
"""

from __future__ import annotations

import logging
import sys

#: Root of the project's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

_LEVELS = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO,
           2: logging.DEBUG}

_FORMAT = "%(levelname)s %(name)s: %(message)s"

_handler: logging.Handler | None = None


def get_logger(name: str = "") -> logging.Logger:
    """``repro``-rooted logger (``get_logger("engine.retry")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0,
                      stream=None) -> logging.Logger:
    """Attach (or retune) the one stderr handler on ``repro``.

    Args:
        verbosity: -1 quiet, 0 default, 1 verbose, >=2 debug.
        stream: Injectable output (tests pass a StringIO).
    """
    global _handler
    level = _LEVELS.get(max(-1, min(2, verbosity)), logging.DEBUG)
    root = get_logger()
    if _handler is not None and _handler in root.handlers:
        root.removeHandler(_handler)
    _handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr)
    _handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(_handler)
    root.setLevel(level)
    root.propagate = False
    return root
