"""Live run monitoring: tail a running run's ledger into a snapshot.

``repro.runs`` gave the stack durable *post-hoc* observability — a
finished (or crashed) run replays from disk.  This module closes the
remaining gap: watching a run *while it executes*.  The
:class:`LedgerFollower` incrementally tails the run's ``ledger.jsonl``
and ``spans.jsonl`` through the shared offset-aware
:func:`repro.obs.jsonl.iter_jsonl` (so each poll reads only the bytes
appended since the last one, and a torn in-flight append is simply
retried), folds the events through the same ``_apply`` the replayer
uses (the snapshot therefore *converges to exactly the post-hoc
``load_run`` state*), and augments them with the heartbeat
``execute_run``/``resume_run`` keep fresh:

* per-cell progress and accuracy-so-far;
* throughput and an ETA from the span-derived per-question latency
  histogram (falling back to observed throughput when tracing is
  off);
* retry / fault counts streamed out of the span log;
* a stall watchdog: a run whose ledger, span log and heartbeat have
  all sat still past the deadline is flagged ``stalled``.

``repro watch <run-id>`` renders the snapshot as an in-place ASCII
dashboard (``--once`` for a single frame, ``--json`` for machines).
The follower never locks or writes anything in the run directory, so
its cost to the run is only filesystem read pressure — the
``bench_watch_overhead`` benchmark gates it at <=5% added wall time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import LedgerCorruptError
from repro.obs.cost import call_cost_nanos
from repro.obs.jsonl import JsonlTail
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram
from repro.obs.tracer import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.runs.registry import RunRegistry

#: Width of the dashboard's per-cell progress bars.
BAR_WIDTH = 24


@dataclass(slots=True)
class CellProgress:
    """One sweep cell as the follower currently sees it."""

    cell_id: str
    expected: int
    done: int
    correct: int
    complete: bool

    @property
    def fraction(self) -> float:
        if self.expected <= 0:
            return 1.0 if self.complete else 0.0
        return min(1.0, self.done / self.expected)

    @property
    def accuracy(self) -> float:
        """Accuracy over the questions recorded *so far*."""
        if self.done == 0:
            return 0.0
        return self.correct / self.done

    def to_dict(self) -> dict[str, object]:
        return {
            "cell": self.cell_id,
            "expected": self.expected,
            "done": self.done,
            "correct": self.correct,
            "accuracy": self.accuracy,
            "complete": self.complete,
        }


@dataclass(slots=True)
class RunProgress:
    """One follower snapshot of a (possibly still running) run."""

    run_id: str
    status: str                       # running | stalled | finished
    attempts: int
    finished: bool
    cells_planned: int
    cells_started: int
    cells_done: int
    questions_done: int
    questions_planned: int            # estimated for unstarted cells
    correct: int
    retries: int
    faults: int
    spans: int
    elapsed_s: float
    throughput: float                 # questions / wall second so far
    eta_s: float | None               # None once finished / no basis
    latency_p50_s: float
    latency_p99_s: float
    heartbeat_age_s: float | None     # None when no heartbeat exists
    progress_age_s: float | None      # since the ledger last advanced
    stall_deadline_s: float
    #: Token/cost accounting over the records streamed so far —
    #: priced from the record token counts, so the totals are live
    #: long before the run-finished stats snapshot exists (and 0 on
    #: ledgers that predate cost metering).
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_nanos: int = 0
    #: Budget-exhausted payload once a spend ceiling stopped the run.
    budget: dict | None = None
    cells: list[CellProgress] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Accuracy over every question recorded so far."""
        if self.questions_done == 0:
            return 0.0
        return self.correct / self.questions_done

    @property
    def fraction(self) -> float:
        if self.questions_planned <= 0:
            return 1.0 if self.finished else 0.0
        return min(1.0, self.questions_done / self.questions_planned)

    @property
    def cost_usd(self) -> float:
        return self.cost_nanos / 1e9

    def to_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "status": self.status,
            "attempts": self.attempts,
            "finished": self.finished,
            "cells_planned": self.cells_planned,
            "cells_started": self.cells_started,
            "cells_done": self.cells_done,
            "questions_done": self.questions_done,
            "questions_planned": self.questions_planned,
            "correct": self.correct,
            "accuracy": self.accuracy,
            "retries": self.retries,
            "faults": self.faults,
            "spans": self.spans,
            "elapsed_s": self.elapsed_s,
            "throughput": self.throughput,
            "eta_s": self.eta_s,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "heartbeat_age_s": self.heartbeat_age_s,
            "progress_age_s": self.progress_age_s,
            "stall_deadline_s": self.stall_deadline_s,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "cost_nanos": self.cost_nanos,
            "cost_usd": self.cost_usd,
            "budget": self.budget,
            "cells": [cell.to_dict() for cell in self.cells],
        }


class LedgerFollower:
    """Incremental tail over one run's ledger + span log.

    Construct once, call :meth:`poll` repeatedly: each poll consumes
    only the bytes appended since the last one (stateful offsets per
    file) and returns a fresh :class:`RunProgress`.  Events fold
    through the replayer's own ``_apply``, so after the writer stops
    the snapshot is exactly what ``replay_ledger``/``load_run`` would
    reconstruct — the concurrent-follow tests assert that
    convergence.  The follower is strictly read-only.

    One follower may be shared by many concurrent readers (the serve
    layer fans a single follower out to N SSE subscribers): ``poll``
    serializes under an internal lock, so the stateful file offsets
    and fold state never tear, and every caller sees a snapshot at
    least as fresh as the ledger was when its poll started.
    """

    def __init__(self, run_id: str,
                 registry: "RunRegistry | None" = None,
                 stall_deadline_s: float | None = None,
                 clock=time.time):
        # Deferred: repro.runs imports repro.obs at package level, so
        # the dependency must stay call-time-only in this direction.
        from repro.runs.heartbeat import (DEFAULT_STALL_DEADLINE_S,
                                          read_heartbeat)
        from repro.runs.ledger import RunState, _apply
        from repro.runs.registry import RunRegistry
        self.registry = (registry if registry is not None
                         else RunRegistry())
        self.run_id = run_id
        self.stall_deadline_s = (DEFAULT_STALL_DEADLINE_S
                                 if stall_deadline_s is None
                                 else stall_deadline_s)
        self._apply = _apply
        self._read_heartbeat = read_heartbeat
        self._clock = clock
        self._lock = threading.Lock()
        manifest = self.registry.manifest(run_id)  # raises if unknown
        self._cells_planned = int(manifest.get("cells", 0))
        request = manifest.get("request", {})
        self._workers = max(1, int(request.get("workers", 1)))
        self._created_at = float(manifest.get("created_at", 0.0))
        self._ledger = JsonlTail(self.registry.ledger_path(run_id))
        self._spans = JsonlTail(self.registry.spans_path(run_id))
        self.state = RunState(run_id=run_id)
        self._started_ts: float | None = None
        self._finished_ts: float | None = None
        self._latency = Histogram("question_latency_s",
                                  bounds=DEFAULT_BUCKETS)
        self._retries = 0
        self._faults = 0
        self._span_count = 0

    # ------------------------------------------------------------------
    def _ingest_ledger(self) -> None:
        for payload in self._ledger.poll():
            kind = payload.get("event")
            if kind == "run-started" and self._started_ts is None:
                self._started_ts = float(payload.get("ts") or 0.0)
            elif kind == "run-finished":
                self._finished_ts = float(payload.get("ts") or 0.0)
            try:
                self._apply(self.state, payload)
            except (KeyError, TypeError, ValueError) as exc:
                raise LedgerCorruptError(
                    str(self._ledger.path), self._ledger.next_line,
                    repr(exc)) from exc
            self.state.events += 1

    def _ingest_spans(self) -> None:
        for payload in self._spans.poll():
            try:
                span = Span.from_dict(payload)
            except (KeyError, TypeError, ValueError):
                continue            # foreign span shape: skip, don't die
            self._span_count += 1
            if span.end_s is None:
                continue
            if span.name == "question":
                self._latency.observe(span.duration_s)
            elif span.name == "retry":
                self._retries += 1
                if span.attrs.get("fault"):
                    self._faults += 1

    # ------------------------------------------------------------------
    def poll(self) -> RunProgress:
        """Consume everything appended since the last poll and
        snapshot the run.  Safe to call from many threads."""
        with self._lock:
            return self._poll_locked()

    def _poll_locked(self) -> RunProgress:
        self._ingest_ledger()
        self._ingest_spans()
        now = self._clock()

        cells: list[CellProgress] = []
        questions_done = 0
        correct = 0
        expected_started = 0
        prompt_tokens = 0
        completion_tokens = 0
        cost_nanos = 0
        for cell_id, cell_state in self.state.cells.items():
            done = len(cell_state.records)
            cell_correct = sum(
                1 for record in cell_state.records.values()
                if record.correct)
            cells.append(CellProgress(
                cell_id=cell_id, expected=cell_state.expected_n,
                done=done, correct=cell_correct,
                complete=cell_state.complete))
            questions_done += done
            correct += cell_correct
            expected_started += cell_state.expected_n
            cell_prompt = sum(record.prompt_tokens
                              for record in
                              cell_state.records.values())
            cell_completion = sum(record.completion_tokens
                                  for record in
                                  cell_state.records.values())
            prompt_tokens += cell_prompt
            completion_tokens += cell_completion
            # Per-token pricing is linear, so pricing the cell's token
            # sums equals summing per-record costs — one lookup per
            # cell instead of one per record.
            cost_nanos += call_cost_nanos(
                cell_id.split("|", 1)[0], cell_prompt,
                cell_completion)

        cells_started = len(cells)
        cells_done = sum(1 for cell in cells if cell.complete)
        # Unstarted cells are estimated at the mean size of the
        # started ones — the planner's cells are near-uniform.
        remaining_cells = max(0, self._cells_planned - cells_started)
        mean_expected = (expected_started / cells_started
                         if cells_started else 0)
        questions_planned = int(round(
            expected_started + remaining_cells * mean_expected))

        started = self._started_ts or self._created_at or now
        end = self._finished_ts if self.state.finished else now
        elapsed = max(0.0, (end or now) - started)
        throughput = (questions_done / elapsed if elapsed > 0 else 0.0)

        eta: float | None = None
        if not self.state.finished:
            remaining = max(0, questions_planned - questions_done)
            if self._latency.count > 0:
                eta = (remaining * self._latency.mean
                       / self._workers)
            elif throughput > 0:
                eta = remaining / throughput

        heartbeat = self._read_heartbeat(
            self.registry.heartbeat_path(self.run_id))
        heartbeat_age = (now - float(heartbeat["ts"])
                         if heartbeat else None)
        progress_ts = self.registry.progress_ts(self.run_id)
        progress_age = (now - progress_ts
                        if progress_ts is not None else None)

        if self.state.finished:
            status = "finished"
        else:
            # Stalled only when *neither* the ledger nor the
            # heartbeat advances within the deadline.  No pid check
            # here: the watcher may not share a host with the run.
            ages = [age for age in (heartbeat_age, progress_age)
                    if age is not None]
            fresh = min(ages) if ages else now - started
            status = ("stalled" if fresh > self.stall_deadline_s
                      else "running")

        return RunProgress(
            run_id=self.run_id, status=status,
            attempts=self.state.attempts,
            finished=self.state.finished,
            cells_planned=self._cells_planned,
            cells_started=cells_started, cells_done=cells_done,
            questions_done=questions_done,
            questions_planned=questions_planned, correct=correct,
            retries=self._retries, faults=self._faults,
            spans=self._span_count, elapsed_s=elapsed,
            throughput=throughput, eta_s=eta,
            latency_p50_s=self._latency.quantile(0.50),
            latency_p99_s=self._latency.quantile(0.99),
            heartbeat_age_s=heartbeat_age,
            progress_age_s=progress_age,
            stall_deadline_s=self.stall_deadline_s,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens,
            cost_nanos=cost_nanos,
            budget=self.state.budget,
            cells=sorted(cells, key=lambda cell: cell.cell_id))


# ----------------------------------------------------------------------
# ASCII dashboard
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    filled = int(round(min(1.0, max(0.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _age(seconds: float | None) -> str:
    if seconds is None:
        return "never"
    return f"{seconds:.1f}s ago"


def _eta(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_dashboard(progress: RunProgress) -> str:
    """The ``repro watch`` frame: header, totals, per-cell bars."""
    lines = [
        (f"run {progress.run_id} [{progress.status}] "
         f"attempt {max(1, progress.attempts)} — "
         f"{progress.cells_done}/{progress.cells_planned} cells, "
         f"{progress.questions_done}/{progress.questions_planned} "
         f"questions ({progress.fraction * 100:.1f}%)"),
        (f"accuracy {progress.accuracy:.3f} · "
         f"{progress.throughput:.1f} q/s · "
         f"p50 {progress.latency_p50_s * 1e3:.1f}ms · "
         f"p99 {progress.latency_p99_s * 1e3:.1f}ms · "
         f"retries {progress.retries} · faults {progress.faults} · "
         f"cost ${progress.cost_usd:.4f} · "
         f"eta {_eta(progress.eta_s)}"),
        (f"heartbeat {_age(progress.heartbeat_age_s)} · "
         f"ledger {_age(progress.progress_age_s)} · "
         f"stall deadline {progress.stall_deadline_s:.0f}s"),
    ]
    if progress.status == "stalled":
        lines.append("!! stalled: neither ledger nor heartbeat "
                     "advanced within the deadline")
    if progress.budget:
        lines.append("!! budget exhausted: the run stopped at a cell "
                     "boundary — `repro runs resume` completes it")
    width = max((len(cell.cell_id) for cell in progress.cells),
                default=0)
    for cell in progress.cells:
        marker = ("done" if cell.complete
                  else f"{cell.fraction * 100:3.0f}%")
        lines.append(
            f"{cell.cell_id.ljust(width)} {_bar(cell.fraction)} "
            f"{cell.done}/{cell.expected} acc {cell.accuracy:.3f} "
            f"{marker}")
    if not progress.cells:
        lines.append("(no cells recorded yet)")
    return "\n".join(lines)


def watch_run(run_id: str, registry: "RunRegistry | None" = None,
              interval_s: float = 1.0,
              stall_deadline_s: float | None = None,
              clock=time.time,
              render=render_dashboard,
              emit=None,
              until_finished: bool = True,
              evaluator=None) -> RunProgress:
    """Poll + render in place until the run finishes (or forever).

    ``emit`` receives each rendered frame (defaults to printing with
    an ANSI home+clear prefix so the dashboard redraws in place);
    returns the final snapshot.  ``evaluator`` is an optional
    :class:`repro.obs.alerts.AlertEvaluator`: each snapshot is fed
    through it and any firing rules are prepended to the frame as an
    alert banner (transitions are logged by the evaluator itself).
    """
    follower = LedgerFollower(run_id, registry=registry,
                              stall_deadline_s=stall_deadline_s,
                              clock=clock)

    def _print(frame: str) -> None:  # pragma: no cover - terminal io
        print("\x1b[H\x1b[2J" + frame, flush=True)

    emit = emit if emit is not None else _print
    while True:
        progress = follower.poll()
        frame = render(progress)
        if evaluator is not None:
            evaluator.observe(progress)
            banner = evaluator.banner()
            if banner:
                frame = banner + "\n" + frame
        emit(frame)
        if until_finished and progress.finished:
            return progress
        time.sleep(interval_s)
