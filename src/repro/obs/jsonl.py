"""Shared offset-aware JSONL reading with torn-tail tolerance.

Three consumers read append-only JSONL logs written one ``write()``
per line: the run ledger's replayer, the span log reader and the live
:class:`repro.obs.live.LedgerFollower`.  All three face the same crash
signature — a final line whose append died partway — and the follower
additionally has to resume from a byte offset so each poll reads only
what was appended since the last one.  This module is the single
implementation of that contract:

* a *complete* line (newline-terminated, with more complete lines
  after it) that fails to decode is corruption and raises
  :class:`JsonlCorruptError`;
* the *final* line — torn mid-append (no trailing newline) or
  undecodable — is never consumed: the returned offset stops right
  before it, so a one-shot reader can drop it with a warning while a
  follower simply retries once the writer's append completes.

:func:`iter_jsonl` is the stateless one-shot form; :class:`JsonlTail`
keeps the ``(offset, line number)`` cursor between polls.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


class JsonlCorruptError(ValueError):
    """A non-final line of a JSONL log failed to decode."""

    def __init__(self, path: str, line_number: int, reason: str):
        self.path = path
        self.line_number = line_number
        self.reason = reason
        super().__init__(
            f"corrupt JSONL log {path} at line {line_number}: "
            f"{reason}")


@dataclass(slots=True)
class JsonlBatch:
    """One read of a JSONL log from a byte offset to EOF."""

    #: ``(line number, decoded payload)`` pairs, in file order.
    records: list[tuple[int, dict]] = field(default_factory=list)
    #: Byte offset just past the last *consumed* line.
    offset: int = 0
    #: Line number the next consumed line will carry.
    next_line: int = 1
    #: An unconsumed tail exists (torn append or undecodable final
    #: line); it starts at :attr:`offset`.
    torn: bool = False
    #: Line number of the unconsumed tail, when ``torn``.
    torn_line: int | None = None

    @property
    def payloads(self) -> list[dict]:
        return [payload for _, payload in self.records]


def iter_jsonl(path: str | Path, offset: int = 0,
               start_line: int = 1) -> JsonlBatch:
    """Read ``path`` from byte ``offset``, decoding complete lines.

    ``start_line`` seeds the reported line numbers so a resumed read
    keeps file-absolute positions in its error messages.  Raises
    :class:`JsonlCorruptError` for an undecodable line that has
    complete lines after it; the final line is instead left
    unconsumed (``torn=True``).
    """
    with open(path, "rb") as stream:
        stream.seek(offset)
        data = stream.read()
    batch = JsonlBatch(offset=offset, next_line=start_line)
    position = 0
    pending: tuple[int, int, str] | None = None  # line, end, reason
    while True:
        newline = data.find(b"\n", position)
        if newline < 0:
            break
        line = data[position:newline]
        end = offset + newline + 1
        line_number = batch.next_line
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            if pending is not None:
                raise JsonlCorruptError(str(path), pending[0],
                                        pending[2])
            batch.offset = end
            batch.next_line += 1
            position = newline + 1
            continue
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError(f"expected object, got "
                                 f"{type(payload).__name__}")
        except ValueError as exc:
            # Defer the verdict: only corruption if a later complete
            # line proves the log continued past this one.
            if pending is not None:
                raise JsonlCorruptError(str(path), pending[0],
                                        pending[2])
            pending = (line_number, end, repr(exc))
            position = newline + 1
            continue
        if pending is not None:
            raise JsonlCorruptError(str(path), pending[0], pending[2])
        batch.records.append((line_number, payload))
        batch.offset = end
        batch.next_line += 1
        position = newline + 1
    if pending is not None:
        batch.torn = True
        batch.torn_line = pending[0]
    elif position < len(data):
        # Trailing bytes without a newline: an append in flight (or
        # the crash signature).  Never consumed.
        batch.torn = True
        batch.torn_line = batch.next_line
    return batch


class JsonlTail:
    """Stateful cursor over a growing JSONL log.

    Each :meth:`poll` returns only the payloads appended (and
    completed) since the previous poll; a torn tail is retried on the
    next call once the writer finishes the line.  A missing file is
    simply "nothing yet".
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0
        self.next_line = 1
        self.torn = False

    def poll(self) -> list[dict]:
        if not self.path.exists():
            return []
        batch = iter_jsonl(self.path, offset=self.offset,
                           start_line=self.next_line)
        self.offset = batch.offset
        self.next_line = batch.next_line
        self.torn = batch.torn
        return batch.payloads
