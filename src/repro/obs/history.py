"""Cross-run history and the CI regression gate.

Every completed run folds one line into an append-only
``history.jsonl`` in the runs registry root: accuracy per cell, wall
time, throughput, p50/p99 latency and cache hit rate.  The file is the
registry's metric *time series* — where ``runs diff`` answers "what
changed between these two runs?", history answers "how has this sweep
been trending?" and, gated by :func:`check_entries`, "did the latest
run regress past what we tolerate?".

``repro obs history`` lists the series; ``repro obs check --baseline
<run-id>`` compares the latest entry against a baseline with
configurable thresholds — accuracy drop in percentage points,
throughput drop in percent, p99 latency blowup in percent, run cost
blowup in percent — and exits
non-zero on violation, which is what ``scripts/check.sh`` and CI wire
in as an SLO gate against a committed baseline entry.
"""

from __future__ import annotations

import json
import logging
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from typing import TYPE_CHECKING

from repro.errors import RunError
from repro.obs.jsonl import iter_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.runs.registry import RunRegistry

_log = logging.getLogger("repro.obs.history")


def _default_registry() -> "RunRegistry":
    # Deferred: repro.runs imports repro.obs at package level, so the
    # dependency must stay call-time-only in this direction.
    from repro.runs.registry import RunRegistry
    return RunRegistry()


@dataclass(frozen=True, slots=True)
class HistoryEntry:
    """One completed run, folded to the metrics worth trending."""

    run_id: str
    finished_at: float
    dataset: str
    attempts: int
    cells: int
    questions: int
    #: Question-weighted accuracy over every cell.
    accuracy: float
    wall_time_s: float
    throughput: float
    latency_p50_s: float
    latency_p99_s: float
    cache_hit_rate: float
    retries: int = 0
    faults: int = 0
    #: Batched-engine counters (0 on runs and ledgers that predate
    #: the batching core — the schema is backward-compatible).
    batches: int = 0
    coalesced: int = 0
    hedged: int = 0
    #: Shard fan-out the run executed with (1 = single process), so
    #: check baselines recorded at different fan-outs stay
    #: distinguishable even though their metrics must be identical.
    shards: int = 1
    #: Token/cost accounting (0 on entries and ledgers that predate
    #: cost metering — the schema is backward-compatible and the
    #: gate skips a cost check whose baseline is zero).
    prompt_tokens: int = 0
    completion_tokens: int = 0
    cost_nanos: int = 0
    #: Per-cell accuracy (cell id -> accuracy), the unit the
    #: regression gate compares.
    cell_accuracy: dict[str, float] = field(default_factory=dict)

    @property
    def cost_usd(self) -> float:
        return self.cost_nanos / 1e9

    def to_dict(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "finished_at": self.finished_at,
            "dataset": self.dataset,
            "attempts": self.attempts,
            "cells": self.cells,
            "questions": self.questions,
            "accuracy": self.accuracy,
            "wall_time_s": self.wall_time_s,
            "throughput": self.throughput,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "cache_hit_rate": self.cache_hit_rate,
            "retries": self.retries,
            "faults": self.faults,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "hedged": self.hedged,
            "shards": self.shards,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "cost_nanos": self.cost_nanos,
            "cell_accuracy": dict(self.cell_accuracy),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "HistoryEntry":
        try:
            return cls(
                run_id=str(payload["run_id"]),
                finished_at=float(payload["finished_at"]),
                dataset=str(payload.get("dataset", "")),
                attempts=int(payload.get("attempts", 1)),
                cells=int(payload["cells"]),
                questions=int(payload["questions"]),
                accuracy=float(payload["accuracy"]),
                wall_time_s=float(payload.get("wall_time_s", 0.0)),
                throughput=float(payload.get("throughput", 0.0)),
                latency_p50_s=float(payload.get("latency_p50_s", 0.0)),
                latency_p99_s=float(payload.get("latency_p99_s", 0.0)),
                cache_hit_rate=float(payload.get("cache_hit_rate",
                                                 0.0)),
                retries=int(payload.get("retries", 0)),
                faults=int(payload.get("faults", 0)),
                batches=int(payload.get("batches", 0)),
                coalesced=int(payload.get("coalesced", 0)),
                hedged=int(payload.get("hedged", 0)),
                shards=int(payload.get("shards", 1)),
                prompt_tokens=int(payload.get("prompt_tokens", 0)),
                completion_tokens=int(payload.get("completion_tokens",
                                                  0)),
                cost_nanos=int(payload.get("cost_nanos", 0)),
                cell_accuracy={
                    str(cell): float(acc)
                    for cell, acc in dict(
                        payload.get("cell_accuracy") or {}).items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunError(
                f"malformed history entry: {exc}") from exc

    def as_row(self) -> dict[str, object]:
        return {
            "run_id": self.run_id,
            "finished_at": time.strftime(
                "%Y-%m-%d %H:%M:%S",
                time.localtime(self.finished_at)),
            "dataset": self.dataset,
            "cells": self.cells,
            "questions": self.questions,
            "shards": self.shards,
            "accuracy": f"{self.accuracy:.3f}",
            "wall_s": f"{self.wall_time_s:.3f}",
            "q_per_s": f"{self.throughput:.1f}",
            "p50_ms": f"{self.latency_p50_s * 1e3:.2f}",
            "p99_ms": f"{self.latency_p99_s * 1e3:.2f}",
            "hit_rate": f"{self.cache_hit_rate:.3f}",
            "tokens": self.prompt_tokens + self.completion_tokens,
            "cost_usd": f"{self.cost_usd:.4f}",
            "batches": self.batches,
            "coalesced": self.coalesced,
            "hedged": self.hedged,
        }


# ----------------------------------------------------------------------
# Building and persisting entries
# ----------------------------------------------------------------------
def entry_from_result(run_id: str, dataset: str,
                      cell_metrics: Mapping[str, object],
                      stats=None, attempts: int = 1,
                      finished_at: float | None = None,
                      shards: int = 1) -> HistoryEntry:
    """Fold a completed run into one history entry.

    ``cell_metrics`` maps cell id -> :class:`repro.core.metrics
    .Metrics`; ``stats`` is the run's :class:`EngineStats` snapshot
    (``None`` degrades the perf fields to zero rather than failing —
    the accuracy series must survive stats-less ledgers).
    """
    questions = sum(metrics.n for metrics in cell_metrics.values())
    weighted = sum(metrics.accuracy * metrics.n
                   for metrics in cell_metrics.values())
    return HistoryEntry(
        run_id=run_id,
        finished_at=(time.time() if finished_at is None
                     else finished_at),
        dataset=dataset,
        attempts=max(1, attempts),
        cells=len(cell_metrics),
        questions=questions,
        accuracy=(weighted / questions if questions else 0.0),
        wall_time_s=(stats.wall_time_s if stats else 0.0),
        throughput=(stats.throughput if stats else 0.0),
        latency_p50_s=(stats.latency_p50_s if stats else 0.0),
        latency_p99_s=(stats.latency_p99_s if stats else 0.0),
        cache_hit_rate=(stats.cache_hit_rate if stats else 0.0),
        retries=(stats.retries if stats else 0),
        faults=(stats.faults if stats else 0),
        batches=(getattr(stats, "batches", 0) if stats else 0),
        coalesced=(getattr(stats, "coalesced", 0) if stats else 0),
        hedged=(getattr(stats, "hedged", 0) if stats else 0),
        shards=max(1, shards),
        prompt_tokens=(getattr(stats, "prompt_tokens", 0)
                       if stats else 0),
        completion_tokens=(getattr(stats, "completion_tokens", 0)
                           if stats else 0),
        cost_nanos=(getattr(stats, "cost_nanos", 0) if stats else 0),
        cell_accuracy={cell_id: metrics.accuracy
                       for cell_id, metrics
                       in sorted(cell_metrics.items())},
    )


def append_entry(entry: HistoryEntry,
                 registry: "RunRegistry | None" = None) -> Path:
    """Append one entry to the registry's ``history.jsonl``.

    Single ``write()`` of one line in append mode — the same
    torn-line crash contract as the ledger itself.
    """
    registry = (registry if registry is not None
                else _default_registry())
    path = registry.history_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry.to_dict(), separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(line)
        stream.flush()
    return path


def read_history(registry: "RunRegistry | None" = None
                 ) -> list[HistoryEntry]:
    """Every history entry, oldest first; torn tail tolerated."""
    registry = (registry if registry is not None
                else _default_registry())
    path = registry.history_path()
    if not path.exists():
        return []
    batch = iter_jsonl(path)
    if batch.torn:
        _log.warning("torn-history-line dropped path=%s line=%d",
                     path, batch.torn_line)
    entries = []
    for _, payload in batch.records:
        try:
            entries.append(HistoryEntry.from_dict(payload))
        except RunError:
            continue        # forward-compatible skip of alien shapes
    return entries


def load_entry(path: str | Path) -> HistoryEntry:
    """A single entry from a standalone JSON file (the committed
    CI baseline)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise RunError(f"cannot load baseline {path}: {exc}") from exc
    return HistoryEntry.from_dict(payload)


def write_entry(entry: HistoryEntry, path: str | Path) -> Path:
    """Persist one entry as a standalone baseline file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(entry.to_dict(), indent=1) + "\n",
                      encoding="utf-8")
    return target


def latest_for(entries: list[HistoryEntry],
               run_id: str | None = None) -> HistoryEntry | None:
    """Newest entry (optionally restricted to one run id)."""
    for entry in reversed(entries):
        if run_id is None or entry.run_id == run_id:
            return entry
    return None


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Thresholds:
    """What the gate tolerates between baseline and candidate."""

    #: Maximum accuracy drop, in percentage points (overall and
    #: per shared cell).
    accuracy_drop_pts: float = 1.0
    #: Maximum throughput drop, percent of the baseline.
    throughput_drop_pct: float = 50.0
    #: Maximum p99 latency increase, percent of the baseline.
    p99_blowup_pct: float = 200.0
    #: Maximum run-cost increase, percent of the baseline.
    cost_blowup_pct: float = 20.0
    #: Maximum cache-hit-rate drop, in percentage points.  A silent
    #: cache regression shows up as cost/latency later; gating the
    #: rate itself catches it at the source.
    cache_hit_drop_pts: float = 10.0


@dataclass(frozen=True, slots=True)
class CheckResult:
    """One gate comparison (a metric, possibly scoped to a cell)."""

    metric: str
    scope: str
    baseline: float
    candidate: float
    delta: float                       # in the threshold's unit
    limit: float
    ok: bool

    def as_row(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "scope": self.scope,
            "baseline": f"{self.baseline:.4f}",
            "candidate": f"{self.candidate:.4f}",
            "delta": f"{self.delta:+.2f}",
            "limit": f"{self.limit:.2f}",
            "verdict": "ok" if self.ok else "FAIL",
        }

    def to_dict(self) -> dict[str, object]:
        return {
            "metric": self.metric, "scope": self.scope,
            "baseline": self.baseline, "candidate": self.candidate,
            "delta": self.delta, "limit": self.limit, "ok": self.ok,
        }


@dataclass(frozen=True, slots=True)
class RegressionReport:
    """The gate's full verdict for one baseline/candidate pair."""

    baseline_id: str
    candidate_id: str
    checks: tuple[CheckResult, ...]
    thresholds: Thresholds

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def rows(self) -> list[dict[str, object]]:
        return [check.as_row() for check in self.checks]

    def to_dict(self) -> dict[str, object]:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }


def check_entries(baseline: HistoryEntry, candidate: HistoryEntry,
                  thresholds: Thresholds | None = None
                  ) -> RegressionReport:
    """Compare a candidate entry against a baseline.

    Accuracy is checked overall *and* per shared cell (a regression
    confined to one model x taxonomy cell must not hide inside a flat
    average); throughput and p99 latency are checked overall.  A
    perf check whose baseline is zero (stats-less ledger) is skipped
    rather than failed.
    """
    thresholds = thresholds if thresholds is not None else Thresholds()
    checks: list[CheckResult] = []

    def accuracy_check(scope: str, base: float, cand: float) -> None:
        drop_pts = (base - cand) * 100.0
        checks.append(CheckResult(
            metric="accuracy_drop_pts", scope=scope, baseline=base,
            candidate=cand, delta=drop_pts,
            limit=thresholds.accuracy_drop_pts,
            ok=drop_pts <= thresholds.accuracy_drop_pts))

    accuracy_check("overall", baseline.accuracy, candidate.accuracy)
    for cell_id, base_acc in baseline.cell_accuracy.items():
        cand_acc = candidate.cell_accuracy.get(cell_id)
        if cand_acc is None:
            continue
        accuracy_check(cell_id, base_acc, cand_acc)

    if baseline.throughput > 0:
        drop_pct = (1.0 - candidate.throughput
                    / baseline.throughput) * 100.0
        checks.append(CheckResult(
            metric="throughput_drop_pct", scope="overall",
            baseline=baseline.throughput,
            candidate=candidate.throughput, delta=drop_pct,
            limit=thresholds.throughput_drop_pct,
            ok=drop_pct <= thresholds.throughput_drop_pct))

    if baseline.latency_p99_s > 0:
        blowup_pct = (candidate.latency_p99_s
                      / baseline.latency_p99_s - 1.0) * 100.0
        checks.append(CheckResult(
            metric="p99_blowup_pct", scope="overall",
            baseline=baseline.latency_p99_s,
            candidate=candidate.latency_p99_s, delta=blowup_pct,
            limit=thresholds.p99_blowup_pct,
            ok=blowup_pct <= thresholds.p99_blowup_pct))

    if baseline.cost_nanos > 0:
        cost_pct = (candidate.cost_nanos
                    / baseline.cost_nanos - 1.0) * 100.0
        checks.append(CheckResult(
            metric="cost_blowup_pct", scope="overall",
            baseline=baseline.cost_usd,
            candidate=candidate.cost_usd, delta=cost_pct,
            limit=thresholds.cost_blowup_pct,
            ok=cost_pct <= thresholds.cost_blowup_pct))

    if baseline.cache_hit_rate > 0:
        drop_pts = (baseline.cache_hit_rate
                    - candidate.cache_hit_rate) * 100.0
        checks.append(CheckResult(
            metric="cache_hit_drop_pts", scope="overall",
            baseline=baseline.cache_hit_rate,
            candidate=candidate.cache_hit_rate, delta=drop_pts,
            limit=thresholds.cache_hit_drop_pts,
            ok=drop_pts <= thresholds.cache_hit_drop_pts))

    return RegressionReport(
        baseline_id=baseline.run_id, candidate_id=candidate.run_id,
        checks=tuple(checks), thresholds=thresholds)
