"""Per-question provenance trails.

A :class:`TrailContext` is opened around each prompt by the engine
scheduler (or the sequential runner) and annotated by every middleware
layer the prompt passes through: coalescing (leader/follower and the
leader's prompt key), cache (hit/miss plus whether the entry came from
a persisted snapshot), retry (attempt count, per-attempt error class,
injected-fault flag), rate limiting and timeouts (time lost waiting),
batching (batch id, size and why the batch was cut), the backend pool
(replica index, fallback chain, hedging) and cost metering (billed
tokens and nanodollars).  When the question's record is built the
context is frozen into an immutable :class:`Trail` and stamped onto
:class:`~repro.core.results.QuestionRecord`, so provenance rides the
ledger and survives shard merges bit-identically.

The codec is compact: :func:`trail_to_dict` omits every default-valued
field, and :func:`trail_from_dict` restores them, so pre-trail ledgers
replay with ``trail=None`` and trail-off runs pay zero ledger bytes.

This module is imported by the engine and the core codec, so it must
stay dependency-free: stdlib only, plus :mod:`repro.errors` (a leaf).
"""
from __future__ import annotations

import hashlib
import re
import threading
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

__all__ = [
    "Trail",
    "TrailContext",
    "TrailQueryError",
    "call_site",
    "call_site_scope",
    "compile_predicate",
    "current_trail",
    "prompt_key",
    "trail_env",
    "trail_from_dict",
    "trail_scope",
    "trail_summary",
    "trail_to_dict",
]


def prompt_key(prompt: str) -> str:
    """Stable short key for a prompt (process-salt-free, unlike hash())."""
    return hashlib.sha1(prompt.encode("utf-8")).hexdigest()[:12]


# ----------------------------------------------------------------------
# The trail itself
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class Trail:
    """Immutable provenance for one scored question.

    Scheduling-independent fields (``attempts``, ``errors``,
    ``injected``, ``cache_hit``, token/cost fields) are deterministic
    per prompt; placement fields (``batch``, ``replica``, wait times)
    only appear when the corresponding layer is configured.
    """

    attempts: int = 1
    errors: tuple[str, ...] = ()
    injected: bool = False
    cache_hit: bool | None = None
    cache_source: str | None = None
    coalesced: str | None = None
    leader_key: str | None = None
    rate_wait_s: float = 0.0
    timeout_lost_s: float = 0.0
    batch: int | None = None
    batch_size: int | None = None
    batch_cut: str | None = None
    replica: int | None = None
    fallbacks: tuple[int, ...] = ()
    hedged: bool = False
    hedge_won: bool = False
    billed_prompt_tokens: int = 0
    billed_completion_tokens: int = 0
    cost_nanos: int = 0


#: Field name -> default, in declaration order (drives the codec).
_TRAIL_DEFAULTS: dict[str, Any] = {
    "attempts": 1,
    "errors": (),
    "injected": False,
    "cache_hit": None,
    "cache_source": None,
    "coalesced": None,
    "leader_key": None,
    "rate_wait_s": 0.0,
    "timeout_lost_s": 0.0,
    "batch": None,
    "batch_size": None,
    "batch_cut": None,
    "replica": None,
    "fallbacks": (),
    "hedged": False,
    "hedge_won": False,
    "billed_prompt_tokens": 0,
    "billed_completion_tokens": 0,
    "cost_nanos": 0,
}

_TUPLE_FIELDS = frozenset({"errors", "fallbacks"})


def trail_to_dict(trail: Trail) -> dict[str, Any]:
    """Compact JSON form: default-valued fields are omitted."""
    payload: dict[str, Any] = {}
    for name, default in _TRAIL_DEFAULTS.items():
        value = getattr(trail, name)
        if value == default:
            continue
        payload[name] = list(value) if name in _TUPLE_FIELDS else value
    return payload


def trail_from_dict(payload: Mapping[str, Any]) -> Trail:
    """Inverse of :func:`trail_to_dict`; unknown keys are ignored."""
    kwargs: dict[str, Any] = {}
    for name, default in _TRAIL_DEFAULTS.items():
        value = payload.get(name, default)
        if name in _TUPLE_FIELDS:
            value = tuple(value)
        kwargs[name] = value
    return Trail(**kwargs)


class TrailContext:
    """Mutable collector the middleware layers annotate in place."""

    __slots__ = (
        "attempts", "errors", "injected", "cache_hit", "cache_source",
        "coalesced", "leader_key", "rate_wait_s", "timeout_lost_s",
        "batch", "batch_size", "batch_cut", "replica", "fallbacks",
        "hedged", "hedge_won", "billed_prompt_tokens",
        "billed_completion_tokens", "cost_nanos",
    )

    def __init__(self) -> None:
        self.attempts = 1
        self.errors: list[str] = []
        self.injected = False
        self.cache_hit: bool | None = None
        self.cache_source: str | None = None
        self.coalesced: str | None = None
        self.leader_key: str | None = None
        self.rate_wait_s = 0.0
        self.timeout_lost_s = 0.0
        self.batch: int | None = None
        self.batch_size: int | None = None
        self.batch_cut: str | None = None
        self.replica: int | None = None
        self.fallbacks: list[int] = []
        self.hedged = False
        self.hedge_won = False
        self.billed_prompt_tokens = 0
        self.billed_completion_tokens = 0
        self.cost_nanos = 0

    def note_error(self, name: str, *, injected: bool = False) -> None:
        self.errors.append(name)
        if injected:
            self.injected = True

    def note_cost(self, prompt_tokens: int, completion_tokens: int,
                  nanos: int) -> None:
        self.billed_prompt_tokens += prompt_tokens
        self.billed_completion_tokens += completion_tokens
        self.cost_nanos += nanos

    def freeze(self) -> Trail:
        return Trail(
            attempts=self.attempts,
            errors=tuple(self.errors),
            injected=self.injected,
            cache_hit=self.cache_hit,
            cache_source=self.cache_source,
            coalesced=self.coalesced,
            leader_key=self.leader_key,
            rate_wait_s=self.rate_wait_s,
            timeout_lost_s=self.timeout_lost_s,
            batch=self.batch,
            batch_size=self.batch_size,
            batch_cut=self.batch_cut,
            replica=self.replica,
            fallbacks=tuple(self.fallbacks),
            hedged=self.hedged,
            hedge_won=self.hedge_won,
            billed_prompt_tokens=self.billed_prompt_tokens,
            billed_completion_tokens=self.billed_completion_tokens,
            cost_nanos=self.cost_nanos,
        )


# ----------------------------------------------------------------------
# Ambient context (thread-local; batching hands it across explicitly)
# ----------------------------------------------------------------------
_STATE = threading.local()


def current_trail() -> TrailContext | None:
    """The trail being collected on this thread, if capture is on."""
    return getattr(_STATE, "trail", None)


class trail_scope:
    """``with trail_scope() as trail:`` — install a collector."""

    __slots__ = ("trail", "_previous")

    def __init__(self, trail: TrailContext | None = None) -> None:
        self.trail = TrailContext() if trail is None else trail

    def __enter__(self) -> TrailContext:
        self._previous = getattr(_STATE, "trail", None)
        _STATE.trail = self.trail
        return self.trail

    def __exit__(self, *exc_info: object) -> None:
        _STATE.trail = self._previous


def call_site() -> dict[str, Any]:
    """Question/cell attributes for the in-flight model call, if any."""
    return getattr(_STATE, "site", None) or {}


class call_site_scope:
    """``with call_site_scope(question=uid, cell=...):`` — tag spans.

    Carries the question uid (and cell, when known) down to the
    ``model_call`` spans emitted deep inside the engine, independent
    of whether trail capture is on.
    """

    __slots__ = ("_site", "_previous")

    def __init__(self, **attrs: Any) -> None:
        self._site = {key: value for key, value in attrs.items()
                      if value is not None}

    def __enter__(self) -> None:
        self._previous = getattr(_STATE, "site", None)
        _STATE.site = self._site

    def __exit__(self, *exc_info: object) -> None:
        _STATE.site = self._previous


# ----------------------------------------------------------------------
# Predicate expressions (obs grep) — no eval, tiny recursive descent
# ----------------------------------------------------------------------
class TrailQueryError(ReproError):
    """A --where expression failed to parse."""


_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<num>-?\d+(?:\.\d+)?)
      | (?P<str>'[^']*'|"[^"]*")
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<op>==|!=|<=|>=|<|>|\(|\))
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"true": True, "false": False, "none": None}


def _tokenize(expression: str) -> list[tuple[str, Any]]:
    tokens: list[tuple[str, Any]] = []
    position = 0
    while position < len(expression):
        match = _TOKEN_RE.match(expression, position)
        if match is None:
            if expression[position:].strip():
                raise TrailQueryError(
                    f"bad character in --where at offset {position}: "
                    f"{expression[position:]!r}")
            break
        position = match.end()
        if match.lastgroup == "num":
            text = match.group("num")
            tokens.append(("lit", float(text) if "." in text else int(text)))
        elif match.lastgroup == "str":
            tokens.append(("lit", match.group("str")[1:-1]))
        elif match.lastgroup == "name":
            name = match.group("name")
            lowered = name.lower()
            if lowered in ("and", "or", "not"):
                tokens.append((lowered, name))
            elif lowered in _KEYWORDS:
                tokens.append(("lit", _KEYWORDS[lowered]))
            else:
                tokens.append(("name", name))
        else:
            tokens.append((match.group("op"), match.group("op")))
    return tokens


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

Predicate = Callable[[Mapping[str, Any]], bool]
_Node = Callable[[Mapping[str, Any]], Any]


class _Parser:
    """expr := and-chain ('or' and-chain)* with the usual precedence."""

    def __init__(self, tokens: list[tuple[str, Any]], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.index = 0

    def peek(self) -> tuple[str, Any] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def take(self) -> tuple[str, Any]:
        token = self.peek()
        if token is None:
            raise TrailQueryError(
                f"unexpected end of --where expression: {self.source!r}")
        self.index += 1
        return token

    def parse(self) -> _Node:
        node = self.or_expr()
        if self.peek() is not None:
            kind, value = self.peek()  # type: ignore[misc]
            raise TrailQueryError(
                f"unexpected {value!r} in --where expression "
                f"{self.source!r}")
        return node

    def or_expr(self) -> _Node:
        node = self.and_expr()
        while self.peek() is not None and self.peek()[0] == "or":
            self.take()
            right = self.and_expr()
            node = (lambda env, a=node, b=right:
                    bool(a(env)) or bool(b(env)))
        return node

    def and_expr(self) -> _Node:
        node = self.not_expr()
        while self.peek() is not None and self.peek()[0] == "and":
            self.take()
            right = self.not_expr()
            node = (lambda env, a=node, b=right:
                    bool(a(env)) and bool(b(env)))
        return node

    def not_expr(self) -> _Node:
        if self.peek() is not None and self.peek()[0] == "not":
            self.take()
            inner = self.not_expr()
            return lambda env, a=inner: not bool(a(env))
        return self.comparison()

    def comparison(self) -> _Node:
        left = self.operand()
        token = self.peek()
        if token is not None and token[0] in _COMPARATORS:
            op = _COMPARATORS[self.take()[0]]
            right = self.operand()
            def compare(env: Mapping[str, Any], a: _Node = left,
                        b: _Node = right,
                        op: Callable[[Any, Any], bool] = op) -> bool:
                try:
                    return bool(op(a(env), b(env)))
                except TypeError:
                    # e.g. None < 3 on a field the run never recorded
                    return False
            return compare
        return left

    def operand(self) -> _Node:
        kind, value = self.take()
        if kind == "lit":
            return lambda env, v=value: v
        if kind == "name":
            return lambda env, n=value: env.get(n)
        if kind == "(":
            node = self.or_expr()
            closing = self.take()
            if closing[0] != ")":
                raise TrailQueryError(
                    f"expected ')' in --where expression {self.source!r}")
            return node
        raise TrailQueryError(
            f"unexpected {value!r} in --where expression {self.source!r}")


def compile_predicate(expression: str) -> Predicate:
    """Compile a --where expression into env -> bool.  No eval."""
    tokens = _tokenize(expression)
    if not tokens:
        raise TrailQueryError("empty --where expression")
    node = _Parser(tokens, expression).parse()
    return lambda env: bool(node(env))


_EMPTY_TRAIL = Trail()


def trail_env(record: Any, *, index: int | None = None,
              cell: str | None = None) -> dict[str, Any]:
    """Flat field environment a predicate evaluates against.

    Record fields plus trail fields; records without a trail (legacy
    ledgers, trail-off runs) see the trail defaults, so predicates
    like ``attempts > 1`` are simply false for them.
    """
    trail = getattr(record, "trail", None) or _EMPTY_TRAIL
    env: dict[str, Any] = {
        "index": index,
        "cell": cell,
        "uid": record.question_uid,
        "model": record.model,
        "setting": record.setting,
        "response": record.response,
        "parsed": record.parsed.value,
        "expected": record.expected.value,
        "correct": record.correct,
        "missed": record.missed,
        "prompt_tokens": record.prompt_tokens,
        "completion_tokens": record.completion_tokens,
        "has_trail": getattr(record, "trail", None) is not None,
        "error_count": len(trail.errors),
    }
    for name in _TRAIL_DEFAULTS:
        env[name] = getattr(trail, name)
    return env


# ----------------------------------------------------------------------
# Per-cell analytics (obs trails)
# ----------------------------------------------------------------------
def trail_summary(records: Iterable[Any]) -> dict[str, Any]:
    """Fold trail analytics over records (JSON-ready, deterministic)."""
    total = 0
    with_trail = 0
    cache_hits = 0
    cache_misses = 0
    persisted_hits = 0
    leaders = 0
    followers = 0
    retried = 0
    injected = 0
    attempt_dist: dict[int, int] = {}
    error_dist: dict[str, int] = {}
    hedged = 0
    hedge_wins = 0
    fallback_calls = 0
    batch_sizes: dict[int, int] = {}
    batch_cuts: dict[str, int] = {}
    rate_wait_s = 0.0
    timeout_lost_s = 0.0
    billed_prompt = 0
    billed_completion = 0
    cost_nanos = 0
    for record in records:
        total += 1
        trail = getattr(record, "trail", None)
        if trail is None:
            continue
        with_trail += 1
        if trail.cache_hit is True:
            cache_hits += 1
            if trail.cache_source == "persisted":
                persisted_hits += 1
        elif trail.cache_hit is False:
            cache_misses += 1
        if trail.coalesced == "leader":
            leaders += 1
        elif trail.coalesced == "follower":
            followers += 1
        attempt_dist[trail.attempts] = attempt_dist.get(trail.attempts, 0) + 1
        if trail.attempts > 1:
            retried += 1
        if trail.injected:
            injected += 1
        for error in trail.errors:
            error_dist[error] = error_dist.get(error, 0) + 1
        if trail.hedged:
            hedged += 1
        if trail.hedge_won:
            hedge_wins += 1
        fallback_calls += len(trail.fallbacks)
        if trail.batch_size is not None:
            batch_sizes[trail.batch_size] = (
                batch_sizes.get(trail.batch_size, 0) + 1)
        if trail.batch_cut is not None:
            batch_cuts[trail.batch_cut] = batch_cuts.get(trail.batch_cut, 0) + 1
        rate_wait_s += trail.rate_wait_s
        timeout_lost_s += trail.timeout_lost_s
        billed_prompt += trail.billed_prompt_tokens
        billed_completion += trail.billed_completion_tokens
        cost_nanos += trail.cost_nanos
    looked_up = cache_hits + cache_misses
    return {
        "questions": total,
        "with_trail": with_trail,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "persisted_hits": persisted_hits,
            "hit_rate": (cache_hits / looked_up) if looked_up else None,
        },
        "coalesce": {"leaders": leaders, "followers": followers},
        "retry": {
            "retried": retried,
            "injected_faults": injected,
            "attempts": {str(k): attempt_dist[k]
                         for k in sorted(attempt_dist)},
            "errors": {k: error_dist[k] for k in sorted(error_dist)},
        },
        "hedge": {"fired": hedged, "won": hedge_wins,
                  "fallback_calls": fallback_calls},
        "batch": {
            "sizes": {str(k): batch_sizes[k] for k in sorted(batch_sizes)},
            "cuts": {k: batch_cuts[k] for k in sorted(batch_cuts)},
        },
        "waits": {"rate_wait_s": rate_wait_s,
                  "timeout_lost_s": timeout_lost_s},
        "cost": {
            "billed_prompt_tokens": billed_prompt,
            "billed_completion_tokens": billed_completion,
            "cost_nanos": cost_nanos,
        },
    }
