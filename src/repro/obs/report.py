"""Where-did-the-time-go reports over recorded spans.

Two views of one span log:

* :func:`phase_rows` / :func:`phase_table` — flat per-phase
  attribution: for every span name, how many spans, total time, *self*
  time (total minus child time — the part no deeper span explains),
  and the share of the run's wall clock.  This is the table
  ``repro runs show`` appends.
* :func:`flame_report` — an ASCII flamegraph: spans aggregated by
  their name *path* (``run > cell > question > model_call``), one
  indented row per path with a bar proportional to total time.  A
  terminal stand-in for the Chrome trace when all you have is ssh.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.report import format_rows
from repro.figures.ascii import bar_chart
from repro.obs.tracer import Span

_FULL = "#"

#: Span kinds that are always *inside* some enclosing phase but can be
#: recorded without a resolvable parent: ``batch`` spans live on the
#: batching dispatcher's event-loop thread and ``model_call`` spans
#: run on executor threads under batching, where the question span
#: sits on a different thread's stack.  They must never count as
#: roots when attributing wall-clock, or a batched run's phase shares
#: deflate against a wall several times the real one.
_DETACHED_KINDS = frozenset({
    "batch", "coalesced_wait", "hedge", "model_call", "retry",
    "cache_lookup", "question",
})


def _closed(spans: Sequence[Span]) -> list[Span]:
    return [span for span in spans if span.end_s is not None]


def _root_wall(spans: Sequence[Span], by_id: set[int]) -> float:
    """Wall clock as the extent of the genuine root spans."""
    roots = [span for span in spans
             if span.parent_id not in by_id
             and span.name not in _DETACHED_KINDS]
    if not roots:   # a bare middleware trace: every span is detached
        roots = [span for span in spans
                 if span.parent_id not in by_id]
    return sum(span.duration_s for span in roots) or 1e-12


def phase_rows(spans: Sequence[Span]) -> list[dict[str, object]]:
    """Per-span-name attribution rows, biggest self-time first."""
    spans = _closed(spans)
    if not spans:
        return []
    child_time: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] = \
                child_time.get(span.parent_id, 0.0) + span.duration_s
    totals: dict[str, float] = {}
    selfs: dict[str, float] = {}
    counts: dict[str, int] = {}
    for span in spans:
        own = max(0.0,
                  span.duration_s - child_time.get(span.span_id, 0.0))
        totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        selfs[span.name] = selfs.get(span.name, 0.0) + own
        counts[span.name] = counts.get(span.name, 0) + 1
    # The wall clock is the extent of the root spans (no parent inside
    # the log), not the sum — parallel children overlap, and detached
    # engine spans (batch, executor-side model_call) are not roots.
    by_id = {span.span_id for span in spans}
    wall = _root_wall(spans, by_id)
    rows = []
    for name in sorted(selfs, key=selfs.get, reverse=True):
        rows.append({
            "phase": name,
            "count": counts[name],
            "total_s": f"{totals[name]:.4f}",
            "self_s": f"{selfs[name]:.4f}",
            "share": f"{min(1.0, selfs[name] / wall) * 100:.1f}%",
        })
    return rows


def phase_table(spans: Sequence[Span],
                title: str = "Where the wall-clock went") -> str:
    rows = phase_rows(spans)
    if not rows:
        return f"{title}: no spans recorded"
    return format_rows(rows, title=title)


def phase_chart(spans: Sequence[Span], width: int = 40) -> str:
    """Self-time per phase as an ASCII bar chart."""
    rows = phase_rows(spans)
    if not rows:
        return "no spans recorded"
    values = {str(row["phase"]): float(str(row["self_s"]))
              for row in rows}
    return bar_chart(values, width=width,
                     title="Self time per phase (s)")


# ----------------------------------------------------------------------
# Flamegraph
# ----------------------------------------------------------------------
def flame_report(spans: Sequence[Span], width: int = 32,
                 title: str = "Trace flamegraph") -> str:
    """Aggregate spans by name path and render an indented tree.

    Each row shows the path's total time as a bar scaled to the root
    total, the time in seconds, its share, and the span count — the
    classic flamegraph collapsed to name paths, readable in a
    terminal.
    """
    spans = _closed(spans)
    if not spans:
        return f"{title}: no spans recorded"
    by_id = {span.span_id: span for span in spans}

    def path_of(span: Span) -> tuple[str, ...]:
        names = [span.name]
        seen = {span.span_id}
        parent = by_id.get(span.parent_id)
        while parent is not None and parent.span_id not in seen:
            names.append(parent.name)
            seen.add(parent.span_id)
            parent = by_id.get(parent.parent_id)
        return tuple(reversed(names))

    totals: dict[tuple[str, ...], float] = {}
    counts: dict[tuple[str, ...], int] = {}
    for span in spans:
        path = path_of(span)
        totals[path] = totals.get(path, 0.0) + span.duration_s
        counts[path] = counts.get(path, 0) + 1
    root_total = sum(duration for path, duration in totals.items()
                     if len(path) == 1
                     and path[0] not in _DETACHED_KINDS) or sum(
        duration for path, duration in totals.items()
        if len(path) == 1) or 1e-12
    label_width = max(len("  " * (len(path) - 1) + path[-1])
                      for path in totals) + 2
    lines = [title]
    for path in sorted(totals):
        share = min(1.0, totals[path] / root_total)
        bar = _FULL * max(1, round(share * width))
        label = "  " * (len(path) - 1) + path[-1]
        lines.append(f"{label:<{label_width}}"
                     f"{bar:<{width + 1}}"
                     f"{totals[path]:>9.4f}s {share * 100:5.1f}% "
                     f"x{counts[path]}")
    return "\n".join(lines)
