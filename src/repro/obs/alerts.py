"""Declarative SLO alerting over live run snapshots.

An :class:`AlertRule` names a metric derived from a
:class:`repro.obs.live.RunProgress` snapshot (error rate, p99
latency, throughput floor, stall, cost burn rate), a comparison
against a threshold, a ``for_s`` debounce window, and a severity.
An :class:`AlertEvaluator` holds a rule set and is fed successive
snapshots — by ``repro watch`` (which renders firing alerts as a
dashboard banner) and by the serve layer's follower broadcast (which
publishes firing/resolved transitions as ``alert`` frames on the SSE
stream).  Transitions are also logged as structured events, so a
log-scraping pager sees the same signal the dashboards do.

The evaluator is deliberately edge-triggered: a rule *fires* only
after its condition has held continuously for ``for_s`` seconds, and
emits exactly one ``firing`` event and one ``resolved`` event per
episode.  Metrics with no data yet (a run that has not answered a
question cannot have a throughput) return ``None`` and leave the
rule untouched — a cold start never pages.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.obs.live import RunProgress

_log = logging.getLogger("repro.obs.alerts")

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}

_SEVERITIES = ("info", "warning", "critical")


# ----------------------------------------------------------------------
# Metrics over a snapshot
# ----------------------------------------------------------------------
def _error_rate(progress: "RunProgress") -> float | None:
    if progress.questions_done <= 0:
        return None
    return progress.faults / progress.questions_done


def _p99_latency(progress: "RunProgress") -> float | None:
    if progress.latency_p99_s <= 0.0:
        return None                    # tracing off: no basis
    return progress.latency_p99_s


def _throughput(progress: "RunProgress") -> float | None:
    if progress.questions_done <= 0 or progress.elapsed_s <= 0.0:
        return None                    # cold start: no basis
    return progress.throughput


def _stalled(progress: "RunProgress") -> float | None:
    return 1.0 if progress.status == "stalled" else 0.0


def _cost_burn(progress: "RunProgress") -> float | None:
    if progress.elapsed_s <= 0.0:
        return None
    cost_usd = getattr(progress, "cost_usd", 0.0)
    return cost_usd / progress.elapsed_s * 60.0


#: metric name -> extractor(RunProgress) -> value (None = no data).
METRICS: dict[str, Callable[["RunProgress"], float | None]] = {
    "error_rate": _error_rate,
    "p99_latency_s": _p99_latency,
    "throughput": _throughput,
    "stalled": _stalled,
    "cost_burn_usd_per_min": _cost_burn,
}


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AlertRule:
    """One SLO: ``metric op threshold`` held for ``for_s`` seconds."""

    name: str
    metric: str
    op: str
    threshold: float
    for_s: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown alert metric {self.metric!r}; choose from "
                f"{sorted(METRICS)}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}; "
                             f"choose from {sorted(_OPS)}")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"severity must be one of "
                             f"{_SEVERITIES}, got {self.severity!r}")
        if self.for_s < 0:
            raise ValueError("for_s must be non-negative")

    def breached(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        return (f"{self.metric} {self.op} {self.threshold:g}"
                + (f" for {self.for_s:g}s" if self.for_s else ""))

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "metric": self.metric,
                "op": self.op, "threshold": self.threshold,
                "for_s": self.for_s, "severity": self.severity}


#: The built-in SLO set ``repro watch`` and ``repro serve`` evaluate.
DEFAULT_RULES: tuple[AlertRule, ...] = (
    AlertRule("high-error-rate", "error_rate", ">", 0.05,
              severity="warning"),
    AlertRule("p99-latency", "p99_latency_s", ">", 5.0,
              severity="warning"),
    AlertRule("throughput-floor", "throughput", "<", 0.5,
              for_s=5.0, severity="warning"),
    AlertRule("run-stalled", "stalled", ">", 0.5,
              severity="critical"),
    AlertRule("cost-burn-rate", "cost_burn_usd_per_min", ">", 1.0,
              severity="critical"),
)


@dataclass(slots=True)
class AlertEvent:
    """One firing/resolved transition."""

    rule: AlertRule
    state: str                         # firing | resolved
    value: float | None
    ts: float

    def to_dict(self) -> dict[str, object]:
        return {"rule": self.rule.name, "state": self.state,
                "severity": self.rule.severity,
                "metric": self.rule.metric, "op": self.rule.op,
                "threshold": self.rule.threshold,
                "value": self.value, "ts": self.ts,
                "condition": self.rule.describe()}


@dataclass(slots=True)
class _RuleState:
    rule: AlertRule
    breaching_since: float | None = None
    firing: bool = False
    value: float | None = None


class AlertEvaluator:
    """Stateful rule evaluation over a stream of snapshots.

    Feed :meth:`observe` each new :class:`RunProgress`; it returns the
    transitions (possibly empty).  :attr:`active` lists currently
    firing rules for banner rendering; :meth:`assess` reports every
    rule's instantaneous status for one-shot endpoints (debounce
    cannot apply to a single observation, so ``assess`` reports the
    raw condition alongside the evaluator's debounced state).
    """

    def __init__(self, rules: tuple[AlertRule, ...] = DEFAULT_RULES,
                 clock: Callable[[], float] = time.time):
        self._states = [_RuleState(rule=rule) for rule in rules]
        self._clock = clock

    @property
    def rules(self) -> tuple[AlertRule, ...]:
        return tuple(state.rule for state in self._states)

    @property
    def active(self) -> list[AlertRule]:
        """Currently firing rules, most severe first."""
        firing = [state for state in self._states if state.firing]
        order = {sev: i for i, sev in enumerate(_SEVERITIES)}
        firing.sort(key=lambda state: (-order[state.rule.severity],
                                       state.rule.name))
        return [state.rule for state in firing]

    # ------------------------------------------------------------------
    def observe(self, progress: "RunProgress",
                now: float | None = None) -> list[AlertEvent]:
        """Fold one snapshot; return firing/resolved transitions."""
        now = self._clock() if now is None else now
        events: list[AlertEvent] = []
        for state in self._states:
            value = METRICS[state.rule.metric](progress)
            state.value = value
            breached = value is not None and state.rule.breached(value)
            if breached:
                if state.breaching_since is None:
                    state.breaching_since = now
                held = now - state.breaching_since
                if not state.firing and held >= state.rule.for_s:
                    state.firing = True
                    events.append(AlertEvent(state.rule, "firing",
                                             value, now))
            else:
                state.breaching_since = None
                if state.firing:
                    state.firing = False
                    events.append(AlertEvent(state.rule, "resolved",
                                             value, now))
        for event in events:
            log = (_log.warning if event.state == "firing"
                   else _log.info)
            log("alert-%s rule=%s severity=%s run=%s value=%s "
                "condition=%r", event.state, event.rule.name,
                event.rule.severity, progress.run_id,
                ("n/a" if event.value is None
                 else f"{event.value:.4f}"), event.rule.describe())
        return events

    def assess(self, progress: "RunProgress") -> list[dict[str, object]]:
        """Instantaneous per-rule status (``GET /runs/<id>/alerts``)."""
        rows: list[dict[str, object]] = []
        for state in self._states:
            value = METRICS[state.rule.metric](progress)
            breached = (value is not None
                        and state.rule.breached(value))
            rows.append({**state.rule.to_dict(), "value": value,
                         "breached": breached,
                         "firing": state.firing})
        return rows

    def banner(self) -> str | None:
        """One dashboard line summarizing the firing rules."""
        active = self.active
        if not active:
            return None
        parts = [f"{rule.severity.upper()} {rule.name} "
                 f"({rule.describe()})" for rule in active]
        return "!! ALERTS: " + " · ".join(parts)
