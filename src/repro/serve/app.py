"""The benchmark-as-a-service HTTP server (stdlib only).

One :class:`ReproServer` exposes the whole stack over HTTP — browse
taxonomies and question pools, list/show/diff ledgered runs, submit
new evaluation runs, and watch any run live over Server-Sent Events —
with zero dependencies beyond ``http.server``.  Requests are handled
by a :class:`~http.server.ThreadingHTTPServer` (one thread per
connection, so N SSE streams and REST calls coexist); run execution
happens on the :class:`repro.serve.jobs.JobManager` worker pool, and
live streaming fans one :class:`repro.obs.LedgerFollower` per run out
to every subscriber through the
:class:`repro.serve.hub.FollowerHub`.

Endpoints (all JSON; errors are ``{"error": {status, code,
message}}``):

====================================  ======================================
``GET  /``                            endpoint index
``GET  /healthz``                     liveness + hub/job stats
``GET  /taxonomies``                  the ten taxonomies (Table 1 shape)
``GET  /taxonomies/<key>``            one spec + built statistics
``GET  /pools/<key>?sample=&seed=``   question-pool sizes (Table 4 shape)
``GET  /models``                      the eighteen model names
``GET  /runs``                        ``runs list --json``
``POST /runs``                        submit a RunRequest -> 202 + job
``GET  /runs/<id>``                   ``runs show <id> --json``
``GET  /runs/<id>/result``            ``repro run --json`` final summary
``GET  /runs/<id>/progress``          one live follower snapshot
``GET  /runs/<id>/alerts``            one-shot alert rule assessment
``GET  /runs/<id>/events``            SSE snapshots + alert frames
``GET  /runs/<id>/diff/<other>``      ``runs diff --json``
``GET  /runs/<id>/trail/<index>``     ``obs why --json`` provenance
``GET  /runs/<id>/trails``            ``obs trails --json`` analytics
``POST /runs/<id>/resume``            finish an interrupted run -> 202
``GET  /jobs`` / ``GET /jobs/<id>``   background job tracking
====================================  ======================================

Tenancy: the ``X-Repro-Tenant`` header namespaces every run
operation into its own registry under ``<root>/tenants/<name>``
(default tenant = the root itself, so the server is a drop-in front
for an existing ``REPRO_RUNS_DIR``).  Tenant names are validated
against a conservative pattern so a hostile header can never escape
the root.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ReproError, RunError, UnknownRunError
from repro.serve.hub import FollowerHub
from repro.serve.jobs import JobManager
from repro.serve.views import (run_diff_payload, run_result_payload,
                               run_show_payload, runs_list_payload)

_log = logging.getLogger("repro.serve")

#: Header selecting the tenant namespace for run operations.
TENANT_HEADER = "X-Repro-Tenant"

#: The tenant name that maps to the registry root itself.
DEFAULT_TENANT = "default"

#: Conservative tenant names: no traversal, no separators.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Default request-body ceiling (a RunRequest is < 1 KiB).
DEFAULT_MAX_BODY_BYTES = 64 * 1024


class _HTTPError(Exception):
    """Internal: raised by handlers to produce a structured error."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def _bad_request(message: str) -> _HTTPError:
    return _HTTPError(400, "bad-request", message)


def _not_found(message: str) -> _HTTPError:
    return _HTTPError(404, "not-found", message)


class _ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: Set by :class:`ReproServer` right after construction.
    app: "ReproServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        _log.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, payload: object) -> None:
        body = json.dumps(payload, indent=1).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str,
                         message: str) -> None:
        self._send_json(status, {"error": {
            "status": status, "code": code, "message": message}})

    def _read_body(self) -> dict:
        """The request's JSON object body, size- and shape-checked."""
        app = self.server.app
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise _bad_request("a JSON body with Content-Length is "
                               "required")
        try:
            length = int(raw_length)
        except ValueError:
            raise _bad_request(f"bad Content-Length: {raw_length!r}")
        if length > app.max_body_bytes:
            # Refuse without reading; the connection is closed so the
            # unread body can never be misparsed as a next request.
            self.close_connection = True
            raise _HTTPError(413, "payload-too-large",
                             f"body of {length} bytes exceeds the "
                             f"{app.max_body_bytes}-byte limit")
        try:
            payload = json.loads(self.rfile.read(max(0, length)))
        except ValueError as exc:
            raise _bad_request(f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise _bad_request("request body must be a JSON object")
        return payload

    def _tenant(self) -> str:
        name = (self.headers.get(TENANT_HEADER) or "").strip()
        if not name:
            return DEFAULT_TENANT
        if not _TENANT_RE.match(name):
            raise _bad_request(f"bad tenant name: {name!r}")
        return name

    # -- dispatch ------------------------------------------------------
    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        try:
            parsed = urlsplit(self.path)
            segments = tuple(unquote(part)
                             for part in parsed.path.split("/")
                             if part)
            query = parse_qs(parsed.query)
            self._route(method, segments, query)
        except _HTTPError as exc:
            self._send_error_json(exc.status, exc.code, exc.message)
        except UnknownRunError as exc:
            self._send_error_json(404, "unknown-run", str(exc))
        except ReproError as exc:
            self._send_error_json(400, "bad-request", str(exc))
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # pragma: no cover - last resort
            _log.exception("unhandled error serving %s %s",
                           method, self.path)
            try:
                self._send_error_json(500, "internal",
                                      f"{type(exc).__name__}: {exc}")
            except OSError:
                self.close_connection = True

    def _route(self, method: str, segments: tuple[str, ...],
               query: dict) -> None:
        app = self.server.app
        if not segments:
            return self._require(method, "GET",
                                 lambda: app.index_payload())
        head = segments[0]
        if head == "healthz" and len(segments) == 1:
            return self._require(method, "GET",
                                 lambda: app.health_payload())
        if head == "taxonomies" and len(segments) <= 2:
            key = segments[1] if len(segments) == 2 else None
            return self._require(
                method, "GET", lambda: app.taxonomies_payload(key))
        if head == "models" and len(segments) == 1:
            return self._require(method, "GET",
                                 lambda: app.models_payload())
        if head == "pools" and len(segments) == 2:
            return self._require(
                method, "GET",
                lambda: app.pool_payload(segments[1], query))
        if head == "jobs" and len(segments) <= 2:
            job_id = segments[1] if len(segments) == 2 else None
            return self._require(
                method, "GET",
                lambda: app.jobs_payload(self._tenant(), job_id))
        if head == "runs":
            return self._route_runs(method, segments[1:], query)
        raise _not_found(f"no such endpoint: /{'/'.join(segments)}")

    def _require(self, method: str, wanted: str, build) -> None:
        if method != wanted:
            self.send_response(405)
            self.send_header("Allow", wanted)
            body = json.dumps({"error": {
                "status": 405, "code": "method-not-allowed",
                "message": f"use {wanted}"}}).encode("utf-8")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        status, payload = build()
        self._send_json(status, payload)

    def _route_runs(self, method: str, rest: tuple[str, ...],
                    query: dict) -> None:
        app = self.server.app
        tenant = self._tenant()
        registry = app.registry_for(tenant)
        if not rest:
            if method == "POST":
                status, payload = app.submit_run(
                    tenant, registry, self._read_body())
                return self._send_json(status, payload)
            return self._require(
                method, "GET",
                lambda: (200, runs_list_payload(registry)))
        run_id = rest[0]
        if len(rest) == 1:
            return self._require(
                method, "GET",
                lambda: (200, run_show_payload(registry, run_id)))
        if len(rest) == 2 and rest[1] == "result":
            return self._require(
                method, "GET",
                lambda: (200, app.result_payload(registry, run_id)))
        if len(rest) == 2 and rest[1] == "progress":
            return self._require(
                method, "GET",
                lambda: (200, app.progress_payload(registry, run_id)))
        if len(rest) == 2 and rest[1] == "alerts":
            return self._require(
                method, "GET",
                lambda: (200, app.alerts_payload(registry, run_id)))
        if len(rest) == 2 and rest[1] == "resume":
            if method != "POST":
                return self._require(method, "POST", None)
            status, payload = app.submit_resume(tenant, registry,
                                                run_id)
            return self._send_json(status, payload)
        if len(rest) == 3 and rest[1] == "diff":
            return self._require(
                method, "GET",
                lambda: (200, run_diff_payload(registry, run_id,
                                               rest[2])))
        if len(rest) == 3 and rest[1] == "trail":
            try:
                index = int(rest[2])
            except ValueError:
                raise _bad_request(f"question index must be an "
                                   f"integer, got {rest[2]!r}")
            return self._require(
                method, "GET",
                lambda: (200, app.trail_payload(registry, run_id,
                                                index)))
        if len(rest) == 2 and rest[1] == "trails":
            return self._require(
                method, "GET",
                lambda: (200, app.trails_payload(registry, run_id)))
        if len(rest) == 2 and rest[1] == "events":
            if method != "GET":
                return self._require(method, "GET", None)
            return self._stream_events(app, tenant, registry, run_id,
                                       query)
        raise _not_found(f"no such endpoint: /runs/{'/'.join(rest)}")

    # -- SSE -----------------------------------------------------------
    def _stream_events(self, app: "ReproServer", tenant: str,
                       registry, run_id: str, query: dict) -> None:
        try:
            limit = int(query.get("limit", ["0"])[0] or 0)
        except ValueError:
            raise _bad_request("limit must be an integer")
        # Subscribing validates the run id (404 before any bytes).
        subscription = app.hub.subscribe(tenant, run_id, registry)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            for kind, payload in subscription.events():
                if kind == "ping":
                    self.wfile.write(b": ping\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(payload, separators=(",", ":"))
                self.wfile.write(
                    f"event: {kind}\ndata: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
                if kind == "snapshot":
                    sent += 1
                    if limit and sent >= limit:
                        break
                if kind == "done":
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            subscription.close()
            self.close_connection = True


class ReproServer:
    """The serving facade: owns the registry root, hub and jobs.

    Construct, then either :meth:`start` (background thread; tests and
    embedding) or :meth:`serve_forever` (blocking; the CLI).  Always
    :meth:`close` to release the socket, the follower broadcasts and
    the job pool.
    """

    def __init__(self, root: str | Path | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 poll_interval_s: float = 0.25,
                 idle_grace_s: float = 5.0,
                 job_workers: int = 2,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES):
        from repro.runs.registry import default_runs_root
        self.root = (Path(root) if root is not None
                     else default_runs_root())
        self.hub = FollowerHub(interval_s=poll_interval_s,
                               idle_grace_s=idle_grace_s)
        self.jobs = JobManager(max_workers=job_workers)
        self.max_body_bytes = max_body_bytes
        self.started_at = time.time()
        self._httpd = _ReproHTTPServer((host, port), _Handler)
        self._httpd.app = self
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:  # pragma: no cover - CLI loop
        self._httpd.serve_forever(poll_interval=0.25)

    def close(self, wait_jobs: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self.hub.close()
        self.jobs.close(wait=wait_jobs)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- tenancy -------------------------------------------------------
    def registry_for(self, tenant: str):
        from repro.runs.registry import RunRegistry
        if tenant == DEFAULT_TENANT:
            return RunRegistry(self.root)
        return RunRegistry(self.root / "tenants" / tenant)

    # -- payload builders ---------------------------------------------
    def index_payload(self) -> tuple[int, dict]:
        import repro
        return 200, {
            "service": "repro-serve",
            "version": repro.__version__,
            "endpoints": {
                "GET /healthz": "liveness + hub/job stats",
                "GET /taxonomies": "the ten taxonomies",
                "GET /taxonomies/<key>": "one spec + statistics",
                "GET /pools/<key>?sample=&seed=": "pool sizes",
                "GET /models": "the eighteen model names",
                "GET /runs": "runs list --json",
                "POST /runs": "submit a RunRequest (202 + job)",
                "GET /runs/<id>": "runs show --json",
                "GET /runs/<id>/result": "repro run --json summary",
                "GET /runs/<id>/progress": "one follower snapshot",
                "GET /runs/<id>/alerts": "one-shot alert assessment",
                "GET /runs/<id>/events": "SSE snapshots + alerts",
                "GET /runs/<id>/diff/<other>": "runs diff --json",
                "GET /runs/<id>/trail/<index>": "obs why --json",
                "GET /runs/<id>/trails": "obs trails --json",
                "POST /runs/<id>/resume": "resume a run (202 + job)",
                "GET /jobs": "background jobs",
                "GET /jobs/<id>": "one background job",
            },
            "tenant_header": TENANT_HEADER,
        }

    def health_payload(self) -> tuple[int, dict]:
        jobs = self.jobs.list_jobs()
        return 200, {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "runs_root": str(self.root),
            "jobs": {
                "total": len(jobs),
                "active": self.jobs.active(),
            },
            "hub": self.hub.stats(),
        }

    def taxonomies_payload(self, key: str | None) -> tuple[int, dict | list]:
        from repro.generators import ALL_SPECS, get_spec
        if key is None:
            return 200, [self._spec_row(spec) for spec in ALL_SPECS]
        try:
            spec = get_spec(key)
        except ReproError as exc:
            raise _not_found(str(exc))
        return 200, self._spec_detail(spec)

    @staticmethod
    def _spec_row(spec) -> dict[str, object]:
        return {
            "key": spec.key,
            "name": spec.display_name,
            "domain": spec.domain.value,
            "levels": spec.num_levels,
            "trees": spec.num_trees,
            "entities": spec.num_entities,
        }

    def _spec_detail(self, spec) -> dict[str, object]:
        from repro.generators import build_taxonomy
        from repro.taxonomy import compute_statistics
        stats = compute_statistics(build_taxonomy(spec.key))
        return {
            **self._spec_row(spec),
            "concept_noun": spec.concept_noun,
            "level_widths_spec": list(spec.level_widths),
            "entities_built": stats.num_entities,
            "level_widths_built": list(stats.level_widths),
        }

    def models_payload(self) -> tuple[int, dict]:
        from repro.data.paper_tables import MODEL_ORDER
        return 200, {"models": list(MODEL_ORDER)}

    def pool_payload(self, key: str,
                     query: dict) -> tuple[int, dict]:
        from repro.generators import get_spec
        from repro.questions.pools import build_pools
        try:
            get_spec(key)
        except ReproError as exc:
            raise _not_found(str(exc))
        sample = query.get("sample", [None])[0]
        seed = query.get("seed", [""])[0]
        try:
            sample_size = int(sample) if sample is not None else None
        except ValueError:
            raise _bad_request(f"sample must be an integer, "
                               f"got {sample!r}")
        pools = build_pools(key, sample_size=sample_size, seed=seed)
        return 200, {
            "taxonomy": key,
            "sample_size": sample_size,
            "seed": seed,
            "levels": pools.statistics(),
        }

    def jobs_payload(self, tenant: str,
                     job_id: str | None) -> tuple[int, dict | list]:
        if job_id is None:
            return 200, [job.to_dict()
                         for job in self.jobs.list_jobs(tenant)]
        job = self.jobs.get(job_id)
        if job is None or job.tenant != tenant:
            raise _not_found(f"unknown job: {job_id!r}")
        return 200, job.to_dict()

    # -- run submission ------------------------------------------------
    def submit_run(self, tenant: str, registry,
                   body: dict) -> tuple[int, dict]:
        from repro.runs.request import RunRequest
        defaults = RunRequest().to_dict()
        unknown = sorted(set(body) - set(defaults))
        if unknown:
            raise _bad_request(
                f"unknown request fields: {', '.join(unknown)} "
                f"(expected a subset of "
                f"{', '.join(sorted(defaults))})")
        try:
            request = RunRequest.from_dict({**defaults, **body})
        except (RunError, TypeError, ValueError) as exc:
            raise _bad_request(f"invalid run request: {exc}")
        # Name validation the CLI gets from argparse ``choices``:
        # reject at admission instead of failing the job later.
        from repro.data.paper_tables import MODEL_ORDER, TAXONOMY_ORDER
        unknown = sorted(set(request.models) - set(MODEL_ORDER))
        if unknown:
            raise _bad_request(f"unknown models: {', '.join(unknown)}")
        unknown = sorted(set(request.taxonomy_keys)
                         - set(TAXONOMY_ORDER))
        if unknown:
            raise _bad_request(
                f"unknown taxonomies: {', '.join(unknown)}")
        job = self.jobs.submit_run(request, registry, tenant=tenant)
        _log.info("run-submitted tenant=%s run=%s job=%s",
                  tenant, job.run_id, job.job_id)
        return 202, {"job": job.to_dict(), "run_id": job.run_id}

    def submit_resume(self, tenant: str, registry,
                      run_id: str) -> tuple[int, dict]:
        job = self.jobs.submit_resume(run_id, registry,
                                      tenant=tenant)
        _log.info("resume-submitted tenant=%s run=%s job=%s",
                  tenant, run_id, job.job_id)
        return 202, {"job": job.to_dict(), "run_id": run_id}

    # -- run inspection ------------------------------------------------
    def result_payload(self, registry, run_id: str) -> dict:
        from repro.runs.driver import load_run
        return run_result_payload(load_run(run_id,
                                           registry=registry))

    def trail_payload(self, registry, run_id: str,
                      index: int) -> dict:
        from repro.serve.views import run_trail_payload
        return run_trail_payload(registry, run_id, index)

    def trails_payload(self, registry, run_id: str) -> dict:
        from repro.serve.views import run_trails_payload
        return run_trails_payload(registry, run_id)

    def progress_payload(self, registry, run_id: str) -> dict:
        from repro.obs.live import LedgerFollower
        return LedgerFollower(run_id, registry=registry).poll() \
            .to_dict()

    def alerts_payload(self, registry, run_id: str) -> dict:
        """Every rule assessed against one fresh snapshot.

        One-shot by design: ``for_s`` debounce needs a history of
        observations, which only the SSE broadcast (one evaluator per
        run) has — so this endpoint reports instantaneous breaches,
        and the stream reports debounced firing/resolved transitions.
        """
        from repro.obs.alerts import AlertEvaluator
        from repro.obs.live import LedgerFollower
        progress = LedgerFollower(run_id, registry=registry).poll()
        return {
            "run_id": run_id,
            "status": progress.status,
            "cost_usd": progress.cost_usd,
            "rules": AlertEvaluator().assess(progress),
        }
