"""Follower fan-out: one ledger tail per run, N live subscribers.

A naive server would give every SSE client its own
:class:`repro.obs.LedgerFollower` — N clients on one run means N
full tails of the same ledger, and the producing run pays the read
pressure N times.  The :class:`FollowerHub` collapses that to one:
per (tenant, run) it owns a single follower polled by one broadcast
thread, and every poll's snapshot dict is fanned out to each
subscriber's queue.  Because all subscribers receive the *same*
payload object, the bytes they stream are bit-identical — which is
what lets the acceptance test require every client's final snapshot
to agree exactly.

Flow-control contract: subscriber queues are bounded and drop their
*oldest* pending snapshot when full, so one slow client can neither
stall the broadcaster nor starve its peers; the final (``finished``)
snapshot is always delivered because it is the last thing enqueued
before the end-of-stream sentinel.  A broadcast with no subscribers
left shuts itself down after a grace period, and a finished run's
final snapshot is cached (keyed by ledger size, so a later resume
invalidates it) to serve late subscribers without re-tailing the
ledger.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from collections import OrderedDict

from repro.errors import ReproError
from repro.obs.alerts import AlertEvaluator
from repro.obs.live import LedgerFollower
from repro.runs.registry import RunRegistry

_log = logging.getLogger("repro.serve.hub")

#: Queue slots per subscriber before drop-oldest kicks in.
SUBSCRIBER_QUEUE_SLOTS = 64

#: Cached final snapshots kept for late subscribers.
FINAL_CACHE_SLOTS = 32

#: An end-of-stream marker (follows the final snapshot).
_DONE = "done"
_SNAPSHOT = "snapshot"
_ERROR = "error"
_ALERT = "alert"


class Subscription:
    """One client's view of a broadcast: a bounded event queue.

    Iterate :meth:`events` until the stream ends; call :meth:`close`
    (idempotent) when the client disconnects so the broadcaster stops
    paying for it.
    """

    def __init__(self, on_close=None):
        self._queue: queue.Queue = queue.Queue(
            maxsize=SUBSCRIBER_QUEUE_SLOTS)
        self._on_close = on_close
        self._closed = False

    # -- producer side -------------------------------------------------
    def publish(self, kind: str, payload: dict | None) -> None:
        """Enqueue without ever blocking: full queues drop oldest."""
        while True:
            try:
                self._queue.put_nowait((kind, payload))
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                except queue.Empty:  # pragma: no cover - tiny race
                    pass

    def end(self, payload: dict | None = None) -> None:
        self.publish(_DONE, payload or {})

    # -- consumer side -------------------------------------------------
    def events(self, timeout_s: float = 10.0):
        """Yield ``(kind, payload)`` pairs, ending after ``done``.

        A quiet period longer than ``timeout_s`` yields a ``("ping",
        None)`` keep-alive so SSE writers can detect dead sockets.
        """
        while True:
            try:
                kind, payload = self._queue.get(timeout=timeout_s)
            except queue.Empty:
                yield "ping", None
                continue
            yield kind, payload
            if kind == _DONE:
                return

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._on_close is not None:
            self._on_close(self)


class _Broadcast:
    """One follower + one poll thread, fanned out to subscribers."""

    def __init__(self, hub: "FollowerHub", key: tuple[str, str],
                 run_id: str, registry: RunRegistry,
                 interval_s: float, idle_grace_s: float):
        self.hub = hub
        self.key = key
        self.run_id = run_id
        self.registry = registry
        self.interval_s = interval_s
        self.idle_grace_s = idle_grace_s
        self.follower = LedgerFollower(run_id, registry=registry)
        #: One evaluator per broadcast: every subscriber sees the
        #: same firing/resolved transitions, exactly once each.
        self.alerts = AlertEvaluator()
        self._subscribers: list[Subscription] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._ended = False
        self._last: dict | None = None
        self._idle_since: float | None = None
        self.polls = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"follow-{run_id}", daemon=True)

    def start(self) -> None:
        self._thread.start()

    # ------------------------------------------------------------------
    def add(self, subscription: Subscription) -> bool:
        """Attach; ``False`` when the broadcast already ended.

        The latest snapshot (if any) is replayed to the newcomer
        under the publish lock, so a subscriber attaching between
        the final publish and the end-of-stream still receives the
        final snapshot — and a mid-run subscriber gets an instant
        first frame instead of waiting out the poll interval.
        """
        with self._lock:
            if self._ended:
                return False
            if self._last is not None:
                subscription.publish(_SNAPSHOT, self._last)
            self._subscribers.append(subscription)
            self._idle_since = None
            return True

    def remove(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                return
            if not self._subscribers:
                self._idle_since = time.monotonic()

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    def _publish(self, kind: str, payload: dict | None) -> None:
        with self._lock:
            if kind == _SNAPSHOT:
                self._last = payload
            targets = list(self._subscribers)
        for subscription in targets:
            subscription.publish(kind, payload)

    def _end(self, drain: bool) -> None:
        with self._lock:
            self._ended = True
            targets = list(self._subscribers) if drain else []
            self._subscribers.clear()
        for subscription in targets:
            subscription.end({"run_id": self.run_id})
        self.hub._broadcast_done(self)

    def _loop(self) -> None:
        final: dict | None = None
        try:
            while not self._stop.is_set():
                snapshot = self.follower.poll()
                payload = snapshot.to_dict()
                payload["ts"] = time.time()
                self.polls += 1
                self._publish(_SNAPSHOT, payload)
                for event in self.alerts.observe(snapshot):
                    self._publish(_ALERT, {"run_id": self.run_id,
                                           **event.to_dict()})
                if snapshot.finished:
                    final = payload
                    break
                with self._lock:
                    idle = (self._idle_since is not None
                            and time.monotonic() - self._idle_since
                            > self.idle_grace_s)
                if idle:
                    break
                self._stop.wait(self.interval_s)
        except ReproError as exc:
            _log.warning("broadcast-error run=%s error=%r",
                         self.run_id, exc)
            self._publish(_ERROR, {"run_id": self.run_id,
                                   "message": str(exc)})
        if final is not None:
            self.hub._cache_final(self.key, self.registry,
                                  self.run_id, final)
        self._end(drain=True)

    def stop(self) -> None:
        self._stop.set()


class FollowerHub:
    """Shared live-streaming state of one server process."""

    def __init__(self, interval_s: float = 0.25,
                 idle_grace_s: float = 5.0):
        self.interval_s = interval_s
        self.idle_grace_s = idle_grace_s
        self._lock = threading.Lock()
        self._broadcasts: dict[tuple[str, str], _Broadcast] = {}
        self._finals: OrderedDict[tuple[str, str],
                                  tuple[int, dict]] = OrderedDict()
        self._closed = False

    # ------------------------------------------------------------------
    def _ledger_size(self, registry: RunRegistry, run_id: str) -> int:
        try:
            return registry.ledger_path(run_id).stat().st_size
        except OSError:
            return -1

    def _cache_final(self, key: tuple[str, str],
                     registry: RunRegistry, run_id: str,
                     payload: dict) -> None:
        size = self._ledger_size(registry, run_id)
        with self._lock:
            self._finals[key] = (size, payload)
            self._finals.move_to_end(key)
            while len(self._finals) > FINAL_CACHE_SLOTS:
                self._finals.popitem(last=False)

    def _broadcast_done(self, broadcast: _Broadcast) -> None:
        with self._lock:
            if self._broadcasts.get(broadcast.key) is broadcast:
                del self._broadcasts[broadcast.key]

    # ------------------------------------------------------------------
    def subscribe(self, tenant: str, run_id: str,
                  registry: RunRegistry) -> Subscription:
        """A live event stream over ``run_id`` in ``tenant``.

        Raises :class:`repro.errors.UnknownRunError` for a bad id
        (the follower validates the manifest up front).
        """
        key = (tenant, run_id)
        while True:
            with self._lock:
                if self._closed:
                    raise ReproError("server is shutting down")
                cached = self._finals.get(key)
                if (cached is not None and cached[0]
                        == self._ledger_size(registry, run_id)):
                    subscription = Subscription()
                    subscription.publish(_SNAPSHOT, cached[1])
                    subscription.end({"run_id": run_id})
                    return subscription
                if cached is not None:
                    del self._finals[key]   # resumed: re-follow
                broadcast = self._broadcasts.get(key)
                if broadcast is None:
                    broadcast = _Broadcast(
                        self, key, run_id, registry,
                        interval_s=self.interval_s,
                        idle_grace_s=self.idle_grace_s)
                    self._broadcasts[key] = broadcast
                    broadcast.start()
            subscription = Subscription(on_close=broadcast.remove)
            if broadcast.add(subscription):
                return subscription
            # Broadcast ended between lookup and attach: retry (the
            # final is now cached, or a fresh broadcast spins up).

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        with self._lock:
            broadcasts = list(self._broadcasts.values())
        return {
            "broadcasts": len(broadcasts),
            "subscribers": sum(b.subscriber_count
                               for b in broadcasts),
            "cached_finals": len(self._finals),
        }

    def close(self) -> None:
        """Stop every broadcast and release every subscriber."""
        with self._lock:
            self._closed = True
            broadcasts = list(self._broadcasts.values())
        for broadcast in broadcasts:
            broadcast.stop()
        for broadcast in broadcasts:
            broadcast._thread.join(timeout=5.0)
            broadcast._end(drain=True)
