"""repro.serve — benchmark-as-a-service over plain HTTP.

The library's runs were already durable (``repro.runs``), observable
(``repro.obs``) and distributable (``repro.dist``); this package puts
them on the network.  A stdlib-only :class:`ReproServer`
(``http.server.ThreadingHTTPServer``, no framework dependency)
exposes REST endpoints for browsing taxonomies and question pools,
listing/showing/diffing ledgered runs (the exact JSON of the CLI's
``--json`` paths, via the shared :mod:`repro.serve.views` builders),
submitting evaluation runs that execute on background worker threads
(:class:`JobManager`), and a Server-Sent-Events stream that fans one
:class:`repro.obs.LedgerFollower` per run out to any number of
concurrent remote viewers (:class:`FollowerHub`) — the live ``repro
watch`` dashboard, as a service.  Runs are namespaced per tenant via
the ``X-Repro-Tenant`` header.

Quickstart::

    >>> from repro.serve import ReproServer
    >>> server = ReproServer(root="/tmp/runs", port=0).start()
    >>> # curl $URL/runs; curl -N $URL/runs/<id>/events
    >>> server.close()

Or from the shell: ``python -m repro serve --host 0.0.0.0 --port
8080 --runs-dir ~/runs``.
"""

from repro.serve.app import (DEFAULT_MAX_BODY_BYTES, DEFAULT_TENANT,
                             TENANT_HEADER, ReproServer)
from repro.serve.hub import FollowerHub, Subscription
from repro.serve.jobs import JOB_STATES, Job, JobManager
from repro.serve.views import (run_cell_rows, run_diff_payload,
                               run_result_payload, run_show_payload,
                               runs_list_payload)

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_TENANT",
    "FollowerHub",
    "JOB_STATES",
    "Job",
    "JobManager",
    "ReproServer",
    "Subscription",
    "TENANT_HEADER",
    "run_cell_rows",
    "run_diff_payload",
    "run_result_payload",
    "run_show_payload",
    "runs_list_payload",
]
