"""Background execution of submitted runs, with job tracking.

``POST /runs`` must return immediately — a paper-scale sweep takes
minutes to hours — so the server separates *admission* from
*execution*.  Admission happens on the request thread: the
:class:`repro.runs.RunRequest` is validated, its cells are planned
and its run directory + manifest are created, so the response already
carries a resolvable ``run_id`` (the client can open its SSE stream
before the first question is asked).  Execution happens on a bounded
worker pool owned by the :class:`JobManager`; each job drives
:func:`repro.runs.execute_run` (or ``resume_run``), which builds the
engine the request describes, streams every event into the ledger,
and hands back per-job :class:`repro.engine.EngineStats` that the
jobs API exposes once the run completes.

Jobs are in-memory bookkeeping only — the durable truth is the run
ledger, exactly as for CLI runs.  A server restart forgets its job
table but loses no run: ``runs resume`` (or ``POST
/runs/<id>/resume``) finishes anything interrupted.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import RunError
from repro.runs.driver import create_run, execute_run
from repro.runs.registry import RunRegistry
from repro.runs.request import RunRequest
from repro.runs.resume import resume_run

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "finished", "failed")


@dataclass
class Job:
    """One submitted execution, trackable until the server restarts."""

    job_id: str
    kind: str                        # "run" | "resume"
    tenant: str
    run_id: str
    state: str = "queued"
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    evaluated: int = 0
    replayed: int = 0
    cells: int = 0
    #: EngineStats snapshot of the finished execution.
    stats: dict | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "tenant": self.tenant,
            "run_id": self.run_id,
            "state": self.state,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "evaluated": self.evaluated,
            "replayed": self.replayed,
            "cells": self.cells,
            "stats": self.stats,
        }


class JobManager:
    """Bounded worker pool executing runs for the HTTP API."""

    def __init__(self, max_workers: int = 2):
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, max_workers),
            thread_name_prefix="serve-job")
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    def _admit(self, kind: str, tenant: str, run_id: str) -> Job:
        with self._lock:
            if self._closed:
                raise RunError("job manager is shutting down")
            job = Job(job_id=f"job-{next(self._ids):04d}", kind=kind,
                      tenant=tenant, run_id=run_id)
            self._jobs[job.job_id] = job
        return job

    def submit_run(self, request: RunRequest, registry: RunRegistry,
                   tenant: str = "") -> Job:
        """Create the run directory now, execute in the background."""
        run_id = create_run(request, registry=registry)
        job = self._admit("run", tenant, run_id)
        self._pool.submit(self._execute, job, registry,
                          lambda: execute_run(request,
                                              registry=registry,
                                              run_id=run_id))
        return job

    def submit_resume(self, run_id: str, registry: RunRegistry,
                      tenant: str = "") -> Job:
        """Finish an interrupted run in the background."""
        registry.manifest(run_id)        # raises UnknownRunError now
        job = self._admit("resume", tenant, run_id)
        self._pool.submit(self._execute, job, registry,
                          lambda: resume_run(run_id,
                                             registry=registry))
        return job

    def _execute(self, job: Job, registry: RunRegistry,
                 action) -> None:
        with self._lock:
            job.state = "running"
            job.started_at = time.time()
        try:
            result = action()
        except BaseException as exc:
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
            return
        with self._lock:
            job.state = "finished"
            job.finished_at = time.time()
            job.evaluated = result.evaluated
            job.replayed = result.replayed
            job.cells = len(result.cells)
            job.stats = (result.stats.to_dict()
                         if result.stats is not None else None)

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        """Jobs (optionally one tenant's), oldest first."""
        with self._lock:
            jobs = list(self._jobs.values())
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        return sorted(jobs, key=lambda job: job.job_id)

    def active(self) -> int:
        with self._lock:
            return sum(1 for job in self._jobs.values()
                       if job.state in ("queued", "running"))

    def close(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
