"""Canonical JSON payloads shared by the CLI and the HTTP API.

The acceptance contract of the serving layer is that a remote caller
hitting ``GET /runs``, ``GET /runs/<id>`` or ``GET /runs/<id>/diff/<b>``
receives *exactly* the JSON the CLI's ``runs list/show/diff --json``
prints.  Rather than asserting that equality after the fact, both
surfaces call the builders in this module — there is one codepath, so
the payloads cannot drift.  ``run_result_payload`` is the machine
form of a finished :class:`repro.runs.RunResult` (the ``repro run
--json`` summary and the server's ``GET /runs/<id>/result``).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.results import QuestionRecord, metrics_to_dict
from repro.errors import RunError
from repro.obs.trail import trail_summary, trail_to_dict
from repro.runs.diff import diff_runs
from repro.runs.driver import RunResult, load_run
from repro.runs.ledger import RunState
from repro.runs.registry import RunRegistry


def run_cell_rows(state: RunState) -> list[dict[str, object]]:
    """Per-cell rows of ``runs show`` (shared by text and JSON)."""
    rows = []
    for cell_id, cell in state.cells.items():
        rows.append({
            "cell": cell_id,
            "n": cell.expected_n,
            "recorded": len(cell.records),
            "accuracy": (f"{cell.metrics.accuracy:.3f}"
                         if cell.complete else "-"),
            "miss_rate": (f"{cell.metrics.miss_rate:.3f}"
                          if cell.complete else "-"),
            "status": "done" if cell.complete else "partial",
        })
    return rows


def runs_list_payload(registry: RunRegistry) -> list[dict[str, object]]:
    """The ``runs list --json`` document: one entry per run."""
    return [summary.to_dict() for summary in registry.list_runs()]


def run_show_payload(registry: RunRegistry,
                     run_id: str) -> dict[str, object]:
    """The ``runs show <id> --json`` document.

    Raises :class:`repro.errors.UnknownRunError` for a bad id — the
    CLI prints it, the server maps it to a 404.
    """
    # Deferred: repro.dist imports repro.runs at module level.
    from repro.dist.status import shard_statuses
    manifest = registry.manifest(run_id)
    state = registry.state(run_id)
    shards = registry.shard_count(run_id)
    shard_rows = (shard_statuses(run_id, registry=registry)
                  if shards else [])
    return {
        "manifest": manifest,
        "finished": state.finished,
        "attempts": state.attempts,
        "stats": state.stats,
        "budget": state.budget,
        "cells": run_cell_rows(state),
        "shards": [status.to_dict() for status in shard_rows],
    }


def run_diff_payload(registry: RunRegistry, run_a: str,
                     run_b: str) -> dict[str, object]:
    """The ``runs diff <a> <b> --json`` document."""
    return diff_runs(load_run(run_a, registry=registry),
                     load_run(run_b, registry=registry)).to_dict()


def iter_question_records(state: RunState) -> Iterator[
        tuple[int, str, int, QuestionRecord]]:
    """Every recorded question as ``(global index, cell id, index in
    cell, record)``.

    The global ordinal is deterministic — cells in ledger (= plan)
    order, question indices ascending — and is the index ``obs why``,
    ``obs grep`` and ``GET /runs/<id>/trail/<index>`` all share.
    """
    ordinal = 0
    for cell_id, cell in state.cells.items():
        for local in sorted(cell.records):
            yield ordinal, cell_id, local, cell.records[local]
            ordinal += 1


def run_trail_payload(registry: RunRegistry, run_id: str,
                      index: int) -> dict[str, object]:
    """One question's provenance (``obs why --json`` and
    ``GET /runs/<id>/trail/<index>``)."""
    state = registry.state(run_id)
    total = sum(len(cell.records) for cell in state.cells.values())
    for ordinal, cell_id, local, record in iter_question_records(state):
        if ordinal != index:
            continue
        return {
            "run_id": run_id,
            "index": ordinal,
            "cell": cell_id,
            "cell_index": local,
            "uid": record.question_uid,
            "model": record.model,
            "setting": record.setting,
            "parsed": record.parsed.value,
            "expected": record.expected.value,
            "correct": record.correct,
            "missed": record.missed,
            "prompt_tokens": record.prompt_tokens,
            "completion_tokens": record.completion_tokens,
            "trail": (trail_to_dict(record.trail)
                      if record.trail is not None else None),
        }
    raise RunError(f"run {run_id} has {total} recorded questions; "
                   f"no question index {index}")


def run_trails_payload(registry: RunRegistry,
                       run_id: str) -> dict[str, object]:
    """Per-cell trail analytics (``obs trails --json`` and
    ``GET /runs/<id>/trails``)."""
    state = registry.state(run_id)
    everything: list[QuestionRecord] = []
    cells: dict[str, object] = {}
    for cell_id, cell in state.cells.items():
        records = [cell.records[i] for i in sorted(cell.records)]
        everything.extend(records)
        cells[cell_id] = trail_summary(records)
    return {
        "run_id": run_id,
        "cells": cells,
        "totals": trail_summary(everything),
    }


def run_result_payload(result: RunResult) -> dict[str, object]:
    """Machine form of a run's final summary (``repro run --json``).

    Cells appear in the deterministic plan order the run executed
    them in, each with the canonical :class:`Metrics` codec, so
    scripted callers never scrape the human tables.
    """
    return {
        "run_id": result.run_id,
        "request": result.request.to_dict(),
        "cells": [{"cell": key.cell_id,
                   **metrics_to_dict(cell_result.metrics)}
                  for key, cell_result in result.cells.items()],
        "evaluated": result.evaluated,
        "replayed": result.replayed,
        "resumed_cells": list(result.resumed_cells),
        "stats": (result.stats.to_dict()
                  if result.stats is not None else None),
        "budget": result.budget,
    }
