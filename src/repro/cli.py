"""Command-line interface for the TaxoGlimpse reproduction.

    python -m repro stats
    python -m repro build-datasets --jobs 4
    python -m repro datasets --taxonomies glottolog
    python -m repro table --dataset hard --models GPT-4 LLMs4OL \\
        --taxonomies ebay ncbi --sample 60
    python -m repro levels --taxonomies ncbi --models GPT-4 --sample 80
    python -m repro ask GPT-4 "Is Sinitic language a type of \\
        Sino-Tibetan language? answer with (Yes/No/I don't know)"
    python -m repro case-study --sample 150
    python -m repro popularity
    python -m repro scalability
    python -m repro table --workers 8 --cache /tmp/responses.json
    python -m repro engine-stats --workers 8 --sample 60
    python -m repro run --models GPT-4 --taxonomies ebay --sample 60
    python -m repro run --taxonomies ebay --sample 60 --json
    python -m repro serve --host 0.0.0.0 --port 8080
    python -m repro runs list --json
    python -m repro runs show <run-id>
    python -m repro runs resume <run-id> --workers 8
    python -m repro run --shards 4 --models GPT-4 --taxonomies ebay
    python -m repro runs merge <run-id>
    python -m repro runs gc --dry-run
    python -m repro runs diff <run-id-a> <run-id-b>
    python -m repro watch <run-id> --once --json
    python -m repro obs trace <run-id> --out trace.json
    python -m repro obs metrics <run-id>
    python -m repro obs report <run-id>
    python -m repro obs history --last 10
    python -m repro obs check --baseline <run-id> \\
        --max-accuracy-drop 1.0
    python -m repro run --max-cost-usd 0.05 --models GPT-4 \\
        --taxonomies ebay --sample 60
    python -m repro obs cost <run-id> --json
    python -m repro run --trail --workers 8 --models GPT-4 \\
        --taxonomies ebay --sample 60
    python -m repro obs why <run-id> 17
    python -m repro obs grep <run-id> \\
        --where "attempts>1 and cache_hit==false"
    python -m repro obs trails <run-id> --json

Every command prints the same rows the corresponding paper artifact
reports; ``--sample`` trades fidelity for speed (omit for Cochran
paper-scale sizes).  ``-v``/``-vv`` raise log verbosity (retries,
injected faults, corrupt-artifact recoveries become visible),
``-q`` silences everything below errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.core.benchmark import TaxoGlimpse
from repro.core.report import format_engine_stats, format_rows
from repro.engine.cache import ResponseCache
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats
from repro.data.paper_tables import MODEL_ORDER, TAXONOMY_ORDER
from repro.data.paper_figures import SCALABILITY
from repro.errors import RunError
from repro.experiments.config import ExperimentConfig
from repro.experiments.consistency import probe_consistency
from repro.experiments.errors_analysis import error_breakdown
from repro.experiments.levels import run_levels
from repro.llm.deployment import plan_deployment
from repro.experiments.overall import run_overall
from repro.experiments.popularity import figure2_rows
from repro.experiments.scalability import (efficiency_summary,
                                           figure7_rows)
from repro.experiments.statistics import table1_rows
from repro.hybrid.case_study import CaseStudyConfig, run_case_study
from repro.llm.prompting import PromptSetting
from repro.llm.registry import get_model
from repro.obs import (AlertEvaluator, CostLedger, LedgerFollower,
                       Thresholds, check_entries, chrome_trace,
                       compile_predicate, configure_logging,
                       flame_report, format_prometheus, latest_for,
                       load_entry, phase_table, read_history,
                       read_spans_jsonl, registry_from_spans,
                       render_dashboard, trail_env, watch_run,
                       write_entry)
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools
from repro.runs import (RunRegistry, RunRequest, diff_runs,
                        execute_run, load_run, resume_run)
from repro.serve.views import (iter_question_records, run_cell_rows,
                               run_diff_payload, run_result_payload,
                               run_show_payload, run_trail_payload,
                               run_trails_payload, runs_list_payload)
from repro.dist import (DEFAULT_MIN_AGE_S, execute_run_sharded,
                        gc_runs, merge_run, render_shard_dashboard,
                        resume_run_sharded, shard_statuses,
                        watch_shards)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TaxoGlimpse reproduction: benchmark LLMs on "
                    "taxonomies (VLDB 2024)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise log verbosity (-v info, -vv "
                             "debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="log errors only")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="Table 1 taxonomy statistics")

    datasets = commands.add_parser(
        "datasets", help="Table 4 question-dataset statistics")
    _add_scope(datasets, models=False)

    build = commands.add_parser(
        "build-datasets", help="build (or warm-load) every question "
                               "pool through the artifact store")
    _add_scope(build, models=False)
    build.add_argument("--seed", default="",
                       help="sampling seed (default: paper pools)")
    build.add_argument("--jobs", type=int, default=None,
                       help="worker processes for cold builds "
                            "(default: all cores)")
    build.add_argument("--force", action="store_true",
                       help="rebuild even when warm artifacts exist")
    build.add_argument("--store", default=None, metavar="DIR",
                       help="artifact store directory (default: "
                            "$REPRO_STORE_DIR or ~/.cache/"
                            "repro-taxoglimpse/datasets)")

    table = commands.add_parser(
        "table", help="Tables 5-7 overall results matrix")
    table.add_argument("--dataset", choices=["hard", "easy", "mcq"],
                       default="hard")
    _add_scope(table)
    _add_engine_options(table)

    levels = commands.add_parser(
        "levels", help="Figure 3 per-level accuracy (hard)")
    _add_scope(levels)

    ask = commands.add_parser(
        "ask", help="send one prompt to a simulated model")
    ask.add_argument("model", choices=list(MODEL_ORDER))
    ask.add_argument("prompt")

    case = commands.add_parser(
        "case-study", help="Section 5.3 Amazon replacement study")
    case.add_argument("--sample", type=int, default=None)

    commands.add_parser("popularity",
                        help="Figure 2 popularity ranking")
    commands.add_parser("scalability",
                        help="Figure 7 cost table")

    consistency = commands.add_parser(
        "consistency", help="Is-A asymmetry/transitivity probes")
    consistency.add_argument("--models", nargs="+", default=["GPT-4"],
                             choices=list(MODEL_ORDER),
                             metavar="MODEL")
    consistency.add_argument("--taxonomies", nargs="+",
                             default=["ebay"],
                             choices=list(TAXONOMY_ORDER),
                             metavar="TAXONOMY")
    consistency.add_argument("--edges", type=int, default=60)

    deploy = commands.add_parser(
        "deploy", help="plan open-source models onto the paper's "
                       "GPU testbed")
    deploy.add_argument("--models", nargs="+",
                        default=list(SCALABILITY),
                        choices=list(SCALABILITY), metavar="MODEL")

    errors = commands.add_parser(
        "errors", help="error breakdown for one model/taxonomy cell")
    errors.add_argument("--model", default="GPT-4",
                        choices=list(MODEL_ORDER))
    errors.add_argument("--taxonomy", default="ebay",
                        choices=list(TAXONOMY_ORDER))
    errors.add_argument("--dataset", choices=["hard", "easy", "mcq"],
                        default="hard")
    errors.add_argument("--sample", type=int, default=None)

    engine_stats = commands.add_parser(
        "engine-stats", help="run one cell through the execution "
                             "engine and print its telemetry")
    engine_stats.add_argument("--model", default="GPT-4",
                              choices=list(MODEL_ORDER))
    engine_stats.add_argument("--taxonomy", default="ebay",
                              choices=list(TAXONOMY_ORDER))
    engine_stats.add_argument("--sample", type=int, default=60)
    engine_stats.add_argument(
        "--pool-replicas", type=int, default=1, metavar="N",
        help="serve the cell through a BackendPool of N "
             "response-equivalent replicas of the model (1 = no "
             "pool)")
    engine_stats.add_argument(
        "--hedge-delay", type=float, default=None, metavar="SECONDS",
        help="hedge a slow pool call onto the next replica after "
             "this many seconds (requires --pool-replicas >= 2)")
    _add_engine_options(engine_stats)

    run = commands.add_parser(
        "run", help="execute a sweep through the durable run ledger")
    run.add_argument("--dataset", choices=["hard", "easy", "mcq"],
                     default="hard")
    _add_scope(run)
    run.add_argument("--settings", nargs="+", default=["zero-shot"],
                     choices=[s.value for s in PromptSetting],
                     metavar="SETTING")
    run.add_argument("--seed", default="",
                     help="sampling seed (default: paper pools)")
    run.add_argument("--per-level", action="store_true",
                     help="one cell per question level (Figure 3 "
                          "shape) instead of level-combined pools")
    _add_runs_dir(run)
    _add_engine_options(run)
    run.add_argument("--shards", type=int, default=0, metavar="K",
                     help="split the sweep into K disjoint shards "
                          "executed by independent worker processes "
                          "and deterministically merged (0 = "
                          "single-process)")
    run.add_argument("--local-procs", type=int, default=None,
                     metavar="M",
                     help="worker processes driving --shards "
                          "(default: one per shard, capped at the "
                          "machine's cores; 0 = inline, for "
                          "debugging)")
    run.add_argument("--max-cost-usd", type=float, default=None,
                     metavar="USD",
                     help="stop the run at the next cell boundary "
                          "once the metered spend reaches this many "
                          "dollars (resume later with `runs resume`)")
    run.add_argument("--max-tokens", type=int, default=None,
                     metavar="N",
                     help="stop the run at the next cell boundary "
                          "once this many prompt+completion tokens "
                          "have been metered")
    run.add_argument("--json", action="store_true",
                     help="print the final summary as one JSON "
                          "object instead of the tables")

    serve = commands.add_parser(
        "serve", help="benchmark-as-a-service HTTP API with live "
                      "SSE run streaming")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--poll-interval", type=float, default=0.25,
                       metavar="SECONDS",
                       help="ledger poll cadence of the shared SSE "
                            "followers")
    serve.add_argument("--job-workers", type=int, default=2,
                       metavar="N",
                       help="background threads executing submitted "
                            "runs")
    _add_runs_dir(serve)

    runs = commands.add_parser(
        "runs", help="inspect, resume and diff ledgered runs")
    runs_commands = runs.add_subparsers(dest="runs_command",
                                        required=True)

    runs_list = runs_commands.add_parser(
        "list", help="every run in the registry")
    runs_list.add_argument("--json", action="store_true",
                           help="machine-readable output")
    _add_runs_dir(runs_list)

    runs_show = runs_commands.add_parser(
        "show", help="manifest and per-cell metrics of one run")
    runs_show.add_argument("run_id")
    runs_show.add_argument("--json", action="store_true",
                           help="machine-readable output")
    runs_show.add_argument("--follow", action="store_true",
                           help="live dashboard instead of the "
                                "static report (alias of `repro "
                                "watch`)")
    _add_runs_dir(runs_show)

    runs_resume = runs_commands.add_parser(
        "resume", help="finish an interrupted run from its ledger")
    runs_resume.add_argument("run_id")
    runs_resume.add_argument("--local-procs", type=int, default=None,
                             metavar="M",
                             help="worker processes when resuming a "
                                  "sharded run (0 = inline)")
    runs_resume.add_argument("--json", action="store_true",
                             help="print the final summary as one "
                                  "JSON object")
    _add_runs_dir(runs_resume)
    _add_engine_options(runs_resume)

    runs_merge = runs_commands.add_parser(
        "merge", help="fold a sharded run's shard ledgers into its "
                      "run ledger (bit-identical to a single-process "
                      "run)")
    runs_merge.add_argument("run_id")
    runs_merge.add_argument("--force", action="store_true",
                            help="re-merge from the shard ledgers "
                                 "even when the run is already "
                                 "finished")
    _add_runs_dir(runs_merge)

    runs_gc = runs_commands.add_parser(
        "gc", help="prune merged-away shard directories, orphaned "
                   "run directories and stale tmp files")
    runs_gc.add_argument("--dry-run", action="store_true",
                         help="report the candidates without "
                              "deleting anything")
    runs_gc.add_argument("--min-age", type=float,
                         default=DEFAULT_MIN_AGE_S, metavar="SECONDS",
                         help="leave crash debris younger than this "
                              "alone (it may be mid-write)")
    runs_gc.add_argument("--json", action="store_true",
                         help="machine-readable report")
    _add_runs_dir(runs_gc)

    runs_diff = runs_commands.add_parser(
        "diff", help="per-cell metric deltas and answer flips "
                     "between two runs")
    runs_diff.add_argument("run_a")
    runs_diff.add_argument("run_b")
    runs_diff.add_argument("--json", action="store_true",
                           help="machine-readable output")
    _add_runs_dir(runs_diff)

    watch = commands.add_parser(
        "watch", help="live dashboard over a (possibly still "
                      "running) run's ledger")
    watch.add_argument("run_id")
    watch.add_argument("--once", action="store_true",
                       help="print a single frame and exit")
    watch.add_argument("--json", action="store_true",
                       help="machine-readable snapshot(s)")
    watch.add_argument("--interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="seconds between ledger polls")
    watch.add_argument("--stall-after", type=float, default=None,
                       metavar="SECONDS",
                       help="flag the run stalled when neither "
                            "ledger nor heartbeat advances for this "
                            "long (default 30)")
    _add_runs_dir(watch)

    obs = commands.add_parser(
        "obs", help="export and inspect a run's span log")
    obs_commands = obs.add_subparsers(dest="obs_command",
                                      required=True)

    obs_trace = obs_commands.add_parser(
        "trace", help="Chrome trace_event JSON for chrome://tracing")
    obs_trace.add_argument("run_id")
    obs_trace.add_argument("--out", default=None, metavar="PATH",
                           help="write the trace JSON to PATH "
                                "instead of stdout")
    _add_runs_dir(obs_trace)

    obs_metrics = obs_commands.add_parser(
        "metrics", help="Prometheus-style text dump of span-derived "
                        "duration histograms")
    obs_metrics.add_argument("run_id")
    _add_runs_dir(obs_metrics)

    obs_report = obs_commands.add_parser(
        "report", help="per-phase wall-clock attribution and ASCII "
                       "flamegraph")
    obs_report.add_argument("run_id")
    obs_report.add_argument("--width", type=int, default=32,
                            help="flamegraph bar width in characters")
    _add_runs_dir(obs_report)

    obs_history = obs_commands.add_parser(
        "history", help="cross-run metric time series "
                        "(history.jsonl)")
    obs_history.add_argument("--last", type=int, default=None,
                             metavar="N",
                             help="only the newest N entries")
    obs_history.add_argument("--json", action="store_true",
                             help="machine-readable output")
    _add_runs_dir(obs_history)

    defaults = Thresholds()
    obs_check = obs_commands.add_parser(
        "check", help="regression gate: a history entry vs a "
                      "baseline, non-zero exit on violation")
    obs_check.add_argument("--baseline", default=None,
                           metavar="RUN_ID",
                           help="baseline = newest history entry of "
                                "this run")
    obs_check.add_argument("--baseline-file", default=None,
                           metavar="PATH",
                           help="baseline = a standalone entry JSON "
                                "(the committed CI baseline)")
    obs_check.add_argument("--run", default=None, metavar="RUN_ID",
                           help="candidate run (default: newest "
                                "history entry)")
    obs_check.add_argument("--max-accuracy-drop", type=float,
                           default=defaults.accuracy_drop_pts,
                           metavar="PTS",
                           help="tolerated accuracy drop in points, "
                                "overall and per cell")
    obs_check.add_argument("--max-throughput-drop", type=float,
                           default=defaults.throughput_drop_pct,
                           metavar="PCT",
                           help="tolerated throughput drop, percent "
                                "of baseline")
    obs_check.add_argument("--max-p99-blowup", type=float,
                           default=defaults.p99_blowup_pct,
                           metavar="PCT",
                           help="tolerated p99 latency increase, "
                                "percent of baseline")
    obs_check.add_argument("--max-cost-blowup", type=float,
                           default=defaults.cost_blowup_pct,
                           metavar="PCT",
                           help="tolerated run-cost increase, "
                                "percent of baseline")
    obs_check.add_argument("--max-cache-hit-drop", type=float,
                           default=defaults.cache_hit_drop_pts,
                           metavar="PTS",
                           help="tolerated cache-hit-rate drop in "
                                "points")
    obs_check.add_argument("--write-baseline", default=None,
                           metavar="PATH",
                           help="write the candidate entry to PATH "
                                "as a baseline file and exit")
    obs_check.add_argument("--json", action="store_true",
                           help="machine-readable report")
    _add_runs_dir(obs_check)

    obs_cost = obs_commands.add_parser(
        "cost", help="per-cell token/cost accounting folded from a "
                     "run's ledger")
    obs_cost.add_argument("run_id")
    obs_cost.add_argument("--json", action="store_true",
                          help="machine-readable output")
    obs_cost.add_argument("--prometheus", action="store_true",
                          help="labeled text-exposition series "
                               "instead of the table")
    _add_runs_dir(obs_cost)

    obs_why = obs_commands.add_parser(
        "why", help="explain one question's provenance trail — "
                    "retries, cache, coalescing, batch, replica, "
                    "cost — with span citations")
    obs_why.add_argument("run_id")
    obs_why.add_argument("index", type=int,
                         help="global question index (cells in plan "
                              "order; `obs grep` prints it)")
    obs_why.add_argument("--json", action="store_true",
                         help="the GET /runs/<id>/trail/<index> "
                              "payload instead of prose")
    _add_runs_dir(obs_why)

    obs_grep = obs_commands.add_parser(
        "grep", help="filter a run's questions by a predicate over "
                     "their trails and outcomes")
    obs_grep.add_argument("run_id")
    obs_grep.add_argument("--where", required=True, metavar="EXPR",
                          help="predicate over trail fields, e.g. "
                               "\"attempts>1 and cache_hit==false\"")
    obs_grep.add_argument("--json", action="store_true",
                          help="matching rows as JSON objects")
    _add_runs_dir(obs_grep)

    obs_trails = obs_commands.add_parser(
        "trails", help="per-cell provenance analytics folded from a "
                       "run's trails")
    obs_trails.add_argument("run_id")
    obs_trails.add_argument("--json", action="store_true",
                            help="the GET /runs/<id>/trails payload")
    _add_runs_dir(obs_trails)
    return parser


def _add_runs_dir(command: argparse.ArgumentParser) -> None:
    command.add_argument("--runs-dir", default=None, metavar="DIR",
                         help="run registry directory (default: "
                              "$REPRO_RUNS_DIR or ~/.cache/"
                              "repro-taxoglimpse/runs)")


def _add_scope(command: argparse.ArgumentParser,
               models: bool = True) -> None:
    if models:
        command.add_argument("--models", nargs="+",
                             default=list(MODEL_ORDER),
                             choices=list(MODEL_ORDER),
                             metavar="MODEL")
    command.add_argument("--taxonomies", nargs="+",
                         default=list(TAXONOMY_ORDER),
                         choices=list(TAXONOMY_ORDER),
                         metavar="TAXONOMY")
    command.add_argument("--sample", type=int, default=None,
                         help="per-level sample size (default: paper "
                              "Cochran sizes)")


def _add_engine_options(command: argparse.ArgumentParser) -> None:
    command.add_argument("--workers", type=int, default=1,
                         help="engine worker threads (1 = sequential)")
    command.add_argument("--retries", type=int, default=3,
                         help="retry budget for transient model "
                              "faults")
    command.add_argument("--cache", default=None, metavar="PATH",
                         help="persist the response cache as JSON at "
                              "PATH (loaded first if it exists)")
    command.add_argument("--batch-size", type=int, default=1,
                         metavar="N",
                         help="group up to N concurrent prompts into "
                              "one backend generate_batch call (1 = "
                              "per-prompt)")
    command.add_argument("--batch-linger", type=float, default=0.002,
                         metavar="SECONDS",
                         help="how long a short batch waits for "
                              "company before flushing")
    command.add_argument("--coalesce", action="store_true",
                         help="identical in-flight prompts share one "
                              "backend call (the cache only helps "
                              "completed calls)")
    command.add_argument("--trail", action="store_true",
                         help="record a per-question provenance "
                              "trail on every record (inspect with "
                              "`repro obs why` / `repro obs grep`)")


def _build_engine(args: argparse.Namespace) -> EvaluationEngine:
    """An engine from the shared --workers/--retries/--cache flags
    (plus the batching/coalescing knobs when present)."""
    cache = None
    if args.cache and os.path.exists(args.cache):
        cache = ResponseCache.load(args.cache)
    config = EngineConfig(
        max_workers=max(1, args.workers),
        retry=RetryPolicy(retries=max(0, args.retries)),
        batch_size=max(1, getattr(args, "batch_size", 1)),
        batch_linger_s=max(0.0, getattr(args, "batch_linger", 0.002)),
        coalesce=bool(getattr(args, "coalesce", False)),
        trail=bool(getattr(args, "trail", False)))
    return EvaluationEngine(config, cache=cache)


def _persist_cache(engine: EvaluationEngine,
                   args: argparse.Namespace) -> None:
    if args.cache and engine.cache is not None:
        engine.cache.save(args.cache)


def _cmd_stats(_: argparse.Namespace) -> str:
    return format_rows(table1_rows(),
                       title="Table 1: Statistics of taxonomies")


def _cmd_datasets(args: argparse.Namespace) -> str:
    rows = []
    for key in args.taxonomies:
        pools = build_pools(key, sample_size=args.sample)
        for row in pools.statistics():
            rows.append({"taxonomy": key, **row})
    return format_rows(rows, title="Table 4: Statistics of datasets")


def _cmd_build_datasets(args: argparse.Namespace) -> str:
    import time

    from repro.store import ArtifactStore, build_all_datasets, \
        default_store

    store = (ArtifactStore(args.store) if args.store
             else default_store() or ArtifactStore())
    keys = list(args.taxonomies)
    rows = []
    started = time.perf_counter()
    built = build_all_datasets(keys, sample_size=args.sample,
                               seed=args.seed, jobs=args.jobs,
                               store=store, force=args.force)
    elapsed = time.perf_counter() - started
    for key, pools in built.items():
        path = store.path_for(key, args.sample, args.seed)
        total = sum(row["easy"] + row["mcq"]
                    for row in pools.statistics()[:-1])
        rows.append({
            "taxonomy": key,
            "questions": total,
            "artifact": path.name,
            "kb": path.stat().st_size // 1024 if path.exists() else 0,
        })
    stats = store.stats
    footer = (f"\n{len(built)} taxonomies in {elapsed:.2f}s "
              f"(loads={stats.hits}, builds={stats.builds}, "
              f"store={store.root})")
    return format_rows(rows, title="Dataset artifacts") + footer


def _cmd_table(args: argparse.Namespace) -> str:
    config = ExperimentConfig(sample_size=args.sample,
                              models=tuple(args.models),
                              taxonomy_keys=tuple(args.taxonomies))
    engine = _build_engine(args)
    bench = TaxoGlimpse(sample_size=args.sample, engine=engine)
    result = run_overall(DatasetKind(args.dataset), config, bench=bench)
    _persist_cache(engine, args)
    title = (f"Overall results on {args.dataset} datasets "
             f"(mean |dA| vs paper = "
             f"{result.mean_abs_accuracy_delta:.3f})")
    table = bench.format_table(result.matrix(), title=title)
    if args.workers > 1 or args.cache:
        table += "\n" + format_engine_stats(engine.stats())
    return table


def _cmd_levels(args: argparse.Namespace) -> str:
    config = ExperimentConfig(sample_size=args.sample,
                              models=tuple(args.models),
                              taxonomy_keys=tuple(args.taxonomies))
    series = run_levels(config)
    rows = [row for entry in series for row in entry.rows()]
    return format_rows(rows, title="Accuracy per level (hard)")


def _cmd_ask(args: argparse.Namespace) -> str:
    return get_model(args.model).generate(args.prompt)


def _cmd_case_study(args: argparse.Namespace) -> str:
    result = run_case_study(CaseStudyConfig(sample_size=args.sample))
    return format_rows([{
        "precision (paper 0.713)": f"{result.precision:.3f}",
        "recall (paper 0.792)": f"{result.recall:.3f}",
        "saving (paper 59%)":
            f"{result.maintenance_saving * 100:.1f}%",
        "concepts": result.concepts_evaluated,
    }], title="Section 5.3 case study")


def _cmd_popularity(_: argparse.Namespace) -> str:
    return format_rows(figure2_rows(),
                       title="Figure 2: taxonomy popularity")


def _cmd_scalability(_: argparse.Namespace) -> str:
    rows = figure7_rows()
    table = format_rows(rows, title="Figure 7: scalability")
    return table + f"\nscaling exponents: {efficiency_summary()}"


def _cmd_consistency(args: argparse.Namespace) -> str:
    rows = []
    for model_name in args.models:
        model = get_model(model_name)
        for key in args.taxonomies:
            rows.append(probe_consistency(
                model, key, edges=args.edges,
                chains=args.edges).as_row())
    return format_rows(rows, title="Is-A consistency probes")


def _cmd_deploy(args: argparse.Namespace) -> str:
    plan = plan_deployment(list(args.models))
    table = format_rows(plan.as_rows(),
                        title="Deployment plan (paper testbed)")
    if not plan.feasible:
        table += f"\nUNPLACED: {', '.join(plan.unplaced)}"
    return table


def _cmd_errors(args: argparse.Namespace) -> str:
    from repro.core.runner import EvaluationRunner
    pool = build_pools(
        args.taxonomy,
        sample_size=args.sample).total_pool(DatasetKind(args.dataset))
    runner = EvaluationRunner(keep_records=True)
    result = runner.evaluate(get_model(args.model), pool)
    breakdown = error_breakdown(pool.questions, result.records)
    return format_rows(
        [breakdown.as_row()],
        title=f"Error breakdown: {args.model} on {args.taxonomy} "
              f"({args.dataset})")


def _cmd_engine_stats(args: argparse.Namespace) -> str:
    from repro.core.runner import EvaluationRunner
    from repro.questions.model import DatasetKind as Kind
    engine = _build_engine(args)
    runner = EvaluationRunner(engine=engine)
    pool = build_pools(
        args.taxonomy,
        sample_size=args.sample).total_pool(Kind.HARD)
    model = get_model(args.model)
    backend_pool = None
    if args.pool_replicas > 1:
        from repro.engine.pool import BackendPool
        # Replicas of one simulated model are response-equivalent by
        # construction, so hedged/fallback dispatch cannot change a
        # record — only the telemetry shows it happened.
        backend_pool = BackendPool(
            [get_model(args.model)
             for _ in range(args.pool_replicas)],
            hedge_delay_s=args.hedge_delay,
            telemetry=engine.telemetry, tracer=engine.tracer)
        model = backend_pool
    try:
        result = runner.evaluate(model, pool)
    finally:
        if backend_pool is not None:
            backend_pool.close()
    _persist_cache(engine, args)
    return format_engine_stats(
        engine.stats(),
        title=f"Engine telemetry: {args.model} on {args.taxonomy} "
              f"(n={result.metrics.n}, "
              f"workers={engine.config.max_workers})")


def _registry(args: argparse.Namespace) -> RunRegistry:
    return RunRegistry(args.runs_dir)


def _run_result_report(result, title: str,
                       as_json: bool = False) -> str:
    if as_json:
        return json.dumps(run_result_payload(result), indent=1)
    if result.request.per_level:
        rows = [{
            "cell": key.cell_id,
            "accuracy": f"{pool_result.metrics.accuracy:.3f}",
            "miss_rate": f"{pool_result.metrics.miss_rate:.3f}",
            "n": pool_result.metrics.n,
        } for key, pool_result in result.cells.items()]
        table = format_rows(rows, title=title)
    else:
        bench = TaxoGlimpse()
        tables = []
        for setting in result.request.settings:
            label = (f"{title} [{setting}]"
                     if len(result.request.settings) > 1 else title)
            tables.append(bench.format_table(result.matrix(setting),
                                             title=label))
        table = "\n".join(tables)
    footer = (f"\nrun {result.run_id}: {len(result.cells)} cells, "
              f"{result.evaluated} evaluated, "
              f"{result.replayed} replayed from ledger")
    if result.stats is not None:
        footer += "\n" + format_engine_stats(result.stats)
    if result.budget is not None:
        stop = result.budget
        footer += (f"\nBUDGET EXHAUSTED ({stop['reason']}): stopped "
                   f"at a cell boundary after "
                   f"{stop['completed_cells']} cells, "
                   f"${stop['spent_cost_usd']:.4f} / "
                   f"{stop['spent_tokens']} tokens spent — finish "
                   f"with `repro runs resume {result.run_id}`")
    return table + footer


def _cmd_run(args: argparse.Namespace) -> str:
    request = RunRequest(
        dataset=args.dataset,
        models=tuple(args.models),
        taxonomy_keys=tuple(args.taxonomies),
        settings=tuple(args.settings),
        sample_size=args.sample,
        seed=args.seed,
        per_level=args.per_level,
        workers=max(1, args.workers),
        retries=max(0, args.retries),
        batch_size=max(1, args.batch_size),
        coalesce=args.coalesce,
        trail=bool(getattr(args, "trail", False)),
        max_cost_usd=args.max_cost_usd,
        max_tokens=args.max_tokens,
    )
    if args.shards > 0:
        result = execute_run_sharded(
            request, args.shards, registry=_registry(args),
            procs=args.local_procs, cache_path=args.cache)
        return _run_result_report(
            result,
            title=f"Sharded run (x{args.shards}) on {args.dataset} "
                  f"datasets",
            as_json=args.json)
    engine = (_build_engine(args)
              if args.workers > 1 or args.batch_size > 1
              or args.coalesce else None)
    result = execute_run(request, registry=_registry(args),
                         engine=engine)
    if engine is not None:
        _persist_cache(engine, args)
    return _run_result_report(
        result, title=f"Ledgered run on {args.dataset} datasets",
        as_json=args.json)


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.serve import ReproServer
    server = ReproServer(root=args.runs_dir, host=args.host,
                         port=args.port,
                         poll_interval_s=args.poll_interval,
                         job_workers=args.job_workers)
    print(f"serving {server.root} on {server.url} "
          f"(Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.close()
    return f"stopped serving {server.root}"


def _cmd_runs(args: argparse.Namespace) -> str:
    return _RUNS_COMMANDS[args.runs_command](args)


def _cmd_runs_list(args: argparse.Namespace) -> str:
    registry = _registry(args)
    if args.json:
        # Same builder the HTTP API serves from (GET /runs).
        return json.dumps(runs_list_payload(registry), indent=1)
    summaries = registry.list_runs()
    if not summaries:
        return "no runs in registry"
    return format_rows([summary.as_row() for summary in summaries],
                       title="Ledgered runs")


def _watch(registry: RunRegistry, run_id: str, once: bool = False,
           as_json: bool = False, interval_s: float = 1.0,
           stall_after: float | None = None) -> str:
    """Shared body of ``repro watch`` and ``runs show --follow``."""
    if (registry.shard_count(run_id) > 0
            and not registry.ledger_path(run_id).exists()):
        return _watch_sharded(registry, run_id, once=once,
                              as_json=as_json, interval_s=interval_s,
                              stall_after=stall_after)
    if once:
        progress = LedgerFollower(
            run_id, registry=registry,
            stall_deadline_s=stall_after).poll()
        if as_json:
            return json.dumps(progress.to_dict(), indent=1)
        return render_dashboard(progress)
    render = ((lambda progress: json.dumps(progress.to_dict()))
              if as_json else render_dashboard)
    emit = print if as_json else None    # default: ANSI in-place
    # The dashboard gets a live SLO banner; the JSON stream stays
    # machine-parseable (alert frames live on the serve SSE stream).
    evaluator = None if as_json else AlertEvaluator()
    try:
        progress = watch_run(run_id, registry=registry,
                             interval_s=interval_s,
                             stall_deadline_s=stall_after,
                             render=render, emit=emit,
                             evaluator=evaluator)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return f"\nstopped watching {run_id}"
    return (f"run {run_id} finished: accuracy "
            f"{progress.accuracy:.3f}, "
            f"{progress.questions_done} questions in "
            f"{progress.elapsed_s:.1f}s")


def _watch_sharded(registry: RunRegistry, run_id: str,
                   once: bool = False, as_json: bool = False,
                   interval_s: float = 1.0,
                   stall_after: float | None = None) -> str:
    """Shard dashboard for a run whose shards are still unmerged."""
    kwargs = ({"stall_deadline_s": stall_after}
              if stall_after is not None else {})
    if once:
        statuses = shard_statuses(run_id, registry=registry, **kwargs)
        if as_json:
            return json.dumps(
                [status.to_dict() for status in statuses], indent=1)
        return render_shard_dashboard(run_id, statuses)
    try:
        statuses = watch_shards(run_id, registry=registry,
                                interval_s=interval_s,
                                emit=print if as_json else None,
                                **kwargs)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return f"\nstopped watching {run_id}"
    if all(status.status == "finished" for status in statuses):
        return (f"all {len(statuses)} shards finished — run "
                f"`repro runs merge {run_id}` to finish the run")
    return "shards settled: " + ", ".join(
        f"{status.shard:02d}={status.status}" for status in statuses)


def _cmd_watch(args: argparse.Namespace) -> str:
    return _watch(_registry(args), args.run_id, once=args.once,
                  as_json=args.json, interval_s=args.interval,
                  stall_after=args.stall_after)


def _cmd_runs_show(args: argparse.Namespace) -> str:
    registry = _registry(args)
    if args.follow:
        return _watch(registry, args.run_id, as_json=args.json)
    if args.json:
        # Same builder the HTTP API serves from (GET /runs/<id>).
        return json.dumps(run_show_payload(registry, args.run_id),
                          indent=1)
    manifest = registry.manifest(args.run_id)
    state = registry.state(args.run_id)
    cell_rows = run_cell_rows(state)
    shards = registry.shard_count(args.run_id)
    shard_rows = (shard_statuses(args.run_id, registry=registry)
                  if shards else [])
    status = "finished" if state.finished else "partial"
    header = (f"run {args.run_id} [{status}, "
              f"attempt {state.attempts}] "
              f"request={json.dumps(manifest['request'])}")
    out = header + "\n" + format_rows(cell_rows, title="Cells")
    if shard_rows:
        out += "\n" + format_rows(
            [status.as_row() for status in shard_rows],
            title=f"Shards (x{shards})")
    if state.stats:
        out += "\n" + format_engine_stats(
            EngineStats.from_dict(state.stats),
            title="Engine stats (run-finished snapshot)")
    spans_path = registry.spans_path(args.run_id)
    if spans_path.exists():
        spans = read_spans_jsonl(spans_path)
        if spans:
            out += "\n" + phase_table(spans)
    return out


def _cmd_runs_resume(args: argparse.Namespace) -> str:
    registry = _registry(args)
    if (registry.shard_count(args.run_id) > 0
            and not registry.state(args.run_id).finished):
        result = resume_run_sharded(args.run_id, registry=registry,
                                    procs=args.local_procs,
                                    cache_path=args.cache)
        return _run_result_report(
            result, title=f"Resumed sharded run {args.run_id}",
            as_json=args.json)
    engine = (_build_engine(args)
              if args.workers > 1 or args.batch_size > 1
              or args.coalesce else None)
    result = resume_run(args.run_id, registry=registry,
                        engine=engine)
    if engine is not None:
        _persist_cache(engine, args)
    return _run_result_report(
        result, title=f"Resumed run {args.run_id}",
        as_json=args.json)


def _cmd_runs_merge(args: argparse.Namespace) -> str:
    result = merge_run(args.run_id, registry=_registry(args),
                       force=args.force)
    return _run_result_report(
        result, title=f"Merged run {args.run_id}")


def _cmd_runs_gc(args: argparse.Namespace) -> str:
    report = gc_runs(registry=_registry(args), dry_run=args.dry_run,
                     min_age_s=args.min_age)
    if args.json:
        return json.dumps(report.to_dict(), indent=1)
    verb = "would remove" if report.dry_run else "removed"
    if not report.removed:
        return f"{verb} nothing — registry is clean"
    table = format_rows(
        [candidate.as_row() for candidate in report.removed],
        title="Registry garbage collection")
    return (table + f"\n{verb} {len(report.removed)} path(s), "
            f"{report.bytes_reclaimed} bytes")


def _cmd_runs_diff(args: argparse.Namespace) -> str:
    registry = _registry(args)
    if args.json:
        # Same builder the HTTP API serves from
        # (GET /runs/<a>/diff/<b>).
        return json.dumps(
            run_diff_payload(registry, args.run_a, args.run_b),
            indent=1)
    diff = diff_runs(load_run(args.run_a, registry=registry),
                     load_run(args.run_b, registry=registry))
    table = format_rows(
        diff.rows(), title=f"Diff {diff.run_a} -> {diff.run_b}")
    footer = (f"\n{len(diff.changed_cells)} changed cells, "
              f"{diff.total_flips} answer flips")
    perf = diff.perf_summary()
    if perf is not None:
        footer += (f"\nwall: {perf['wall_a_s']:.3f}s -> "
                   f"{perf['wall_b_s']:.3f}s "
                   f"({perf['wall_delta_s']:+.3f}s), throughput: "
                   f"{perf['throughput_a']:.1f} -> "
                   f"{perf['throughput_b']:.1f} q/s "
                   f"({perf['throughput_delta']:+.1f}), cost: "
                   f"${perf['cost_a_usd']:.4f} -> "
                   f"${perf['cost_b_usd']:.4f} "
                   f"({perf['cost_delta_usd']:+.4f})")
    if diff.only_in_a:
        footer += f"\nonly in {diff.run_a}: " + \
            ", ".join(diff.only_in_a)
    if diff.only_in_b:
        footer += f"\nonly in {diff.run_b}: " + \
            ", ".join(diff.only_in_b)
    if diff.identical:
        footer += "\nruns are identical"
    return table + footer


def _load_run_spans(args: argparse.Namespace):
    """The run's persisted spans (validates the run id first)."""
    registry = _registry(args)
    registry.manifest(args.run_id)       # raises UnknownRunError
    path = registry.spans_path(args.run_id)
    if not path.exists():
        raise RunError(
            f"run {args.run_id} has no span log ({path}); it was "
            f"executed with tracing disabled")
    return read_spans_jsonl(path)


def _cmd_obs(args: argparse.Namespace) -> str:
    return _OBS_COMMANDS[args.obs_command](args)


def _cmd_obs_trace(args: argparse.Namespace) -> str:
    document = json.dumps(chrome_trace(_load_run_spans(args)),
                          indent=1)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(document + "\n")
        return (f"wrote {args.out} — open it in chrome://tracing "
                f"or https://ui.perfetto.dev")
    return document


def _cmd_obs_metrics(args: argparse.Namespace) -> str:
    registry = registry_from_spans(_load_run_spans(args))
    return format_prometheus(registry).rstrip("\n")


def _cmd_obs_report(args: argparse.Namespace) -> str:
    spans = _load_run_spans(args)
    return (phase_table(spans) + "\n\n"
            + flame_report(spans, width=max(8, args.width)))


def _cmd_obs_history(args: argparse.Namespace) -> str:
    entries = read_history(_registry(args))
    if args.last is not None and args.last >= 0:
        entries = entries[-args.last:] if args.last else []
    if args.json:
        return json.dumps([entry.to_dict() for entry in entries],
                          indent=1)
    if not entries:
        return "no history entries"
    return format_rows([entry.as_row() for entry in entries],
                       title="Run history (oldest first)")


def _cmd_obs_check(args: argparse.Namespace) -> "str | tuple[str, int]":
    registry = _registry(args)
    entries = read_history(registry)
    candidate = latest_for(entries, run_id=args.run)
    if candidate is None:
        wanted = f" for run {args.run}" if args.run else ""
        raise RunError(f"no history entry{wanted} in "
                       f"{registry.history_path()} — execute a run "
                       f"first")
    if args.write_baseline:
        path = write_entry(candidate, args.write_baseline)
        return (f"wrote baseline {path} "
                f"(run {candidate.run_id}, "
                f"accuracy {candidate.accuracy:.3f})")
    if args.baseline_file:
        baseline = load_entry(args.baseline_file)
    elif args.baseline:
        baseline = latest_for(entries, run_id=args.baseline)
        if baseline is None:
            raise RunError(f"no history entry for baseline run "
                           f"{args.baseline}")
    else:
        raise RunError("pass --baseline <run-id> or "
                       "--baseline-file PATH")
    report = check_entries(baseline, candidate, Thresholds(
        accuracy_drop_pts=args.max_accuracy_drop,
        throughput_drop_pct=args.max_throughput_drop,
        p99_blowup_pct=args.max_p99_blowup,
        cost_blowup_pct=args.max_cost_blowup,
        cache_hit_drop_pts=args.max_cache_hit_drop))
    code = 0 if report.passed else 1
    if args.json:
        return json.dumps(report.to_dict(), indent=1), code
    table = format_rows(
        report.rows(),
        title=(f"Regression gate: {report.candidate_id} vs "
               f"baseline {report.baseline_id}"))
    verdict = ("PASS" if report.passed
               else f"FAIL: {len(report.failures)} check(s) over "
                    f"the limit")
    return table + "\n" + verdict, code


def _cmd_obs_cost(args: argparse.Namespace) -> str:
    ledger = CostLedger.from_run(args.run_id,
                                 registry=_registry(args))
    if args.json:
        return json.dumps(ledger.to_dict(), indent=1)
    if args.prometheus:
        return ledger.to_prometheus().rstrip("\n")
    if not ledger.cells:
        return (f"run {args.run_id} has no completed cells yet — "
                f"nothing to account")
    return format_rows(ledger.rows(),
                       title=f"Cost accounting: run {args.run_id}")


def _cmd_obs_why(args: argparse.Namespace) -> str:
    # Same builder the HTTP API serves (GET /runs/<id>/trail/<i>).
    payload = run_trail_payload(_registry(args), args.run_id,
                                args.index)
    if args.json:
        return json.dumps(payload, indent=1)
    outcome = ("correct" if payload["correct"]
               else "missed" if payload["missed"] else "wrong")
    lines = [
        f"question {payload['index']} of run {payload['run_id']}",
        f"  {payload['uid']} — index {payload['cell_index']} of cell "
        f"{payload['cell']}",
        f"  {payload['model']} under {payload['setting']} answered "
        f"{payload['parsed']!r} (expected {payload['expected']!r}): "
        f"{outcome}",
    ]
    trail = payload["trail"]
    if trail is None:
        lines.append("  no provenance trail recorded — execute the "
                     "run with --trail to capture one")
        return "\n".join(lines)
    lines.extend("  " + line for line in _why_trail_lines(trail))
    try:
        spans = _load_run_spans(args)
    except RunError:
        spans = []
    cited = [span for span in spans
             if span.attrs.get("question") == payload["uid"]
             and span.attrs.get("cell") == payload["cell"]]
    if cited:
        lines.append("  spans:")
        for span in cited:
            detail = "".join(
                f" {key}={span.attrs[key]}"
                for key in ("model", "attempt", "error")
                if key in span.attrs)
            lines.append(f"    {span.name}#{span.span_id} "
                         f"{span.duration_s * 1e3:.2f}ms{detail}")
    return "\n".join(lines)


def _why_trail_lines(trail: dict) -> list[str]:
    """The causal narrative of one trail dict (defaults omitted by
    the codec, hence the ``.get`` defaults)."""
    lines = []
    coalesced = trail.get("coalesced")
    if coalesced == "follower":
        lines.append(f"coalesced: followed the in-flight leader for "
                     f"prompt {trail.get('leader_key')} — no backend "
                     f"call of its own")
    elif coalesced == "leader":
        lines.append(f"coalesced: led prompt "
                     f"{trail.get('leader_key')} for every "
                     f"concurrent duplicate")
    cache_hit = trail.get("cache_hit")
    if cache_hit is True:
        lines.append(f"cache: hit ({trail.get('cache_source')} "
                     f"entry) — answered without a backend call")
    elif cache_hit is False:
        lines.append("cache: miss — went to the backend")
    attempts = trail.get("attempts", 1)
    errors = trail.get("errors", [])
    if attempts > 1 or errors:
        faults = ", ".join(errors) if errors else "no recorded fault"
        injected = (" (injected)" if trail.get("injected") else "")
        lines.append(f"retry: {attempts} attempt(s); faults: "
                     f"{faults}{injected}")
    if trail.get("rate_wait_s", 0.0) > 0:
        lines.append(f"rate limit: waited "
                     f"{trail['rate_wait_s'] * 1e3:.2f}ms for a token")
    if trail.get("timeout_lost_s", 0.0) > 0:
        lines.append(f"timeout: {trail['timeout_lost_s'] * 1e3:.2f}ms "
                     f"lost to deadline overruns")
    if trail.get("batch") is not None:
        lines.append(f"batch: rode batch #{trail['batch']} of "
                     f"{trail.get('batch_size')} prompt(s), flushed "
                     f"on {trail.get('batch_cut')}")
    replica = trail.get("replica")
    fallbacks = trail.get("fallbacks", [])
    if replica is not None or fallbacks:
        hops = (f" after replica(s) "
                f"{', '.join(str(i) for i in fallbacks)} failed"
                if fallbacks else "")
        hedge = ""
        if trail.get("hedged"):
            hedge = (", the hedge won" if trail.get("hedge_won")
                     else ", the primary beat the hedge")
        lines.append(f"pool: answered by replica {replica}{hops}"
                     f"{hedge}")
    if trail.get("cost_nanos", 0) > 0:
        lines.append(f"cost: {trail.get('billed_prompt_tokens', 0)} "
                     f"prompt + "
                     f"{trail.get('billed_completion_tokens', 0)} "
                     f"completion tokens billed, "
                     f"${trail['cost_nanos'] / 1e9:.6f}")
    return lines


def _cmd_obs_grep(args: argparse.Namespace) -> str:
    registry = _registry(args)
    state = registry.state(args.run_id)
    predicate = compile_predicate(args.where)
    total = 0
    matches = []
    for ordinal, cell_id, _, record in iter_question_records(state):
        total += 1
        env = trail_env(record, index=ordinal, cell=cell_id)
        if predicate(env):
            matches.append(env)
    if args.json:
        return json.dumps(matches, indent=1, default=list)
    if not matches:
        return (f"0 of {total} questions in run {args.run_id} match "
                f"{args.where!r}")
    rows = []
    for env in matches:
        rows.append({
            "idx": env["index"],
            "cell": env["cell"],
            "uid": env["uid"],
            "ok": "y" if env["correct"] else "n",
            "attempts": env["attempts"],
            "cache": {True: "hit", False: "miss",
                      None: "-"}[env["cache_hit"]],
            "errors": ",".join(env["errors"]) or "-",
            "replica": ("-" if env["replica"] is None
                        else env["replica"]),
        })
    table = format_rows(
        rows, title=f"{len(matches)} of {total} questions match "
                    f"{args.where!r}")
    return (table + f"\nexplain one with `repro obs why "
                    f"{args.run_id} <idx>`")


def _cmd_obs_trails(args: argparse.Namespace) -> str:
    # Same builder the HTTP API serves (GET /runs/<id>/trails).
    payload = run_trails_payload(_registry(args), args.run_id)
    if args.json:
        return json.dumps(payload, indent=1)
    if not payload["cells"]:
        return (f"run {args.run_id} has no recorded questions yet — "
                f"nothing to summarize")
    rows = [_trails_row(cell_id, summary)
            for cell_id, summary in payload["cells"].items()]
    totals = payload["totals"]
    cache = totals["cache"]
    retry = totals["retry"]
    footer = (f"\ntotals: {totals['questions']} questions "
              f"({totals['with_trail']} with trails), cache "
              f"{cache['hits']} hit / {cache['misses']} miss, "
              f"{retry['retried']} retried "
              f"({retry['injected_faults']} injected faults), "
              f"{totals['coalesce']['followers']} coalesced, "
              f"{totals['hedge']['fired']} hedges fired, "
              f"${totals['cost']['cost_nanos'] / 1e9:.4f} billed")
    return format_rows(
        rows, title=f"Provenance trails: run {args.run_id}") + footer


def _trails_row(cell_id: str, summary: dict) -> dict[str, object]:
    hit_rate = summary["cache"]["hit_rate"]
    return {
        "cell": cell_id,
        "questions": summary["questions"],
        "trails": summary["with_trail"],
        "hit_rate": ("-" if hit_rate is None else f"{hit_rate:.3f}"),
        "retried": summary["retry"]["retried"],
        "faults": summary["retry"]["injected_faults"],
        "coalesced": summary["coalesce"]["followers"],
        "hedged": summary["hedge"]["fired"],
        "cost_usd": f"{summary['cost']['cost_nanos'] / 1e9:.4f}",
    }


_OBS_COMMANDS = {
    "trace": _cmd_obs_trace,
    "metrics": _cmd_obs_metrics,
    "report": _cmd_obs_report,
    "history": _cmd_obs_history,
    "check": _cmd_obs_check,
    "cost": _cmd_obs_cost,
    "why": _cmd_obs_why,
    "grep": _cmd_obs_grep,
    "trails": _cmd_obs_trails,
}


_RUNS_COMMANDS = {
    "list": _cmd_runs_list,
    "show": _cmd_runs_show,
    "resume": _cmd_runs_resume,
    "merge": _cmd_runs_merge,
    "gc": _cmd_runs_gc,
    "diff": _cmd_runs_diff,
}


_COMMANDS = {
    "stats": _cmd_stats,
    "datasets": _cmd_datasets,
    "build-datasets": _cmd_build_datasets,
    "table": _cmd_table,
    "levels": _cmd_levels,
    "ask": _cmd_ask,
    "case-study": _cmd_case_study,
    "popularity": _cmd_popularity,
    "scalability": _cmd_scalability,
    "consistency": _cmd_consistency,
    "deploy": _cmd_deploy,
    "errors": _cmd_errors,
    "engine-stats": _cmd_engine_stats,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "runs": _cmd_runs,
    "watch": _cmd_watch,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    configure_logging(-1 if args.quiet else args.verbose)
    try:
        output = _COMMANDS[args.command](args)
        # Gate commands (`obs check`) return (text, exit_code).
        output, code = (output if isinstance(output, tuple)
                        else (output, 0))
        print(output)
    except BrokenPipeError:      # e.g. `repro obs metrics ... | head`
        return 0
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
