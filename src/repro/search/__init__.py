"""Entity search over taxonomies: tree vs LLM vs hybrid routing."""

from repro.search.engine import (HybridRouter, LlmRouter,
                                 ProductCorpus, SearchResult,
                                 TreeRouter, lexical_score)
from repro.search.evaluation import (StrategyScore, evaluate_search,
                                     make_queries)

__all__ = [
    "ProductCorpus",
    "SearchResult",
    "TreeRouter",
    "LlmRouter",
    "HybridRouter",
    "lexical_score",
    "StrategyScore",
    "evaluate_search",
    "make_queries",
]
