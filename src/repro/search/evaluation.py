"""Comparative evaluation of the three search strategies.

Queries are synthesized from leaf categories ("best <category>",
"<category> deals") with the category's own products as relevance
ground truth; each router answers every query and is scored with
precision/recall over returned product sets, plus routing accuracy.
The shape to expect (and that the bench asserts): the tree router is
near-perfect but pays for the full tree; the LLM-only router's
precision collapses (it must reject the entire corpus per query); the
hybrid router sits in between, matching the Section 5.3 trade-off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import fmean

from repro.core.metrics import retrieval_metrics
from repro.generators.registry import build_taxonomy
from repro.search.engine import (HybridRouter, LlmRouter,
                                 ProductCorpus, TreeRouter)
from repro.taxonomy.taxonomy import Taxonomy

_QUERY_SHAPES = ("best {}", "{} deals", "cheap {}", "top rated {}")


@dataclass(frozen=True, slots=True)
class StrategyScore:
    """Aggregate quality of one routing strategy."""

    strategy: str
    precision: float
    recall: float
    routing_accuracy: float     # routed to the right category/ancestor
    queries: int

    def as_row(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "routing acc": round(self.routing_accuracy, 3),
        }


def make_queries(taxonomy: Taxonomy, count: int,
                 seed: str = "queries") -> list[tuple[str, str]]:
    """(query text, truth leaf node id) pairs from leaf categories."""
    rng = random.Random(f"{seed}|{taxonomy.name}")
    leaves = taxonomy.leaves()
    picked = rng.sample(leaves, min(count, len(leaves)))
    return [(rng.choice(_QUERY_SHAPES).format(node.name.lower()),
             node.node_id) for node in picked]


def evaluate_search(taxonomy_key: str = "ebay", queries: int = 60,
                    cut_level: int | None = None,
                    per_category: int = 4) -> list[StrategyScore]:
    """Score tree / LLM-only / hybrid routing on synthetic queries."""
    taxonomy = build_taxonomy(taxonomy_key)
    if cut_level is None:
        cut_level = max(0, taxonomy.num_levels - 2)
    corpus = ProductCorpus(taxonomy, per_category=per_category)
    routers = {
        "tree": TreeRouter(corpus),
        "llm-only": LlmRouter(corpus),
        "hybrid": HybridRouter(corpus, cut_level),
    }
    pairs = make_queries(taxonomy, queries)

    scores = []
    for name, router in routers.items():
        precisions, recalls, routed_right = [], [], 0
        for query, truth_id in pairs:
            if name == "tree":
                result = router.search(query)
            else:
                result = router.search(query, truth_node_id=truth_id)
            relevant = set(corpus.products_of(truth_id))
            metrics = retrieval_metrics(set(result.products), relevant)
            precisions.append(metrics.precision)
            recalls.append(metrics.recall)
            if _routed_correctly(taxonomy, result.routed_to, truth_id):
                routed_right += 1
        scores.append(StrategyScore(
            strategy=name,
            precision=fmean(precisions),
            recall=fmean(recalls),
            routing_accuracy=routed_right / len(pairs),
            queries=len(pairs),
        ))
    return scores


def _routed_correctly(taxonomy: Taxonomy, routed_to: str | None,
                      truth_id: str) -> bool:
    """Routed category is the truth leaf or one of its ancestors."""
    if routed_to is None:
        return False
    truth = taxonomy.node(truth_id)
    if routed_to == truth.name:
        return True
    return routed_to in {node.name
                         for node in taxonomy.ancestors(truth_id)}
