"""Taxonomy-backed entity search (the paper's motivating application).

The introduction motivates taxonomies with entity search: a query like
"best health tracker" must be routed to the right category before
products can be retrieved.  This module implements three routing
strategies over a shopping taxonomy and its product corpus, so the
replacement question can be asked at the *application* level:

* **TreeRouter** — the traditional pipeline: lexical-match the query
  against the full category tree, return the best leaf's products;
* **LlmRouter** — no tree at all: an LLM filter scans the whole
  corpus (what "LLMs replace taxonomies" means taken literally);
* **HybridRouter** — the Section 5.1 proposal: lexical-match only the
  explicit levels of a :class:`HybridTaxonomy`, then LLM-filter the
  surviving frontier concept's inventory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.generators.products import products_for_node
from repro.hybrid.hybrid_taxonomy import HybridTaxonomy
from repro.hybrid.membership import MembershipModel
from repro.taxonomy.node import TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy


def _tokens(text: str) -> set[str]:
    return {token for token in text.lower().replace("-", " ").split()
            if token}


def lexical_score(query: str, candidate: str) -> float:
    """Jaccard token overlap between a query and a category name."""
    query_tokens, name_tokens = _tokens(query), _tokens(candidate)
    if not query_tokens or not name_tokens:
        return 0.0
    return len(query_tokens & name_tokens) \
        / len(query_tokens | name_tokens)


@dataclass(frozen=True, slots=True)
class SearchResult:
    """Products returned for one query, with routing provenance."""

    query: str
    routed_to: str | None      # category name, None when unrouted
    products: tuple[str, ...]


class ProductCorpus:
    """Deterministic product inventory over a shopping taxonomy."""

    def __init__(self, taxonomy: Taxonomy, per_category: int = 4,
                 seed: str = "search"):
        self.taxonomy = taxonomy
        self.per_category = per_category
        self.seed = seed
        self._cache: dict[str, tuple[str, ...]] = {}

    def category_nodes(self) -> list[TaxonomyNode]:
        return self.taxonomy.leaves()

    def products_of(self, node_id: str) -> tuple[str, ...]:
        if node_id not in self._cache:
            self._cache[node_id] = tuple(products_for_node(
                self.taxonomy, node_id, self.per_category,
                seed=self.seed))
        return self._cache[node_id]

    def inventory_under(self, node_id: str) -> tuple[str, ...]:
        """All products in the subtree rooted at ``node_id``."""
        node = self.taxonomy.node(node_id)
        pool = list(self.products_of(node_id)) if node.is_leaf else []
        for descendant in self.taxonomy.descendants(node_id):
            if descendant.is_leaf:
                pool.extend(self.products_of(descendant.node_id))
        return tuple(pool)


class TreeRouter:
    """The traditional pipeline: route by the full explicit tree."""

    name = "tree"

    def __init__(self, corpus: ProductCorpus):
        self.corpus = corpus

    def search(self, query: str) -> SearchResult:
        best, best_score = None, 0.0
        for node in self.corpus.category_nodes():
            score = lexical_score(query, node.name)
            if score > best_score:
                best, best_score = node, score
        if best is None:
            return SearchResult(query, None, ())
        return SearchResult(query, best.name,
                            self.corpus.products_of(best.node_id))


class LlmRouter:
    """No tree: an LLM membership filter scans the whole corpus."""

    name = "llm-only"

    def __init__(self, corpus: ProductCorpus,
                 membership: MembershipModel | None = None):
        self.corpus = corpus
        self.membership = membership or MembershipModel()

    def search(self, query: str,
               truth_node_id: str | None = None) -> SearchResult:
        kept = []
        for node in self.corpus.category_nodes():
            is_member = node.node_id == truth_node_id
            for product in self.corpus.products_of(node.node_id):
                if self.membership.keeps(product, query, is_member):
                    kept.append(product)
        return SearchResult(query, None, tuple(kept))


class HybridRouter:
    """Section 5.1: explicit tree near the root, LLM below the cut.

    Routing follows the case study's pipeline: the query "first asks
    about the parent concept of the query concept with an accuracy of
    over 70%" (Section 5.3, citing Figure 3(b)) — modelled by a
    calibrated routing draw per query — then the surviving ancestor's
    whole inventory is LLM-filtered.
    """

    name = "hybrid"
    #: Paper's quoted parent-lookup accuracy at the cut (Fig. 3(b)).
    DEFAULT_ROUTE_ACCURACY = 0.72

    def __init__(self, corpus: ProductCorpus, cut_level: int,
                 membership: MembershipModel | None = None,
                 route_accuracy: float = DEFAULT_ROUTE_ACCURACY):
        if not 0.0 <= route_accuracy <= 1.0:
            raise ValueError("route_accuracy must be in [0, 1]")
        self.corpus = corpus
        self.membership = membership or MembershipModel()
        self.route_accuracy = route_accuracy
        self.hybrid = HybridTaxonomy(corpus.taxonomy, cut_level,
                                     model=_NullModel())

    def _route(self, query: str,
               truth_node_id: str | None) -> TaxonomyNode | None:
        from repro.llm.rng import stable_choice, unit_float

        taxonomy = self.corpus.taxonomy
        frontier = self.hybrid.frontier()
        truth_ancestor = None
        if truth_node_id is not None:
            chain = [taxonomy.node(truth_node_id)] \
                + list(taxonomy.ancestors(truth_node_id))
            truth_ancestor = next(
                (node for node in chain
                 if node.level == self.hybrid.cut_level), None)
        if truth_ancestor is not None and unit_float(
                "hybrid-route", query) < self.route_accuracy:
            return truth_ancestor
        others = [node for node in frontier
                  if truth_ancestor is None
                  or node.node_id != truth_ancestor.node_id]
        if not others:
            return truth_ancestor
        return stable_choice(others, "hybrid-misroute", query)

    def search(self, query: str,
               truth_node_id: str | None = None) -> SearchResult:
        best = self._route(query, truth_node_id)
        if best is None:
            return SearchResult(query, None, ())
        kept = []
        for product in self.corpus.inventory_under(best.node_id):
            is_member = (
                truth_node_id is not None
                and product in self.corpus.products_of(truth_node_id))
            if self.membership.keeps(product, query, is_member):
                kept.append(product)
        return SearchResult(query, best.name, tuple(kept))


class _NullModel:
    """Placeholder ChatModel for routers that never call locate()."""

    name = "null"

    def generate(self, prompt: str) -> str:  # pragma: no cover
        return "I don't know."
