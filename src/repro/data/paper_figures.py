"""Qualitative anchors for the paper's figures.

* ``LEVEL_SHAPES`` — the root-to-leaf accuracy trend per taxonomy
  (Figure 3): additive deviations applied around each model's overall
  accuracy, one entry per question level ("level 1-root" first).  Most
  taxonomies decline toward the leaves; NCBI dips in the middle and
  jumps at the species->genus level; OAE rises toward the leaf — both
  effects the paper attributes to parent/child surface-form overlap.

* ``PROMPTING_EFFECTS`` — per-model miss-rate multipliers under
  few-shot and Chain-of-Thoughts prompting (Figure 4).  Few-shot mostly
  slashes abstention; CoT raises it for weaker models; both are close
  to no-ops for the strongest models (Finding 4).

* ``SCALABILITY`` — parameter counts, GPU RAM and per-question latency
  for the open-source series (Figure 7).  RAM follows fp16 weights plus
  runtime overhead; latencies encode the figure's qualitative story
  (Flan-T5s, Vicunas and Llama-3s scale well; Falcon-40B does not).

* ``POPULARITY_LOG10_HITS`` — mean log10 Google-result counts per
  taxonomy (Figure 2): common taxonomies around 10^7, NCBI near 10^3.
"""

from __future__ import annotations

#: Figure 3 — per-question-level accuracy deviations, root side first.
LEVEL_SHAPES: dict[str, tuple[float, ...]] = {
    "ebay": (0.03, -0.03),
    "amazon": (0.06, 0.02, -0.03, -0.05),
    "google": (0.06, 0.02, -0.03, -0.05),
    "schema": (0.08, 0.04, -0.02, -0.04, -0.06),
    "acm_ccs": (0.08, 0.03, -0.03, -0.08),
    "geonames": (0.0,),
    "glottolog": (0.10, 0.05, 0.0, -0.06, -0.09),
    "icd10cm": (0.06, 0.0, -0.06),
    "oae": (-0.05, -0.02, 0.02, 0.05),
    "ncbi": (0.12, 0.05, -0.10, -0.14, -0.12, 0.19),
}


#: Figure 4 — (few-shot miss multiplier, CoT miss multiplier).  Values
#: near 1.0 mean the setting barely moves the model (Finding 4).
PROMPTING_EFFECTS: dict[str, tuple[float, float]] = {
    "GPT-3.5": (0.40, 1.20),
    "GPT-4": (0.80, 1.05),
    "Claude-3": (0.60, 1.10),
    "Llama-2-7B": (0.10, 1.04),
    "Llama-2-13B": (0.30, 1.30),
    "Llama-2-70B": (0.30, 1.25),
    "Llama-3-8B": (0.50, 1.20),
    "Llama-3-70B": (0.03, 1.15),
    "Flan-T5-3B": (1.00, 1.00),
    "Flan-T5-11B": (1.00, 1.00),
    "Falcon-7B": (1.00, 1.05),
    "Falcon-40B": (0.25, 1.02),
    "Vicuna-7B": (1.00, 1.20),
    "Vicuna-13B": (0.35, 1.30),
    "Vicuna-33B": (0.40, 1.25),
    "Mistral": (0.30, 1.25),
    "Mixtral": (0.45, 1.20),
    "LLMs4OL": (1.00, 1.00),
}

#: Conditional accuracy assumed when a model abstains so often that the
#: paper's (accuracy, miss) pair pins the conditional accuracy poorly
#: (miss > 0.95).  Used when few-shot prompting forces such a model to
#: guess: Llama-2-7B then scores "comparable to Flan-T5-3B on some
#: taxonomies" (Section 4.4).
LATENT_ACCURACY: dict[str, float] = {
    "Llama-2-7B": 0.62,
    "Falcon-40B": 0.40,
    "Mistral": 0.50,
}
_DEFAULT_LATENT_ACCURACY = 0.50


def latent_accuracy(model: str) -> float:
    """Fallback conditional accuracy for heavy abstainers."""
    return LATENT_ACCURACY.get(model, _DEFAULT_LATENT_ACCURACY)


#: Figure 7 — (billions of parameters, GPU RAM in GB, seconds/question).
SCALABILITY: dict[str, tuple[float, float, float]] = {
    "Llama-2-7B": (7.0, 14.9, 0.35),
    "Llama-2-13B": (13.0, 27.3, 0.55),
    "Llama-2-70B": (70.0, 143.0, 1.90),
    "Llama-3-8B": (8.0, 17.1, 0.35),
    "Llama-3-70B": (70.0, 143.0, 0.90),
    "Flan-T5-3B": (3.0, 6.8, 0.10),
    "Flan-T5-11B": (11.0, 23.2, 0.16),
    "Falcon-7B": (7.0, 14.9, 0.40),
    "Falcon-40B": (40.0, 82.5, 2.50),
    "Vicuna-7B": (7.0, 14.9, 0.30),
    "Vicuna-13B": (13.0, 27.3, 0.40),
    "Vicuna-33B": (33.0, 68.4, 0.55),
    "Mistral": (7.0, 14.9, 0.35),
    "Mixtral": (46.7, 96.4, 0.80),
    "LLMs4OL": (3.0, 6.8, 0.10),
}

#: Figure 7 groups models into series for the per-series panels.
SERIES_MEMBERS: dict[str, tuple[str, ...]] = {
    "Llama-2s": ("Llama-2-7B", "Llama-2-13B", "Llama-2-70B"),
    "Llama-3s": ("Llama-3-8B", "Llama-3-70B"),
    "Flan-T5s": ("Flan-T5-3B", "Flan-T5-11B"),
    "Falcons": ("Falcon-7B", "Falcon-40B"),
    "Vicunas": ("Vicuna-7B", "Vicuna-13B", "Vicuna-33B"),
    "Mistrals": ("Mistral", "Mixtral"),
}

#: Figure 2 — mean log10 exact-match web hits per taxonomy concept.
POPULARITY_LOG10_HITS: dict[str, float] = {
    "ebay": 7.8,
    "schema": 7.5,
    "amazon": 7.2,
    "google": 6.9,
    "acm_ccs": 5.5,
    "geonames": 5.2,
    "icd10cm": 4.8,
    "oae": 4.2,
    "glottolog": 3.9,
    "ncbi": 3.4,
}
