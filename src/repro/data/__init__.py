"""Embedded paper anchors: reported tables and figure trends."""

from repro.data.paper_figures import (LEVEL_SHAPES, POPULARITY_LOG10_HITS,
                                      PROMPTING_EFFECTS, SCALABILITY,
                                      SERIES_MEMBERS, latent_accuracy)
from repro.data.paper_tables import (MODEL_ORDER, PAPER_RESULTS,
                                     TAXONOMY_ORDER, paper_anchor)

__all__ = [
    "MODEL_ORDER",
    "TAXONOMY_ORDER",
    "PAPER_RESULTS",
    "paper_anchor",
    "LEVEL_SHAPES",
    "PROMPTING_EFFECTS",
    "SCALABILITY",
    "SERIES_MEMBERS",
    "POPULARITY_LOG10_HITS",
    "latent_accuracy",
]
