"""Bootstrap confidence intervals for reported metrics.

The paper reports point estimates only; the harness additionally
reports 95% bootstrap intervals so shape comparisons ("who wins") can
be made with error bars.  Deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import fmean


@dataclass(frozen=True, slots=True)
class Interval:
    """A two-sided confidence interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_mean(values: list[float], confidence: float = 0.95,
                   resamples: int = 1000, seed: int = 0) -> Interval:
    """Percentile-bootstrap interval for the mean of ``values``."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    point = fmean(values)
    if len(values) == 1:
        return Interval(point, point, point, confidence)
    rng = random.Random(seed)
    size = len(values)
    means = sorted(
        fmean(rng.choices(values, k=size)) for _ in range(resamples))
    tail = (1.0 - confidence) / 2.0
    low_index = int(tail * resamples)
    high_index = min(resamples - 1, int((1.0 - tail) * resamples))
    return Interval(point, means[low_index], means[high_index], confidence)
