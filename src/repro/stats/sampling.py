"""Survey sample-size math used by the question generator.

The paper samples entities per taxonomy level "with a confidence level
of 95% and a margin of error of 5%" (Section 2.2 and the Qualtrics
reference [13]).  That is the finite-population Cochran formula with
maximal variance p = 0.5:

    n = N * z^2 * p(1-p) / ((N-1) * e^2 + z^2 * p(1-p))

Rounding up reproduces the per-level MCQ counts of Table 4 (e.g. 250
for Glottolog level 1 with N = 712, 350 for Amazon level 2 with
N = 3910).
"""

from __future__ import annotations

import math

#: z-score for a 95% confidence level.
Z_95 = 1.959963984540054
#: Paper's margin of error.
DEFAULT_MARGIN = 0.05
#: Maximal-variance proportion assumption.
DEFAULT_PROPORTION = 0.5


def cochran_sample_size(population: int, margin: float = DEFAULT_MARGIN,
                        z: float = Z_95,
                        proportion: float = DEFAULT_PROPORTION) -> int:
    """Finite-population sample size, rounded up, capped at N."""
    if population < 0:
        raise ValueError("population must be non-negative")
    if population == 0:
        return 0
    if not 0 < margin < 1:
        raise ValueError("margin must be in (0, 1)")
    if not 0 < proportion < 1:
        raise ValueError("proportion must be in (0, 1)")
    variance = z * z * proportion * (1.0 - proportion)
    raw = population * variance / ((population - 1) * margin * margin
                                   + variance)
    return min(population, math.ceil(raw))
