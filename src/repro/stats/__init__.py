"""Statistical utilities: sample sizes (Table 4) and bootstrap CIs."""

from repro.stats.bootstrap import Interval, bootstrap_mean
from repro.stats.sampling import (DEFAULT_MARGIN, DEFAULT_PROPORTION, Z_95,
                                  cochran_sample_size)

__all__ = [
    "Interval",
    "bootstrap_mean",
    "cochran_sample_size",
    "DEFAULT_MARGIN",
    "DEFAULT_PROPORTION",
    "Z_95",
]
