"""Benchmark LLMs against *your own* taxonomy.

TaxoGlimpse is not tied to the ten paper taxonomies: build any
hierarchy with TaxonomyBuilder (or load one with
repro.taxonomy.load_edge_tsv), generate question pools, and evaluate
any ChatModel — a calibrated simulator bound to your taxonomy through
a custom oracle, or your own API client.

    python examples/custom_taxonomy.py
"""

from __future__ import annotations

from repro import (DatasetKind, Domain, EvaluationRunner,
                   TaxonomyBuilder, TaxonomyOracle, build_pools)
from repro.llm.registry import make_model


class KeywordModel:
    """A hand-rolled ChatModel: any object with .name/.generate works.

    Swap in an OpenAI/Anthropic client here and the whole harness runs
    against the real endpoint.
    """

    name = "keyword-baseline"

    def generate(self, prompt: str) -> str:
        # Answers Yes whenever the two concepts share a word.  The
        # GENERAL-domain template wraps names as "<name> entity type".
        import re
        names = re.findall(r"Is (.+?) entity type a (?:type|kind|sort)"
                           r" of (.+?) entity type\?", prompt)
        if not names:
            return "I don't know."
        child, parent = names[0]
        shared = set(child.lower().split()) \
            & set(parent.lower().split())
        return "Yes." if shared else "No."


def build_coffee_taxonomy():
    builder = TaxonomyBuilder("Coffee", Domain.GENERAL,
                              concept_noun="coffee drink")
    espresso = builder.add_root("Espresso Drinks")
    filtered = builder.add_root("Filter Drinks")
    cold = builder.add_root("Cold Drinks")
    milk = builder.add_child(espresso, "Milk Espresso Drinks")
    straight = builder.add_child(espresso, "Straight Espresso Shots")
    pour = builder.add_child(filtered, "Pour Over Brews")
    immersion = builder.add_child(filtered, "Immersion Brews")
    iced = builder.add_child(cold, "Iced Drinks")
    brew = builder.add_child(cold, "Cold Brews")
    for parent, names in [
        (milk, ["Latte", "Cappuccino", "Flat White", "Cortado"]),
        (straight, ["Ristretto", "Lungo", "Doppio"]),
        (pour, ["V60 Brew", "Chemex Brew", "Kalita Brew"]),
        (immersion, ["French Press Brew", "Clever Dripper Brew"]),
        (iced, ["Iced Latte", "Iced Americano"]),
        (brew, ["Nitro Cold Brew", "Slow Drip Cold Brew"]),
    ]:
        for name in names:
            builder.add_child(parent, name)
    return builder.build()


def main() -> None:
    taxonomy = build_coffee_taxonomy()
    print(f"Built {taxonomy}")

    pools = build_pools("coffee", taxonomy, sample_size=10)
    runner = EvaluationRunner()

    # A calibrated simulator grounded in *this* taxonomy: the custom
    # oracle is its "pre-training knowledge".
    oracle = TaxonomyOracle({"coffee": taxonomy})
    simulated = make_model("GPT-4", oracle)

    for model in (simulated, KeywordModel()):
        for dataset in (DatasetKind.EASY, DatasetKind.HARD):
            result = runner.evaluate(model,
                                     pools.total_pool(dataset))
            print(f"  {model.name:<17} {dataset.value:<5} "
                  f"accuracy={result.metrics.accuracy:.3f} "
                  f"miss={result.metrics.miss_rate:.3f} "
                  f"(n={result.metrics.n})")
    print()
    print("The keyword baseline beats chance only because some drink "
          "names share\nwords with their category — the same "
          "surface-form effect the paper found\non NCBI species names.")


if __name__ == "__main__":
    main()
