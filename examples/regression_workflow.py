"""Archive a benchmark run and diff it against a later one.

Teams tracking "is our model / prompt / parser change safe?" need the
benchmark to be a regression harness, not a one-off script: run the
matrix, save it to JSON, rerun after a change, and diff.  Here the
"change" is switching GPT-4's prompting to Chain-of-Thoughts — which
Finding 4 says should barely move it — versus switching Llama-2-7B to
few-shot, which moves it a lot.

    python examples/regression_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DatasetKind, PromptSetting, TaxoGlimpse
from repro.core.export import diff_matrices, load_matrix, save_matrix

TAXONOMIES = ("ebay", "google", "glottolog")
MODELS = ("GPT-4", "Llama-2-7B")


def run_matrix(bench, setting):
    matrix = {}
    for model in MODELS:
        for key in TAXONOMIES:
            result = bench.run(model, key, DatasetKind.HARD,
                               setting=setting)
            matrix[model, key] = result.metrics
    return matrix


def main() -> None:
    bench = TaxoGlimpse(sample_size=60)

    baseline = run_matrix(bench, PromptSetting.ZERO_SHOT)
    archive = Path(tempfile.mkdtemp()) / "baseline.json"
    save_matrix(baseline, archive, label="zero-shot baseline")
    print(f"Archived baseline run to {archive}")

    candidate = {}
    candidate.update({("GPT-4", key): bench.run(
        "GPT-4", key, DatasetKind.HARD,
        setting=PromptSetting.COT).metrics for key in TAXONOMIES})
    candidate.update({("Llama-2-7B", key): bench.run(
        "Llama-2-7B", key, DatasetKind.HARD,
        setting=PromptSetting.FEW_SHOT).metrics
        for key in TAXONOMIES})

    drifts = diff_matrices(load_matrix(archive), candidate,
                           tolerance=0.05)
    print(f"\nCells moving more than 5 points: {len(drifts)}")
    for drift in drifts:
        print(f"  {drift.model:<11} {drift.taxonomy:<10} "
              f"{drift.accuracy_before:.3f} -> "
              f"{drift.accuracy_after:.3f}  ({drift.delta:+.3f})")
    print()
    print("As Finding 4 predicts: CoT leaves GPT-4 in place, while "
          "few-shot\nprompting rescues Llama-2-7B from abstention — "
          "only its cells drift.")


if __name__ == "__main__":
    main()
