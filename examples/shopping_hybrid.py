"""The Section 5.3 scenario: replace deep Amazon categories with an LLM.

A retailer maintains the 43,814-concept Amazon Product Category tree.
The paper's case study keeps root..level-3 explicit (for display and
navigation) and replaces level 4+ — 59% of the tree — with Llama-2-70B,
serving "pencil products" queries by (1) locating the surviving parent
concept with supertype questions and (2) LLM-filtering the parent's
product inventory.

    python examples/shopping_hybrid.py
"""

from __future__ import annotations

from repro import HybridTaxonomy, build_taxonomy, get_model
from repro.generators.products import products_for_node
from repro.hybrid import (CaseStudyConfig, MembershipModel,
                          run_case_study)


def main() -> None:
    taxonomy = build_taxonomy("amazon")
    hybrid = HybridTaxonomy(taxonomy, cut_level=3,
                            model=get_model("Llama-2-70B"))
    saving = hybrid.saving
    print(f"Amazon taxonomy: {saving.total_entities} concepts "
          f"materialized; cutting below level 3 removes "
          f"{saving.removed_entities} ({saving.fraction:.0%}).")
    print()

    # --- Serve one query through the hybrid form --------------------
    removed = taxonomy.nodes_at_level(4)[0]
    surviving_parent = taxonomy.parent(removed.node_id)
    print(f"Customer searches for: {removed.name!r} (a removed "
          f"level-4 concept)")
    located = hybrid.locate(removed.name,
                            candidates=[surviving_parent])
    print(f"LLM locates surviving parent: "
          f"{located.name if located else '(not found)'}")

    inventory = products_for_node(taxonomy, removed.node_id, 4)
    for sibling in taxonomy.siblings(removed.node_id)[:2]:
        inventory += products_for_node(taxonomy, sibling.node_id, 4)
    member = MembershipModel()
    kept = member.filter_products(
        removed.name, inventory[:4], inventory[4:])
    print(f"LLM filters the parent's {len(inventory)} products down "
          f"to {len(kept)} for this query:")
    for title in sorted(kept):
        print(f"  - {title}")
    print()

    # --- Score the replacement at scale ------------------------------
    result = run_case_study(CaseStudyConfig(sample_size=200))
    print(f"Replacement quality over {result.concepts_evaluated} "
          f"sampled concepts:")
    print(f"  precision = {result.precision:.3f}   (paper: 0.713)")
    print(f"  recall    = {result.recall:.3f}   (paper: 0.792)")
    print(f"  saving    = {result.maintenance_saving:.0%}     "
          f"(paper: 59%)")


if __name__ == "__main__":
    main()
