"""Entity search with and without the taxonomy (intro's application).

Compares three ways to serve shopping queries ("best health tracker"):
the traditional category tree, a bare LLM scanning the product corpus,
and the paper's hybrid form (explicit tree near the root, LLM below).

    python examples/entity_search.py
"""

from __future__ import annotations

from repro import build_taxonomy
from repro.search import (HybridRouter, LlmRouter, ProductCorpus,
                          TreeRouter, evaluate_search)


def main() -> None:
    taxonomy = build_taxonomy("ebay")
    corpus = ProductCorpus(taxonomy)
    leaf = corpus.category_nodes()[11]
    query = f"best {leaf.name.lower()}"
    print(f"Query: {query!r}  (ground truth category: {leaf.name})")
    print()

    tree = TreeRouter(corpus).search(query)
    print(f"tree     -> routed to {tree.routed_to!r}, "
          f"{len(tree.products)} products")
    hybrid = HybridRouter(corpus, cut_level=1).search(
        query, truth_node_id=leaf.node_id)
    print(f"hybrid   -> routed to {hybrid.routed_to!r}, "
          f"{len(hybrid.products)} products")
    llm = LlmRouter(corpus).search(query, truth_node_id=leaf.node_id)
    print(f"llm-only -> scanned the whole corpus, "
          f"{len(llm.products)} products returned")
    print()

    print("Scored over 60 synthetic queries:")
    print(f"{'strategy':<10} {'precision':>10} {'recall':>8} "
          f"{'routing':>9}")
    for score in evaluate_search("ebay", queries=60):
        print(f"{score.strategy:<10} {score.precision:>10.3f} "
              f"{score.recall:>8.3f} {score.routing_accuracy:>9.3f}")
    print()
    print("The explicit tree wins outright; a bare LLM drowns in "
          "false positives;\nthe hybrid trades precision for not "
          "maintaining the deep levels —\nthe paper's Section 5 "
          "conclusion, measured at the application level.")


if __name__ == "__main__":
    main()
