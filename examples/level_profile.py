"""Root-to-leaf reliability profile of one taxonomy (Figure 3 style).

Plots (in ASCII) how a model's accuracy changes with depth — the
paper's Finding 2: decline toward the leaves, except where child and
parent names overlap (NCBI species->genus, OAE leaves).

    python examples/level_profile.py [taxonomy-key] [model-name]
"""

from __future__ import annotations

import sys

from repro import DatasetKind, TaxoGlimpse
from repro.llm.registry import surface_baseline
from repro.questions.model import level_label

BAR_WIDTH = 40


def bar(value: float) -> str:
    filled = round(value * BAR_WIDTH)
    return "#" * filled + "." * (BAR_WIDTH - filled)


def main() -> None:
    taxonomy_key = sys.argv[1] if len(sys.argv) > 1 else "ncbi"
    model_name = sys.argv[2] if len(sys.argv) > 2 else "GPT-4"
    bench = TaxoGlimpse(sample_size=80)

    print(f"{model_name} on {taxonomy_key} (hard datasets, "
          f"zero-shot) vs the knowledge-free surface heuristic:")
    print()
    heuristic = surface_baseline()
    for level in bench.pools(taxonomy_key).question_levels:
        result = bench.run(model_name, taxonomy_key, DatasetKind.HARD,
                           level=level)
        surface = bench.run(heuristic, taxonomy_key, DatasetKind.HARD,
                            level=level)
        accuracy = result.metrics.accuracy
        print(f"  {level_label(level):<13} {bar(accuracy)} "
              f"{accuracy:.3f}  (surface: "
              f"{surface.metrics.accuracy:.3f})")
    print()
    print("Tip: try `python examples/level_profile.py glottolog` for "
          "a clean decline,\nor `oae` for the leafward rise.")


if __name__ == "__main__":
    main()
