"""Quickstart: evaluate an LLM's grasp of a taxonomy in ~20 lines.

Runs the TaxoGlimpse pipeline end to end on the eBay taxonomy: build
the question pools, probe a model, score accuracy and miss rate —
exactly what the paper's Tables 5-7 do, scaled down to run in seconds.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DatasetKind, TaxoGlimpse, get_model, render_question

def main() -> None:
    # Smaller per-level samples than the paper's Cochran sizes, so the
    # example runs in seconds.  Drop sample_size for paper scale.
    bench = TaxoGlimpse(sample_size=50)

    # Peek at what the benchmark actually asks (Table 2 template).
    pool = bench.pools("ebay").total_pool(DatasetKind.HARD)
    question = pool.questions[0]
    model = get_model("GPT-4")
    prompt = render_question(question)
    print("Example prompt:   ", prompt)
    print("Model response:   ", model.generate(prompt))
    print("Expected answer:  ", question.expected_answer.value)
    print()

    # Score three models on two taxonomies, hard datasets.
    print(f"{'model':<14} {'taxonomy':<10} {'accuracy':>9} "
          f"{'miss rate':>10}")
    for model_name in ("GPT-4", "Llama-2-7B", "LLMs4OL"):
        for taxonomy_key in ("ebay", "ncbi"):
            result = bench.run(model_name, taxonomy_key,
                               DatasetKind.HARD)
            print(f"{model_name:<14} {taxonomy_key:<10} "
                  f"{result.metrics.accuracy:>9.3f} "
                  f"{result.metrics.miss_rate:>10.3f}")
    print()
    print("Note the paper's headline shape: strong on the common "
          "shopping taxonomy,\nmuch weaker on the specialized NCBI "
          "taxonomy.")


if __name__ == "__main__":
    main()
