"""Compare model families on common vs specialized taxonomies.

Reproduces the paper's Section 4.3 analysis in miniature: does more
parameters help?  Does fine-tuning help?  Which kind?

    python examples/model_comparison.py
"""

from __future__ import annotations

from repro import DatasetKind, TaxoGlimpse
from repro.experiments.analysis import (domain_gaps, size_scaling_steps,
                                        tuning_effect)
from repro.experiments.config import ExperimentConfig
from repro.experiments.overall import run_overall
from repro.llm.registry import SERIES

MODELS = ("Llama-2-7B", "Llama-2-13B", "Llama-2-70B",
          "Vicuna-7B", "Vicuna-13B",
          "Flan-T5-3B", "Flan-T5-11B", "LLMs4OL",
          "Falcon-7B", "Falcon-40B")
TAXONOMIES = ("ebay", "google", "schema", "glottolog", "ncbi")


def main() -> None:
    bench = TaxoGlimpse(sample_size=60)
    config = ExperimentConfig(sample_size=60, models=MODELS,
                              taxonomy_keys=TAXONOMIES)
    matrix = run_overall(DatasetKind.HARD, config, bench=bench).matrix()

    print("Common-vs-specialized gap (hard datasets, zero-shot):")
    for gap in domain_gaps(matrix):
        print(f"  {gap.model:<13} common={gap.common_accuracy:.3f}  "
              f"specialized={gap.specialized_accuracy:.3f}  "
              f"gap={gap.gap:+.3f}")
    print()

    print("Does scaling up help?  (adjacent sizes within a series)")
    for step in size_scaling_steps(matrix, SERIES):
        verdict = "yes" if step.improves else "NO"
        print(f"  {step.series:<10} {step.smaller} "
              f"({step.smaller_accuracy:.3f}) -> {step.larger} "
              f"({step.larger_accuracy:.3f})  helps: {verdict}")
    print()

    agnostic = tuning_effect(matrix, "Vicuna-13B", "Llama-2-13B")
    specific = tuning_effect(matrix, "LLMs4OL", "Flan-T5-3B")
    print("Does fine-tuning help?")
    print(f"  domain-agnostic (Vicuna-13B over Llama-2-13B): "
          f"{agnostic.uplift:+.3f}")
    print(f"  domain-specific (LLMs4OL over Flan-T5-3B):     "
          f"{specific.uplift:+.3f}")
    print()
    print("Paper Finding 3: size and domain-agnostic tuning are "
          "unreliable;\ndomain-specific instruction tuning gives a "
          "stable, significant uplift.")


if __name__ == "__main__":
    main()
