#!/usr/bin/env bash
# Local CI mirror: the tier-1 test suite plus a ~1 s smoke of the
# engine throughput benchmark (scaled-down pool, 3 ms latency).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== engine throughput smoke =="
python benchmarks/bench_engine_throughput.py

echo "check.sh: all green"
