#!/usr/bin/env bash
# Local CI mirror: the tier-1 test suite plus short smokes of the
# engine throughput and dataset pipeline benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== engine throughput smoke =="
python benchmarks/bench_engine_throughput.py

echo "== dataset pipeline smoke =="
python benchmarks/bench_dataset_build.py --smoke

echo "== run ledger smoke =="
python benchmarks/bench_run_ledger.py --smoke

echo "== tracing overhead smoke =="
python benchmarks/bench_obs_overhead.py

echo "check.sh: all green"
