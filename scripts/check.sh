#!/usr/bin/env bash
# Local CI mirror: the tier-1 test suite plus short smokes of the
# engine throughput and dataset pipeline benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== engine throughput smoke =="
python benchmarks/bench_engine_throughput.py

echo "== engine batching smoke (speedup + exact-calls + identity gates) =="
python benchmarks/bench_engine_batching.py

echo "== dataset pipeline smoke =="
python benchmarks/bench_dataset_build.py --smoke

echo "== run ledger smoke =="
python benchmarks/bench_run_ledger.py --smoke

echo "== shard scaling smoke (equality + speedup gates) =="
python benchmarks/bench_shard_scaling.py --smoke

echo "== tracing overhead smoke =="
python benchmarks/bench_obs_overhead.py

echo "== live-follower overhead smoke =="
python benchmarks/bench_watch_overhead.py

echo "== cost metering smoke (overhead + budget determinism gates) =="
python benchmarks/bench_cost_overhead.py

echo "== serve SSE fan-out smoke (overhead + p99 latency gates) =="
python benchmarks/bench_serve_load.py

echo "== trail capture smoke (overhead + bit-identity gates) =="
python benchmarks/bench_trail_overhead.py

echo "== regression gate (obs check vs committed baseline) =="
GATE_DIR="$(mktemp -d)"
trap 'rm -rf "$GATE_DIR"' EXIT
# --trail on the gate run: trail-on records are bit-identical to
# trail-off ones (bench_trail_overhead proves it), so the gate
# metrics are unchanged — and the run doubles as the provenance
# analytics artifact below.
REPRO_RUNS_DIR="$GATE_DIR" python -m repro run \
    --models GPT-4 LLMs4OL --taxonomies ebay --sample 24 --trail \
    > /dev/null
# Accuracy and cost are deterministic (seeded pools, simulated
# models, fixed price cards), so the gate is tight on them;
# throughput/p99 are machine-dependent, so those thresholds only
# catch order-of-magnitude blowups.  The cache-hit-rate column fails
# on a >10-point drop — a silently disabled cache layer shows up
# here before it shows up as a cost blowup.
REPRO_RUNS_DIR="$GATE_DIR" python -m repro obs check \
    --baseline-file benchmarks/baselines/obs_check_baseline.json \
    --max-accuracy-drop 0.5 --max-throughput-drop 95 \
    --max-p99-blowup 10000 --max-cost-blowup 20 \
    --max-cache-hit-drop 10

echo "== provenance trail analytics (gate run) =="
GATE_RUN="$(REPRO_RUNS_DIR="$GATE_DIR" python -m repro runs list --json \
    | python -c 'import json,sys; print(json.load(sys.stdin)[0]["run_id"])')"
REPRO_RUNS_DIR="$GATE_DIR" python -m repro obs trails "$GATE_RUN"

echo "check.sh: all green"
