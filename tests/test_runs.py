"""Tests for repro.runs: ledger, resume determinism, registry, diff."""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.results import (QuestionRecord, metrics_from_dict,
                                metrics_to_dict, record_from_dict,
                                record_to_dict)
from repro.engine.cache import ResponseCache
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EvaluationEngine
from repro.errors import (LedgerCorruptError, RunError,
                          UnknownRunError)
from repro.experiments.config import ExperimentConfig
from repro.experiments.levels import (levels_from_run, run_levels)
from repro.experiments.overall import (overall_from_run, run_overall)
from repro.llm.registry import get_model
from repro.questions.model import Answer, DatasetKind
from repro.runs import (CellKey, RunLedger, RunRegistry, RunRequest,
                        create_run, diff_runs, execute_run, load_run,
                        replay_ledger, resume_run)
from repro.cli import main

SMALL = dict(models=("GPT-4", "LLMs4OL"),
             taxonomy_keys=("ebay", "glottolog"), sample_size=10)


@pytest.fixture()
def registry(tmp_path) -> RunRegistry:
    return RunRegistry(tmp_path / "runs")


class _BudgetedModel:
    """Wraps a model; raises after a shared call budget is spent."""

    def __init__(self, inner, counter: dict, lock: threading.Lock):
        self.inner = inner
        self.name = inner.name
        self._counter = counter
        self._lock = lock

    def generate(self, prompt: str) -> str:
        with self._lock:
            if self._counter["budget"] <= 0:
                raise RuntimeError("injected crash")
            self._counter["budget"] -= 1
        return self.inner.generate(prompt)


def budgeted_resolver(budget: int):
    counter = {"budget": budget}
    lock = threading.Lock()

    def resolve(name: str):
        return _BudgetedModel(get_model(name), counter, lock)

    return resolve


def forbidden_resolver(name: str):  # pragma: no cover - must not run
    raise AssertionError(f"model {name!r} was resolved during a "
                         f"ledger-only reconstruction")


# ----------------------------------------------------------------------
# Record / metrics codec + the correct-by-value satellite
# ----------------------------------------------------------------------
class TestRecordCodec:
    def test_round_trip_preserves_equality_and_scoring(self):
        record = QuestionRecord("q1", "GPT-4", "zero-shot", "Yes.",
                                Answer.YES, Answer.YES)
        decoded = record_from_dict(
            json.loads(json.dumps(record_to_dict(record))))
        assert decoded == record
        assert decoded.correct == record.correct is True
        assert decoded.missed == record.missed is False

    def test_correct_compares_by_value_not_identity(self):
        # Regression: a record whose answers are plain strings (any
        # codec that skips enum reconstruction) must score the same
        # as one holding enum singletons.
        record = QuestionRecord("q1", "GPT-4", "zero-shot", "Yes.",
                                "yes", Answer.YES)
        assert record.parsed is not Answer.YES
        assert record.correct is True
        wrong = QuestionRecord("q1", "GPT-4", "zero-shot", "No.",
                               "no", Answer.YES)
        assert wrong.correct is False

    def test_metrics_round_trip_is_bit_identical(self):
        from repro.core.metrics import Metrics
        metrics = Metrics(accuracy=1 / 3, miss_rate=1 / 7, n=21)
        decoded = metrics_from_dict(
            json.loads(json.dumps(metrics_to_dict(metrics))))
        assert decoded == metrics


# ----------------------------------------------------------------------
# Ledger writer + replay
# ----------------------------------------------------------------------
class TestLedger:
    def _record(self, index: int) -> QuestionRecord:
        return QuestionRecord(f"q{index}", "GPT-4", "zero-shot",
                              "Yes.", Answer.YES, Answer.YES)

    def test_replay_folds_events_into_cells(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        from repro.core.metrics import Metrics
        with RunLedger(path) as ledger:
            ledger.run_started("r1")
            ledger.cell_started("c1", 2)
            ledger.record("c1", 1, self._record(1))
            ledger.record("c1", 0, self._record(0))
            ledger.cell_finished("c1", Metrics(1.0, 0.0, 2))
            ledger.run_finished(1, {"records": 2})
        state = replay_ledger(path)
        assert state.run_id == "r1"
        assert state.finished
        assert state.stats == {"records": 2}
        cell = state.cells["c1"]
        assert cell.complete
        assert [r.question_uid for r in cell.ordered_records()] == \
            ["q0", "q1"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.run_started("r1")
            ledger.cell_started("c1", 3)
            ledger.record("c1", 0, self._record(0))
        # Simulate a crash mid-append: chop the tail of the file.
        torn = path.read_text(encoding="utf-8")[:-17]
        path.write_text(torn, encoding="utf-8")
        state = replay_ledger(path)
        assert state.cells["c1"].records == {}
        assert not state.finished

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.run_started("r1")
            ledger.cell_started("c1", 1)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:-5]  # corrupt a NON-final line
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(LedgerCorruptError):
            replay_ledger(path)

    def test_unknown_events_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.run_started("r1")
            ledger._append({"event": "from-the-future", "x": 1})
            ledger.run_finished(0)
        assert replay_ledger(path).finished

    def test_closed_ledger_refuses_appends(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.close()
        with pytest.raises(RunError):
            ledger.run_started("r1")

    def test_bad_durability_mode_rejected(self, tmp_path):
        with pytest.raises(RunError):
            RunLedger(tmp_path / "ledger.jsonl", durability="maybe")

    def test_record_durability_fsyncs_every_append(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path, durability="record") as ledger:
            ledger.cell_started("c1", 1)
            ledger.record("c1", 0, self._record(0))
        assert len(replay_ledger(path).cells["c1"].records) == 1


# ----------------------------------------------------------------------
# Execute + registry + ledger-only loading
# ----------------------------------------------------------------------
class TestExecuteAndLoad:
    def test_execute_then_load_is_bit_identical(self, registry):
        request = RunRequest(**SMALL)
        result = execute_run(request, registry=registry)
        assert result.evaluated > 0
        loaded = load_run(result.run_id, registry=registry)
        assert loaded.request == request
        assert set(loaded.cells) == set(result.cells)
        for key, live in result.cells.items():
            assert loaded.cells[key].metrics == live.metrics
            assert loaded.cells[key].records == live.records
            assert loaded.cells[key].pool_label == live.pool_label

    def test_engine_run_streams_identical_ledger(self, registry):
        request = RunRequest(workers=4, **SMALL)
        sequential = execute_run(RunRequest(**SMALL),
                                 registry=registry)
        engine = EvaluationEngine(EngineConfig(max_workers=4))
        threaded = execute_run(request, registry=registry,
                               engine=engine)
        for key, live in sequential.cells.items():
            assert threaded.cells[key].records == live.records
        assert threaded.stats is not None
        loaded = load_run(threaded.run_id, registry=registry)
        assert loaded.stats.records == threaded.stats.records

    def test_registry_listing_and_summary(self, registry):
        request = RunRequest(**SMALL)
        result = execute_run(request, registry=registry)
        summaries = registry.list_runs()
        assert [s.run_id for s in summaries] == [result.run_id]
        summary = summaries[0]
        assert summary.finished
        assert summary.cells_done == summary.cells_total == 4
        assert summary.questions == result.evaluated
        payload = summary.to_dict()
        assert payload["run_id"] == result.run_id
        assert payload["finished"] is True

    def test_repeated_requests_get_distinct_run_ids(self, registry):
        request = RunRequest(dataset="easy", models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=6)
        first = execute_run(request, registry=registry)
        second = execute_run(request, registry=registry)
        assert first.run_id != second.run_id
        assert first.run_id.rsplit("-", 1)[0] == \
            second.run_id.rsplit("-", 1)[0]

    def test_unknown_run_raises(self, registry):
        with pytest.raises(UnknownRunError):
            registry.request("deadbeef-01")
        with pytest.raises(UnknownRunError):
            registry.state("deadbeef-01")

    def test_cell_key_round_trip(self):
        key = CellKey(model="GPT-4", taxonomy_key="ebay",
                      dataset="hard", setting="zero-shot", level=2)
        assert CellKey.parse(key.cell_id) == key
        total = CellKey(model="GPT-4", taxonomy_key="ebay",
                        dataset="hard", setting="zero-shot")
        assert CellKey.parse(total.cell_id) == total
        assert CellKey.parse("GPT-4|ad-hoc|zero-shot") is None

    def test_request_validation(self):
        with pytest.raises(RunError):
            RunRequest(dataset="nope")
        with pytest.raises(RunError):
            RunRequest(settings=("telepathy",))
        with pytest.raises(RunError):
            RunRequest(models=())

    def test_fingerprint_tracks_request_fields(self):
        base = RunRequest(**SMALL)
        assert base.fingerprint() == RunRequest(**SMALL).fingerprint()
        assert base.fingerprint() != \
            base.with_engine(workers=8, retries=1).fingerprint()


# ----------------------------------------------------------------------
# Kill mid-cell + resume determinism (the tentpole guarantee)
# ----------------------------------------------------------------------
class TestResumeDeterminism:
    @pytest.mark.parametrize("workers", [1, 8])
    def test_killed_then_resumed_is_bit_identical(self, registry,
                                                  workers):
        request = RunRequest(**SMALL)
        baseline = execute_run(request, registry=registry)

        def engine():
            if workers == 1:
                return None
            return EvaluationEngine(EngineConfig(max_workers=workers))

        run_id = create_run(request, registry=registry)
        # Kill the run mid-cell: the budget dies inside cell 3 of 4.
        budget = int(baseline.evaluated * 0.6)
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        engine=engine(),
                        resolve_model=budgeted_resolver(budget))
        crashed = registry.state(run_id)
        assert not crashed.finished
        assert 0 < crashed.recorded_questions < baseline.evaluated

        resumed = resume_run(run_id, registry=registry,
                             engine=engine())
        assert set(resumed.cells) == set(baseline.cells)
        for key, expected in baseline.cells.items():
            assert resumed.cells[key].metrics == expected.metrics
            assert resumed.cells[key].records == expected.records
        # Resume must reuse the ledger, not redo the whole sweep.
        assert resumed.replayed == crashed.recorded_questions
        assert resumed.evaluated == \
            baseline.evaluated - crashed.recorded_questions
        final = registry.state(run_id)
        assert final.finished and final.attempts == 2

    def test_partial_cell_reenters_at_missing_indices(self, registry):
        request = RunRequest(dataset="hard", models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=10)
        baseline = execute_run(request, registry=registry)
        run_id = create_run(request, registry=registry)
        kill_at = baseline.evaluated // 2
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        resolve_model=budgeted_resolver(kill_at))
        (cell_state,) = registry.state(run_id).cells.values()
        assert cell_state.partial
        resumed = resume_run(run_id, registry=registry)
        assert resumed.resumed_cells == \
            tuple(key.cell_id for key in baseline.cells)
        assert resumed.evaluated == baseline.evaluated - kill_at
        (key,) = baseline.cells
        assert resumed.cells[key].records == \
            baseline.cells[key].records

    def test_resume_of_finished_run_makes_zero_model_calls(
            self, registry):
        request = RunRequest(dataset="easy", models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=6)
        result = execute_run(request, registry=registry)
        resumed = resume_run(result.run_id, registry=registry,
                             resolve_model=forbidden_resolver)
        assert resumed.evaluated == 0
        assert resumed.replayed == result.evaluated
        for key, expected in result.cells.items():
            assert resumed.cells[key].records == expected.records


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
class _EveryNthFlipped:
    """A 'drifted endpoint': every nth response is replaced."""

    def __init__(self, inner, nth: int = 5):
        self.inner = inner
        self.name = inner.name
        self._nth = nth
        self._calls = 0
        self._lock = threading.Lock()

    def generate(self, prompt: str) -> str:
        with self._lock:
            self._calls += 1
            flip = self._calls % self._nth == 0
        response = self.inner.generate(prompt)
        return "I don't know." if flip else response


class TestDiff:
    def test_identical_runs_diff_clean(self, registry):
        request = RunRequest(dataset="easy", models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=8)
        a = execute_run(request, registry=registry)
        b = execute_run(request, registry=registry)
        diff = diff_runs(a.run_id, b.run_id, registry=registry)
        assert diff.identical
        assert diff.total_flips == 0

    def test_drifted_endpoint_shows_flips_and_deltas(self, registry):
        request = RunRequest(dataset="hard", models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=12)
        a = execute_run(request, registry=registry)
        b_id = create_run(request, registry=registry)
        execute_run(request, registry=registry, run_id=b_id,
                    resolve_model=lambda name:
                    _EveryNthFlipped(get_model(name), nth=4))
        diff = diff_runs(a.run_id, b_id, registry=registry)
        assert not diff.identical
        assert diff.total_flips > 0
        (cell,) = diff.cells
        assert cell.changed
        assert any(flip.regression for flip in cell.flips)
        assert cell.miss_delta > 0
        row = cell.as_row()
        assert row["flips"] == len(cell.flips)

    def test_disjoint_cell_spaces_are_reported(self, registry):
        a = execute_run(RunRequest(models=("GPT-4",),
                                   taxonomy_keys=("ebay",),
                                   sample_size=6), registry=registry)
        b = execute_run(RunRequest(models=("LLMs4OL",),
                                   taxonomy_keys=("ebay",),
                                   sample_size=6), registry=registry)
        diff = diff_runs(a, b)
        assert not diff.cells
        assert len(diff.only_in_a) == len(diff.only_in_b) == 1


# ----------------------------------------------------------------------
# Experiments route through the ledger
# ----------------------------------------------------------------------
class TestExperimentsThroughLedger:
    CONFIG = ExperimentConfig(sample_size=8,
                              models=("GPT-4", "LLMs4OL"),
                              taxonomy_keys=("ebay", "glottolog"))

    def test_overall_table_reconstructs_from_ledger_alone(
            self, registry):
        classic = run_overall(DatasetKind.HARD, self.CONFIG)
        ledgered = run_overall(DatasetKind.HARD, self.CONFIG,
                               registry=registry)
        assert ledgered.cells == classic.cells
        (run_id,) = [s.run_id for s in registry.list_runs()]
        # Reload purely from disk: no model may be instantiated.
        loaded = load_run(run_id, registry=registry)
        assert loaded.replayed > 0
        rebuilt = overall_from_run(loaded)
        assert rebuilt.cells == classic.cells
        by_id = overall_from_run(run_id, registry=registry)
        assert by_id.cells == classic.cells

    def test_levels_reconstruct_from_ledger_alone(self, registry):
        config = ExperimentConfig(sample_size=8, models=("GPT-4",),
                                  taxonomy_keys=("ebay", "ncbi"))
        classic = run_levels(config)
        ledgered = run_levels(config, registry=registry)
        assert ledgered == classic
        (run_id,) = [s.run_id for s in registry.list_runs()]
        rebuilt = levels_from_run(run_id, registry=registry)
        assert rebuilt == classic


# ----------------------------------------------------------------------
# Cache persistence satellite
# ----------------------------------------------------------------------
class TestCachePersistence:
    def test_save_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        cache = ResponseCache()
        cache.put("GPT-4", "p", "r")
        path = tmp_path / "cache.json"
        cache.save(path)
        cache.put("GPT-4", "p2", "r2")
        cache.save(path)  # overwrite goes through os.replace too
        assert len(ResponseCache.load(path)) == 2
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_cache_file_recovers_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"format_version": 1, "entries": [{"mo',
                        encoding="utf-8")
        cache = ResponseCache.load(path)
        assert len(cache) == 0

    def test_missing_cache_file_recovers_empty(self, tmp_path):
        cache = ResponseCache.load(tmp_path / "nope.json",
                                   capacity=4)
        assert len(cache) == 0 and cache.capacity == 4


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestRunsCli:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    @pytest.fixture()
    def runs_dir(self, tmp_path):
        return str(tmp_path / "cli-runs")

    def test_run_then_list_show_resume_diff(self, capsys, runs_dir):
        out = self._run(capsys, "run", "--models", "GPT-4",
                        "--taxonomies", "ebay", "--sample", "8",
                        "--runs-dir", runs_dir)
        assert "Ledgered run" in out and "1 cells" in out

        listing = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir", runs_dir))
        assert len(listing) == 1 and listing[0]["finished"] is True
        run_id = listing[0]["run_id"]

        table = self._run(capsys, "runs", "list", "--runs-dir",
                          runs_dir)
        assert run_id in table and "finished" in table

        shown = json.loads(self._run(
            capsys, "runs", "show", run_id, "--json", "--runs-dir",
            runs_dir))
        assert shown["finished"] is True
        assert shown["manifest"]["run_id"] == run_id
        assert shown["cells"][0]["status"] == "done"

        resumed = self._run(capsys, "runs", "resume", run_id,
                            "--runs-dir", runs_dir)
        assert "0 evaluated" in resumed

        self._run(capsys, "run", "--models", "GPT-4",
                  "--taxonomies", "ebay", "--sample", "8",
                  "--runs-dir", runs_dir)
        other = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir",
            runs_dir))[1]["run_id"]
        diff_out = self._run(capsys, "runs", "diff", run_id, other,
                             "--runs-dir", runs_dir)
        assert "runs are identical" in diff_out
        diff_json = json.loads(self._run(
            capsys, "runs", "diff", run_id, other, "--json",
            "--runs-dir", runs_dir))
        assert diff_json["identical"] is True

    def test_empty_registry_listing(self, capsys, runs_dir):
        out = self._run(capsys, "runs", "list", "--runs-dir", runs_dir)
        assert "no runs in registry" in out


# ----------------------------------------------------------------------
# Registry scans vs concurrent writers (consistent-snapshot contract)
# ----------------------------------------------------------------------
class TestRegistryRaceConsistency:
    """Listing must never throw because a run vanished mid-scan."""

    TINY = dict(models=("GPT-4",), taxonomy_keys=("ebay",),
                sample_size=6)

    def test_vanished_run_is_skipped_not_raised(self, registry,
                                                monkeypatch):
        result = execute_run(RunRequest(**self.TINY),
                             registry=registry)
        # Simulate a run directory swept away (gc, a remote worker)
        # between enumeration and decode.
        real_ids = registry.list_ids()
        monkeypatch.setattr(registry, "list_ids",
                            lambda: real_ids + ["ghost-01"])
        summaries = registry.list_runs()
        assert [s.run_id for s in summaries] == [result.run_id]

    def test_corrupt_manifest_is_flagged_not_raised(self, registry):
        result = execute_run(RunRequest(**self.TINY),
                             registry=registry)
        broken = create_run(RunRequest(**self.TINY),
                            registry=registry)
        registry.manifest_path(broken).write_text("{nope",
                                                  encoding="utf-8")
        summaries = registry.list_runs()
        by_id = {s.run_id: s for s in summaries}
        assert by_id[result.run_id].finished
        assert by_id[broken].status == "invalid"

    def test_missing_root_lists_empty(self, tmp_path):
        registry = RunRegistry(tmp_path / "never-created")
        assert registry.list_ids() == []
        assert registry.orphan_dirs() == []
        assert registry.list_runs() == []

    def test_unknown_run_still_raises_for_direct_lookups(self,
                                                         registry):
        with pytest.raises(UnknownRunError):
            registry.manifest("ghost-01")
        with pytest.raises(UnknownRunError):
            registry.state("ghost-01")

    def test_listing_survives_create_delete_churn(self, registry):
        import shutil
        request = RunRequest(**self.TINY)
        anchor = execute_run(request, registry=registry)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn() -> None:
            try:
                while not stop.is_set():
                    run_id = registry.create(request, cells=1)
                    shutil.rmtree(registry.run_dir(run_id),
                                  ignore_errors=True)
            except BaseException as exc:
                errors.append(exc)

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            for _ in range(200):
                summaries = registry.list_runs()
                # The anchor run is always visible and valid; churn
                # debris may appear or vanish but never poisons the
                # scan.
                assert anchor.run_id in \
                    [s.run_id for s in summaries]
        finally:
            stop.set()
            writer.join(timeout=30)
        assert not errors
