"""Property test: random edit sequences always commit valid forests."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TaxonomyError
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.edit import TaxonomyEditor
from repro.taxonomy.node import Domain
from repro.taxonomy.validate import collect_problems


def _base_taxonomy():
    builder = TaxonomyBuilder("editable", Domain.GENERAL)
    serial = 0
    for r in range(3):
        root = builder.add_root(f"R{r}")
        for m in range(2):
            mid = builder.add_child(root, f"M{r}{m}")
            for _ in range(2):
                builder.add_child(mid, f"L{serial}")
                serial += 1
    return builder.build()


_ops = st.lists(
    st.tuples(st.sampled_from(["add", "rename", "move", "prune"]),
              st.integers(min_value=0, max_value=10_000)),
    min_size=1, max_size=25)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_random_edit_sequences_keep_the_forest_valid(operations):
    editor = TaxonomyEditor(_base_taxonomy())
    serial = 0
    for operation, pick in operations:
        node_ids = sorted(editor._nodes)
        if not node_ids:
            break
        target = node_ids[pick % len(node_ids)]
        try:
            if operation == "add":
                editor.add(target, f"New{serial}")
                serial += 1
            elif operation == "rename":
                editor.rename(target, f"Renamed{serial}")
                serial += 1
            elif operation == "move":
                other = node_ids[(pick * 7 + 1) % len(node_ids)]
                editor.move(target, other)
            elif operation == "prune":
                # Never prune the final root: an empty taxonomy
                # cannot commit and is rejected explicitly anyway.
                if len(node_ids) > 1:
                    editor.prune(target)
        except TaxonomyError:
            continue  # rejected operations must leave state intact
    if not editor._nodes:
        return
    committed = editor.commit()
    assert collect_problems(committed) == []


@settings(max_examples=40, deadline=None)
@given(_ops)
def test_edit_log_touches_at_least_one_node_per_record(operations):
    editor = TaxonomyEditor(_base_taxonomy())
    for operation, pick in operations:
        node_ids = sorted(editor._nodes)
        if len(node_ids) < 2:
            break
        target = node_ids[pick % len(node_ids)]
        try:
            if operation == "prune":
                editor.prune(target)
            elif operation == "rename":
                editor.rename(target, "x")
        except TaxonomyError:
            continue
    assert all(record.touched_nodes >= 1
               for record in editor.log.records)
