"""Unit tests for TaxonomyBuilder and validation."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError, UnknownNodeError, ValidationError
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.validate import collect_problems, validate_taxonomy


def _builder():
    return TaxonomyBuilder("t", Domain.GENERAL)


class TestBuilder:
    def test_add_root_assigns_level_zero(self):
        builder = _builder()
        root = builder.add_root("Thing")
        taxonomy = builder.build()
        assert taxonomy.node(root).level == 0

    def test_add_child_increments_level(self):
        builder = _builder()
        root = builder.add_root("Thing")
        child = builder.add_child(root, "Animal")
        grand = builder.add_child(child, "Dog")
        taxonomy = builder.build()
        assert taxonomy.node(child).level == 1
        assert taxonomy.node(grand).level == 2

    def test_explicit_ids_are_kept(self):
        builder = _builder()
        builder.add_root("Thing", node_id="thing")
        taxonomy = builder.build()
        assert "thing" in taxonomy

    def test_duplicate_id_rejected(self):
        builder = _builder()
        builder.add_root("A", node_id="x")
        with pytest.raises(TaxonomyError):
            builder.add_root("B", node_id="x")

    def test_unknown_parent_rejected(self):
        with pytest.raises(UnknownNodeError):
            _builder().add_child("missing", "Child")

    def test_empty_name_rejected(self):
        with pytest.raises(TaxonomyError):
            _builder().add_root("   ")

    def test_names_are_stripped(self):
        builder = _builder()
        root = builder.add_root("  Thing  ")
        assert builder.build().node(root).name == "Thing"

    def test_empty_build_rejected(self):
        with pytest.raises(TaxonomyError):
            _builder().build()

    def test_len_tracks_nodes(self):
        builder = _builder()
        builder.add_root("A")
        builder.add_root("B")
        assert len(builder) == 2

    def test_add_path_creates_chain(self):
        builder = _builder()
        ids = builder.add_path(["Thing", "Animal", "Dog"])
        taxonomy = builder.build()
        assert [taxonomy.node(i).level for i in ids] == [0, 1, 2]

    def test_add_path_reuses_existing_prefix(self):
        builder = _builder()
        first = builder.add_path(["Thing", "Animal", "Dog"])
        second = builder.add_path(["Thing", "Animal", "Cat"])
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] != second[2]

    def test_add_path_empty_rejected(self):
        with pytest.raises(TaxonomyError):
            _builder().add_path([])

    def test_build_without_validation_allows_weird_levels(self):
        # build(validate=False) is the loader escape hatch
        builder = _builder()
        builder.add_root("A")
        taxonomy = builder.build(validate=False)
        assert len(taxonomy) == 1


class TestValidation:
    def test_valid_taxonomy_has_no_problems(self, toy_taxonomy):
        assert collect_problems(toy_taxonomy) == []

    def test_dangling_parent_detected(self):
        nodes = {"a": TaxonomyNode("a", "A", 1, parent_id="ghost")}
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert any("dangling parent" in p for p in problems)

    def test_wrong_level_detected(self):
        nodes = {
            "r": TaxonomyNode("r", "R", 0, children_ids=["a"]),
            "a": TaxonomyNode("a", "A", 5, parent_id="r"),
        }
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert any("level" in p for p in problems)

    def test_root_with_nonzero_level_detected(self):
        nodes = {"r": TaxonomyNode("r", "R", 3)}
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert any("root with level" in p for p in problems)

    def test_unlinked_child_detected(self):
        nodes = {
            "r": TaxonomyNode("r", "R", 0),
            "a": TaxonomyNode("a", "A", 1, parent_id="r"),
        }
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert any("does not list it as a child" in p for p in problems)

    def test_child_with_wrong_backpointer_detected(self):
        nodes = {
            "r": TaxonomyNode("r", "R", 0, children_ids=["a"]),
            "s": TaxonomyNode("s", "S", 0),
            "a": TaxonomyNode("a", "A", 1, parent_id="s"),
        }
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert problems  # several issues, all reported

    def test_cycle_detected(self):
        nodes = {
            "a": TaxonomyNode("a", "A", 1, parent_id="b",
                              children_ids=["b"]),
            "b": TaxonomyNode("b", "B", 1, parent_id="a",
                              children_ids=["a"]),
        }
        problems = collect_problems(
            Taxonomy("t", Domain.GENERAL, nodes))
        assert any("cycle" in p for p in problems)

    def test_validate_raises_with_all_problems(self):
        nodes = {
            "r": TaxonomyNode("r", "R", 2),
            "x": TaxonomyNode("x", "", 0),
        }
        with pytest.raises(ValidationError) as excinfo:
            validate_taxonomy(Taxonomy("t", Domain.GENERAL, nodes))
        assert len(excinfo.value.problems) >= 2
