"""Property-based tests: question generation over random taxonomies."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.questions.generation import generate_level_questions
from repro.questions.model import QuestionKind
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.node import Domain


@st.composite
def layered_taxonomies(draw):
    """Random 3-level forests wide enough to generate questions."""
    builder = TaxonomyBuilder("prop", draw(st.sampled_from(list(Domain))))
    root_count = draw(st.integers(min_value=2, max_value=5))
    roots = [builder.add_root(f"Root{i}") for i in range(root_count)]
    mids = []
    serial = 0
    for root in roots:
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            mids.append(builder.add_child(root, f"Mid{serial}"))
            serial += 1
    for mid in mids:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            builder.add_child(mid, f"Leaf{serial}")
            serial += 1
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(layered_taxonomies(), st.integers(min_value=1, max_value=2))
def test_positives_always_ask_the_true_parent(taxonomy, level):
    if taxonomy.level_width(level) == 0:
        return
    generated = generate_level_questions("prop", taxonomy, level,
                                         sample_size=10)
    for question in generated.positives:
        parent = taxonomy.parent(question.child_id)
        assert question.asked_parent_name == parent.name
        assert question.expected_answer.value == "yes"


@settings(max_examples=40, deadline=None)
@given(layered_taxonomies(), st.integers(min_value=1, max_value=2))
def test_negatives_never_ask_the_true_parent(taxonomy, level):
    if taxonomy.level_width(level) == 0:
        return
    generated = generate_level_questions("prop", taxonomy, level,
                                         sample_size=10)
    for question in (generated.negatives_easy
                     + generated.negatives_hard):
        assert question.asked_parent_name != question.true_parent_name
        assert question.expected_answer.value == "no"


@settings(max_examples=40, deadline=None)
@given(layered_taxonomies(), st.integers(min_value=1, max_value=2))
def test_hard_negatives_are_always_uncles(taxonomy, level):
    if taxonomy.level_width(level) == 0:
        return
    generated = generate_level_questions("prop", taxonomy, level,
                                         sample_size=10)
    for question in generated.negatives_hard:
        uncle_names = {node.name for node
                       in taxonomy.uncles(question.child_id)}
        assert question.asked_parent_name in uncle_names


@settings(max_examples=40, deadline=None)
@given(layered_taxonomies(), st.integers(min_value=1, max_value=2))
def test_mcq_answer_index_points_at_truth(taxonomy, level):
    if taxonomy.level_width(level) == 0:
        return
    generated = generate_level_questions("prop", taxonomy, level,
                                         sample_size=10)
    for question in generated.mcqs:
        assert question.options[question.answer_index] \
            == question.true_parent_name
        assert len(set(question.options)) == 4


@settings(max_examples=40, deadline=None)
@given(layered_taxonomies(), st.integers(min_value=1, max_value=2))
def test_uids_are_unique_within_a_level(taxonomy, level):
    if taxonomy.level_width(level) == 0:
        return
    generated = generate_level_questions("prop", taxonomy, level,
                                         sample_size=10)
    everything = (generated.positives + generated.negatives_easy
                  + generated.negatives_hard + generated.mcqs)
    uids = [question.uid for question in everything]
    assert len(uids) == len(set(uids))


@settings(max_examples=25, deadline=None)
@given(layered_taxonomies())
def test_easy_pools_are_exactly_balanced(taxonomy):
    generated = generate_level_questions("prop", taxonomy, 1,
                                         sample_size=8)
    positives = sum(1 for question in generated.easy
                    if question.kind is QuestionKind.POSITIVE)
    assert positives * 2 == len(generated.easy)
