"""Integration tests: the paper's five findings hold end-to-end.

These run the real pipeline (prompt rendering -> simulated model ->
response parsing -> metrics) at moderate sample sizes and assert the
*shape* of the paper's results, which is the reproduction contract.
"""

from __future__ import annotations

import pytest
from statistics import fmean

from repro.core.benchmark import TaxoGlimpse
from repro.data.paper_tables import paper_anchor
from repro.experiments.config import ExperimentConfig
from repro.experiments.levels import run_levels
from repro.experiments.overall import run_overall
from repro.experiments.prompting import run_prompting
from repro.llm.prompting import PromptSetting
from repro.questions.model import DatasetKind


@pytest.fixture(scope="module")
def bench():
    return TaxoGlimpse(sample_size=60)


MODELS = ("GPT-4", "GPT-3.5", "Llama-2-7B", "Llama-3-8B", "Flan-T5-3B",
          "LLMs4OL", "Falcon-40B", "Vicuna-7B")


@pytest.fixture(scope="module")
def hard_matrix(bench):
    config = ExperimentConfig(sample_size=60, models=MODELS)
    return run_overall(DatasetKind.HARD, config, bench=bench).matrix()


class TestCalibration:
    """Measured cells track the paper's Tables 5-7 anchors."""

    def test_hard_cells_close_to_paper(self, hard_matrix):
        deltas = [abs(metrics.accuracy
                      - paper_anchor("hard", model, key)[0])
                  for (model, key), metrics in hard_matrix.items()]
        assert fmean(deltas) < 0.08

    def test_miss_rates_close_to_paper(self, hard_matrix):
        deltas = [abs(metrics.miss_rate
                      - paper_anchor("hard", model, key)[1])
                  for (model, key), metrics in hard_matrix.items()]
        assert fmean(deltas) < 0.06

    def test_easy_beats_hard_for_strong_models(self, bench):
        for model in ("GPT-4", "GPT-3.5"):
            easy = bench.run(model, "google", DatasetKind.EASY)
            hard = bench.run(model, "google", DatasetKind.HARD)
            assert easy.metrics.accuracy >= hard.metrics.accuracy


class TestFinding1:
    """Reliable on common taxonomies, weak on specialized ones."""

    def test_common_beats_hardest_specialized(self, hard_matrix):
        for model in ("GPT-4", "GPT-3.5", "Llama-3-8B"):
            common = fmean(hard_matrix[model, key].accuracy
                           for key in ("ebay", "google"))
            specialized = fmean(hard_matrix[model, key].accuracy
                                for key in ("glottolog", "ncbi",
                                            "geonames"))
            assert common > specialized + 0.1

    def test_best_model_below_75_percent_on_hard_specialized(
            self, hard_matrix):
        for key in ("ncbi", "glottolog", "geonames"):
            best = max(hard_matrix[model, key].accuracy
                       for model in MODELS)
            assert best < 0.78


class TestFinding2:
    """Root-to-leaf decline; NCBI uplift at the species level."""

    @pytest.fixture(scope="class")
    def level_series(self, bench):
        config = ExperimentConfig(
            sample_size=80,
            models=("GPT-4", "Flan-T5-11B"),
            taxonomy_keys=("google", "glottolog", "ncbi", "oae"))
        return run_levels(config, bench=bench)

    def _series(self, level_series, model, key):
        return next(s for s in level_series
                    if s.model == model and s.taxonomy_key == key)

    def test_decline_on_google_and_glottolog(self, level_series):
        for key in ("google", "glottolog"):
            series = self._series(level_series, "GPT-4", key)
            assert series.declines_overall

    def test_ncbi_last_level_uplift(self, level_series):
        series = self._series(level_series, "GPT-4", "ncbi")
        assert series.last_level_uplift > 0.1

    def test_ncbi_middle_levels_are_weak(self, level_series):
        series = self._series(level_series, "GPT-4", "ncbi")
        middle = series.accuracies[2:5]
        assert max(middle) < series.accuracies[0]

    def test_oae_rises_toward_leaf(self, level_series):
        series = self._series(level_series, "GPT-4", "oae")
        assert series.accuracies[-1] > series.accuracies[0]


class TestFinding3:
    """Bigger/domain-agnostic tuning unreliable; domain-specific wins."""

    def test_llms4ol_beats_flan_t5_3b_everywhere(self, hard_matrix):
        for key in ("ebay", "schema", "glottolog", "ncbi"):
            assert hard_matrix["LLMs4OL", key].accuracy \
                > hard_matrix["Flan-T5-3B", key].accuracy - 0.02

    def test_llms4ol_average_uplift_near_paper(self, hard_matrix):
        uplift = fmean(hard_matrix["LLMs4OL", key].accuracy
                       - hard_matrix["Flan-T5-3B", key].accuracy
                       for key in ("ebay", "schema", "glottolog",
                                   "ncbi"))
        assert 0.05 < uplift < 0.25  # paper: +12.9% on hard

    def test_falcon_40b_collapses(self, hard_matrix):
        for key in ("schema", "ncbi"):
            assert hard_matrix["Falcon-40B", key].miss_rate > 0.9

    def test_vicuna_7b_rescues_llama_2_7b(self, hard_matrix):
        for key in ("ebay", "google"):
            assert hard_matrix["Vicuna-7B", key].accuracy \
                > hard_matrix["Llama-2-7B", key].accuracy + 0.3


class TestFinding4:
    """Prompting settings mostly move miss rates, not knowledge."""

    @pytest.fixture(scope="class")
    def radar(self, bench):
        config = ExperimentConfig(
            sample_size=60,
            taxonomy_keys=("ebay", "google", "glottolog", "ncbi"))
        return run_prompting(
            config, models=("GPT-4", "Llama-2-7B", "Flan-T5-11B"),
            bench=bench)

    def test_fewshot_slashes_llama7b_miss(self, radar):
        zero = radar.average("Llama-2-7B", PromptSetting.ZERO_SHOT,
                             "miss_rate")
        few = radar.average("Llama-2-7B", PromptSetting.FEW_SHOT,
                            "miss_rate")
        assert few < zero * 0.3

    def test_fewshot_lifts_llama7b_accuracy(self, radar):
        zero = radar.average("Llama-2-7B", PromptSetting.ZERO_SHOT)
        few = radar.average("Llama-2-7B", PromptSetting.FEW_SHOT)
        assert few > zero + 0.3

    def test_gpt4_stable_under_all_settings(self, radar):
        zero = radar.average("GPT-4", PromptSetting.ZERO_SHOT)
        for setting in (PromptSetting.FEW_SHOT, PromptSetting.COT):
            assert abs(radar.average("GPT-4", setting) - zero) < 0.06

    def test_flan_t5_unmoved(self, radar):
        zero = radar.average("Flan-T5-11B", PromptSetting.ZERO_SHOT)
        few = radar.average("Flan-T5-11B", PromptSetting.FEW_SHOT)
        assert abs(few - zero) < 0.05

    def test_cot_does_not_help_llama7b(self, radar):
        zero = radar.average("Llama-2-7B", PromptSetting.ZERO_SHOT,
                             "miss_rate")
        cot = radar.average("Llama-2-7B", PromptSetting.COT,
                            "miss_rate")
        assert cot >= zero - 0.01


class TestFinding5:
    """MCQ options cut miss rates versus True/False hard sets."""

    def test_mcq_reduces_miss(self, bench):
        for model in ("GPT-3.5", "Llama-3-70B"):
            hard = bench.run(model, "glottolog", DatasetKind.HARD)
            mcq = bench.run(model, "glottolog", DatasetKind.MCQ)
            assert mcq.metrics.miss_rate < hard.metrics.miss_rate
