"""Tests for the entity-search application (tree vs LLM vs hybrid)."""

from __future__ import annotations

import pytest

from repro.generators.registry import build_taxonomy
from repro.hybrid.membership import MembershipModel
from repro.search.engine import (HybridRouter, LlmRouter,
                                 ProductCorpus, TreeRouter,
                                 lexical_score)
from repro.search.evaluation import (evaluate_search, make_queries)


@pytest.fixture(scope="module")
def corpus():
    return ProductCorpus(build_taxonomy("ebay"))


class TestLexicalScore:
    def test_identical(self):
        assert lexical_score("pencil", "pencil") == 1.0

    def test_partial(self):
        assert 0.0 < lexical_score("best pencil", "pencil") < 1.0

    def test_disjoint(self):
        assert lexical_score("pencil", "monitor") == 0.0

    def test_empty(self):
        assert lexical_score("", "pencil") == 0.0


class TestCorpus:
    def test_products_are_cached(self, corpus):
        leaf = corpus.category_nodes()[0]
        assert corpus.products_of(leaf.node_id) \
            is corpus.products_of(leaf.node_id)

    def test_inventory_under_root_covers_leaves(self, corpus):
        root = corpus.taxonomy.roots[0]
        inventory = corpus.inventory_under(root.node_id)
        leaf_count = sum(
            1 for node in corpus.taxonomy.leaves()
            if corpus.taxonomy.root_of(node.node_id) is root)
        assert len(inventory) == leaf_count * corpus.per_category


class TestRouters:
    def test_tree_router_finds_exact_category(self, corpus):
        leaf = corpus.category_nodes()[5]
        result = TreeRouter(corpus).search(f"best {leaf.name.lower()}")
        assert result.routed_to == leaf.name
        assert result.products == corpus.products_of(leaf.node_id)

    def test_tree_router_unroutable_query(self, corpus):
        result = TreeRouter(corpus).search("zzz qqq")
        assert result.routed_to is None
        assert result.products == ()

    def test_llm_router_with_perfect_filter(self, corpus):
        perfect = MembershipModel(recall_rate=1.0,
                                  false_positive_rate=0.0)
        leaf = corpus.category_nodes()[3]
        result = LlmRouter(corpus, perfect).search(
            "whatever", truth_node_id=leaf.node_id)
        assert set(result.products) \
            == set(corpus.products_of(leaf.node_id))

    def test_hybrid_router_route_accuracy_bounds(self, corpus):
        with pytest.raises(ValueError):
            HybridRouter(corpus, 1, route_accuracy=1.5)

    def test_hybrid_router_perfect_routing(self, corpus):
        router = HybridRouter(
            corpus, 1, route_accuracy=1.0,
            membership=MembershipModel(recall_rate=1.0,
                                       false_positive_rate=0.0))
        leaf = corpus.category_nodes()[7]
        result = router.search("query", truth_node_id=leaf.node_id)
        assert set(corpus.products_of(leaf.node_id)) \
            <= set(result.products)

    def test_hybrid_router_deterministic(self, corpus):
        router = HybridRouter(corpus, 1)
        leaf = corpus.category_nodes()[2]
        first = router.search("best deal", truth_node_id=leaf.node_id)
        second = router.search("best deal", truth_node_id=leaf.node_id)
        assert first == second


class TestEvaluation:
    @pytest.fixture(scope="class")
    def scores(self):
        return {score.strategy: score
                for score in evaluate_search("ebay", queries=50)}

    def test_queries_are_leaf_grounded(self):
        taxonomy = build_taxonomy("ebay")
        pairs = make_queries(taxonomy, 20)
        assert len(pairs) == 20
        for query, truth_id in pairs:
            assert taxonomy.node(truth_id).is_leaf
            assert taxonomy.node(truth_id).name.lower() in query

    def test_tree_routing_is_near_perfect(self, scores):
        assert scores["tree"].precision > 0.95
        assert scores["tree"].recall > 0.95

    def test_llm_only_precision_collapses(self, scores):
        assert scores["llm-only"].precision < 0.1
        # ...even though its recall is decent (it sees everything).
        assert scores["llm-only"].recall > 0.6

    def test_hybrid_sits_in_between(self, scores):
        assert scores["tree"].precision > scores["hybrid"].precision \
            > scores["llm-only"].precision
        assert scores["hybrid"].routing_accuracy > 0.4

    def test_deterministic(self):
        assert evaluate_search("ebay", queries=15) \
            == evaluate_search("ebay", queries=15)
