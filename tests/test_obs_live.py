"""Tests for live monitoring and regression gates.

The tentpole's acceptance criterion lives here: a worker killed
mid-run leaves a ledger the follower reports as partial progress and
flags ``stalled`` once the deadline passes; after ``resume_run``
finishes the job, ``repro obs check`` against a pre-kill baseline
passes, while an injected accuracy drop exits non-zero.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time

import pytest

from repro.errors import RunError
from repro.llm.registry import get_model
from repro.obs import (HistoryEntry, JsonlCorruptError, JsonlTail,
                       LedgerFollower,
                       Thresholds, append_entry, check_entries,
                       entry_from_result, iter_jsonl, latest_for,
                       load_entry, read_history, render_dashboard,
                       write_entry)
from repro.runs import (HeartbeatWriter, RunRegistry, RunRequest,
                        create_run, execute_run, load_run,
                        pid_alive, read_heartbeat, replay_ledger,
                        resume_run, run_status)
from repro.cli import main

SMALL = dict(models=("GPT-4",), taxonomy_keys=("ebay",),
             sample_size=8)


@pytest.fixture()
def registry(tmp_path) -> RunRegistry:
    return RunRegistry(tmp_path / "runs")


class _CrashOnceModel:
    """Wraps a model; raises once a shared call budget is spent."""

    def __init__(self, inner, counter: dict, lock: threading.Lock):
        self.inner = inner
        self.name = inner.name
        self._counter = counter
        self._lock = lock

    def generate(self, prompt: str) -> str:
        with self._lock:
            if self._counter["budget"] <= 0:
                raise RuntimeError("injected worker death")
            self._counter["budget"] -= 1
        return self.inner.generate(prompt)


def crashing_resolver(budget: int):
    counter = {"budget": budget}
    lock = threading.Lock()

    def resolve(name: str):
        return _CrashOnceModel(get_model(name), counter, lock)

    return resolve


class _SlowModel:
    """A model with a small fixed latency, for concurrent follows."""

    def __init__(self, inner, latency_s: float):
        self.inner = inner
        self.name = inner.name
        self.latency_s = latency_s

    def generate(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self.inner.generate(prompt)


def slow_resolver(latency_s: float):
    def resolve(name: str):
        return _SlowModel(get_model(name), latency_s)

    return resolve


def _weighted_accuracy(result) -> float:
    questions = sum(cell.metrics.n for cell in result.cells.values())
    correct = sum(cell.metrics.accuracy * cell.metrics.n
                  for cell in result.cells.values())
    return correct / questions if questions else 0.0


# ----------------------------------------------------------------------
# Shared offset-aware JSONL tailing
# ----------------------------------------------------------------------
class TestIterJsonl:
    def test_reads_records_with_line_numbers_and_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n', encoding="utf-8")
        batch = iter_jsonl(path)
        assert batch.payloads == [{"a": 1}, {"b": 2}]
        assert [line for line, _ in batch.records] == [1, 2]
        assert batch.offset == path.stat().st_size
        assert batch.next_line == 3 and not batch.torn

    def test_resumes_from_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n', encoding="utf-8")
        first = iter_jsonl(path)
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"b": 2}\n')
        second = iter_jsonl(path, offset=first.offset,
                            start_line=first.next_line)
        assert second.payloads == [{"b": 2}]
        assert second.records[0][0] == 2

    def test_torn_final_line_left_for_the_next_read(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n{"b":', encoding="utf-8")
        batch = iter_jsonl(path)
        assert batch.payloads == [{"a": 1}]
        assert batch.torn and batch.torn_line == 2
        # The torn bytes were not consumed: completing the line and
        # re-reading from the returned offset yields the record.
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(' 2}\n')
        resumed = iter_jsonl(path, offset=batch.offset,
                             start_line=batch.next_line)
        assert resumed.payloads == [{"b": 2}] and not resumed.torn

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"c": 3}\n',
                        encoding="utf-8")
        with pytest.raises(JsonlCorruptError) as excinfo:
            iter_jsonl(path)
        assert excinfo.value.line_number == 2

    def test_tail_polls_only_the_appended_bytes(self, tmp_path):
        path = tmp_path / "log.jsonl"
        tail = JsonlTail(path)
        assert tail.poll() == []          # missing file: not an error
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"a": 1}\n{"b":')
        assert tail.poll() == [{"a": 1}]
        assert tail.poll() == []          # torn tail not consumed
        with open(path, "a", encoding="utf-8") as stream:
            stream.write(' 2}\n')
        assert tail.poll() == [{"b": 2}]

    def test_concurrent_writer_with_torn_appends(self, tmp_path):
        """A writer tearing every line mid-append never corrupts or
        drops a record for a concurrently polling tail."""
        path = tmp_path / "log.jsonl"
        total = 40

        def writer():
            with open(path, "a", encoding="utf-8") as stream:
                for index in range(total):
                    line = json.dumps({"i": index}) + "\n"
                    stream.write(line[:4])        # deliberately torn
                    stream.flush()
                    time.sleep(0.001)
                    stream.write(line[4:])
                    stream.flush()

        thread = threading.Thread(target=writer)
        thread.start()
        tail = JsonlTail(path)
        seen: list[dict] = []
        while thread.is_alive():
            seen.extend(tail.poll())
            time.sleep(0.002)
        thread.join()
        seen.extend(tail.poll())
        assert seen == [{"i": index} for index in range(total)]


# ----------------------------------------------------------------------
# Heartbeat and status folding
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_first_beat_is_synchronous(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        with HeartbeatWriter(path, interval_s=60.0):
            beat = read_heartbeat(path)
            assert beat is not None
            assert beat["pid"] == os.getpid()
        assert read_heartbeat(path) is not None   # left behind

    def test_unreadable_heartbeat_is_treated_as_absent(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        path.write_text("{torn", encoding="utf-8")
        assert read_heartbeat(path) is None
        assert read_heartbeat(tmp_path / "missing.json") is None

    def test_pid_alive(self):
        assert pid_alive(os.getpid()) is True
        assert pid_alive(-5) is False
        assert pid_alive("not a pid") is False
        assert pid_alive(None) is False

    def test_run_status_folds_the_three_signals(self):
        now = 1000.0
        live = {"pid": os.getpid(), "ts": now - 1.0}
        assert run_status(True, None, None) == "finished"
        assert run_status(False, None, now, now=now) == "crashed"
        dead = {"pid": -5, "ts": now - 1.0}
        assert run_status(False, dead, now, now=now) == "crashed"
        assert run_status(False, live, now - 2.0, now=now,
                          stall_deadline_s=30.0) == "running"
        stale = {"pid": os.getpid(), "ts": now - 120.0}
        assert run_status(False, stale, now - 120.0, now=now,
                          stall_deadline_s=30.0) == "stalled"
        # A fresh ledger keeps a stale heartbeat "running" and
        # vice versa: only both sitting still means stalled.
        assert run_status(False, stale, now - 1.0, now=now,
                          stall_deadline_s=30.0) == "running"

    def test_registry_status_of_finished_and_crashed(self, registry):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        assert registry.status(result.run_id) == "finished"
        summary = registry.summary(result.run_id)
        assert summary.status == "finished"
        assert summary.as_row()["status"] == "finished"

    def test_registry_status_crashed_when_pid_is_gone(self, registry):
        run_id = create_run(RunRequest(**SMALL), registry=registry)
        crash = crashing_resolver(3)
        with pytest.raises(RuntimeError):
            execute_run(RunRequest(**SMALL), registry=registry,
                        run_id=run_id, resolve_model=crash)
        # Rewrite the heartbeat as if its writer process had died.
        registry.heartbeat_path(run_id).write_text(
            json.dumps({"pid": -5, "ts": time.time()}),
            encoding="utf-8")
        assert registry.status(run_id) == "crashed"
        assert registry.summary(run_id).status == "crashed"


# ----------------------------------------------------------------------
# LedgerFollower
# ----------------------------------------------------------------------
class TestLedgerFollower:
    def test_snapshot_of_finished_run_matches_load_run(self, registry):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        follower = LedgerFollower(result.run_id, registry=registry)
        progress = follower.poll()
        loaded = load_run(result.run_id, registry=registry)
        assert progress.finished and progress.status == "finished"
        assert progress.cells_done == len(loaded.cells)
        assert progress.questions_done == sum(
            cell.metrics.n for cell in loaded.cells.values())
        assert progress.accuracy == pytest.approx(
            _weighted_accuracy(loaded))
        assert progress.eta_s is None
        # A second poll consumes nothing and agrees (up to the
        # wall-clock age fields).
        def stable(snapshot):
            return {key: value
                    for key, value in snapshot.to_dict().items()
                    if not key.endswith("_age_s")}
        assert stable(follower.poll()) == stable(progress)

    def test_concurrent_follow_converges_to_post_hoc_state(
            self, registry):
        request = RunRequest(workers=4, **SMALL)
        run_id = create_run(request, registry=registry)
        errors: list[Exception] = []

        def writer():
            try:
                execute_run(request, registry=registry, run_id=run_id,
                            resolve_model=slow_resolver(0.003))
            except Exception as exc:  # pragma: no cover - test guard
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        follower = LedgerFollower(run_id, registry=registry)
        seen: list[int] = []
        while thread.is_alive():
            seen.append(follower.poll().questions_done)
            time.sleep(0.005)
        thread.join()
        assert not errors
        assert seen == sorted(seen)       # progress is monotone
        final = follower.poll()
        state = replay_ledger(registry.ledger_path(run_id))
        loaded = load_run(run_id, registry=registry)
        assert final.finished and final.status == "finished"
        assert final.attempts == state.attempts
        assert final.questions_done == sum(
            len(cell.records) for cell in state.cells.values())
        assert final.accuracy == pytest.approx(
            _weighted_accuracy(loaded))

    def test_killed_run_reports_partial_progress_then_stalls(
            self, registry):
        request = RunRequest(**SMALL)
        run_id = create_run(request, registry=registry)
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        resolve_model=crashing_resolver(5))
        follower = LedgerFollower(run_id, registry=registry)
        progress = follower.poll()
        assert not progress.finished
        assert 0 < progress.questions_done < progress.questions_planned
        assert progress.status == "running"   # deadline not yet hit
        time.sleep(0.02)
        stalled = LedgerFollower(run_id, registry=registry,
                                 stall_deadline_s=0.0).poll()
        assert stalled.status == "stalled"
        # Resume finishes the run; the follower flips to finished.
        resume_run(run_id, registry=registry)
        assert follower.poll().status == "finished"

    def test_eta_counts_down_and_clears_on_finish(self, registry):
        request = RunRequest(**SMALL)
        run_id = create_run(request, registry=registry)
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        resolve_model=crashing_resolver(5))
        partial = LedgerFollower(run_id, registry=registry).poll()
        assert partial.eta_s is not None and partial.eta_s >= 0.0
        assert partial.throughput > 0.0

    def test_unknown_run_raises(self, registry):
        with pytest.raises(RunError):
            LedgerFollower("no-such-run", registry=registry)

    def test_dashboard_renders_bars_and_stall_banner(self, registry):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        progress = LedgerFollower(result.run_id,
                                  registry=registry).poll()
        frame = render_dashboard(progress)
        assert f"run {result.run_id} [finished]" in frame
        assert "[########################]" in frame
        progress.status = "stalled"
        assert "stalled" in render_dashboard(progress)


# ----------------------------------------------------------------------
# History and the regression gate
# ----------------------------------------------------------------------
class TestHistory:
    def test_execute_run_appends_one_entry(self, registry):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        entries = read_history(registry)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.run_id == result.run_id
        assert entry.questions == sum(
            cell.metrics.n for cell in result.cells.values())
        assert entry.accuracy == pytest.approx(
            _weighted_accuracy(result))
        assert entry.throughput > 0 and entry.wall_time_s > 0
        assert set(entry.cell_accuracy) == {
            key.cell_id for key in result.cells}

    def test_resume_appends_an_entry_with_bumped_attempts(
            self, registry):
        request = RunRequest(**SMALL)
        run_id = create_run(request, registry=registry)
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        resolve_model=crashing_resolver(5))
        assert read_history(registry) == []   # no seal, no entry
        resume_run(run_id, registry=registry)
        entries = read_history(registry)
        assert len(entries) == 1
        assert entries[0].run_id == run_id
        assert entries[0].attempts == 2

    def test_entry_round_trips_through_files(self, tmp_path, registry):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        entry = read_history(registry)[0]
        assert HistoryEntry.from_dict(
            json.loads(json.dumps(entry.to_dict()))) == entry
        path = write_entry(entry, tmp_path / "baseline.json")
        assert load_entry(path) == entry
        with pytest.raises(RunError):
            load_entry(tmp_path / "missing.json")
        assert latest_for([entry], run_id=result.run_id) == entry
        assert latest_for([entry], run_id="other") is None

    def test_torn_history_tail_is_tolerated(self, registry):
        execute_run(RunRequest(**SMALL), registry=registry)
        with open(registry.history_path(), "a",
                  encoding="utf-8") as stream:
            stream.write('{"run_id": "torn')
        assert len(read_history(registry)) == 1


class TestRegressionGate:
    def _entry(self, **overrides) -> HistoryEntry:
        base = dict(run_id="base-01", finished_at=0.0, dataset="hard",
                    attempts=1, cells=2, questions=100, accuracy=0.9,
                    wall_time_s=2.0, throughput=50.0,
                    latency_p50_s=0.01, latency_p99_s=0.1,
                    cache_hit_rate=0.0,
                    cell_accuracy={"a": 0.92, "b": 0.88})
        base.update(overrides)
        return HistoryEntry(**base)

    def test_identical_entries_pass(self):
        report = check_entries(self._entry(),
                               self._entry(run_id="cand-01"))
        assert report.passed and not report.failures
        metrics = {check.metric for check in report.checks}
        assert metrics == {"accuracy_drop_pts",
                           "throughput_drop_pct", "p99_blowup_pct"}

    def test_overall_accuracy_drop_fails(self):
        candidate = self._entry(run_id="cand-01", accuracy=0.85,
                                cell_accuracy={"a": 0.87, "b": 0.83})
        report = check_entries(self._entry(), candidate,
                               Thresholds(accuracy_drop_pts=1.0))
        assert not report.passed
        failed = {(check.metric, check.scope)
                  for check in report.failures}
        assert ("accuracy_drop_pts", "overall") in failed
        assert ("accuracy_drop_pts", "a") in failed

    def test_single_cell_regression_cannot_hide_in_the_mean(self):
        # Cell b collapses while a improves; overall barely moves.
        candidate = self._entry(run_id="cand-01", accuracy=0.895,
                                cell_accuracy={"a": 0.99, "b": 0.80})
        report = check_entries(self._entry(), candidate,
                               Thresholds(accuracy_drop_pts=1.0))
        assert not report.passed
        assert any(check.scope == "b" for check in report.failures)

    def test_throughput_and_p99_gates(self):
        slow = self._entry(run_id="cand-01", throughput=10.0,
                           latency_p99_s=0.5)
        report = check_entries(self._entry(), slow, Thresholds(
            throughput_drop_pct=50.0, p99_blowup_pct=200.0))
        failed = {check.metric for check in report.failures}
        assert failed == {"throughput_drop_pct", "p99_blowup_pct"}

    def test_zero_baseline_perf_is_skipped_not_failed(self):
        baseline = self._entry(throughput=0.0, latency_p99_s=0.0)
        report = check_entries(baseline, self._entry(run_id="c"))
        metrics = {check.metric for check in report.checks}
        assert metrics == {"accuracy_drop_pts"}
        assert report.passed

    def test_kill_resume_then_check_against_prekill_baseline(
            self, registry, tmp_path):
        """The acceptance scenario end to end."""
        request = RunRequest(**SMALL)
        baseline_run = execute_run(request, registry=registry)
        baseline_path = write_entry(read_history(registry)[0],
                                    tmp_path / "baseline.json")
        run_id = create_run(request, registry=registry)
        with pytest.raises(RuntimeError):
            execute_run(request, registry=registry, run_id=run_id,
                        resolve_model=crashing_resolver(5))
        resume_run(run_id, registry=registry)
        candidate = latest_for(read_history(registry))
        assert candidate.run_id == run_id
        report = check_entries(load_entry(baseline_path), candidate,
                               Thresholds(throughput_drop_pct=99.0,
                                          p99_blowup_pct=10_000.0))
        # Pools and models are pure functions of the request, so the
        # resumed run's accuracy is bit-identical to the baseline's.
        assert report.passed
        assert candidate.accuracy == pytest.approx(
            _weighted_accuracy(baseline_run))


# ----------------------------------------------------------------------
# CLI: watch / obs history / obs check
# ----------------------------------------------------------------------
class TestLiveCli:
    def _run(self, capsys, *argv: str, code: int = 0) -> str:
        assert main(list(argv)) == code
        return capsys.readouterr().out

    @pytest.fixture()
    def runs_dir(self, tmp_path):
        return str(tmp_path / "cli-runs")

    @pytest.fixture()
    def finished_run(self, capsys, runs_dir) -> str:
        self._run(capsys, "run", "--models", "GPT-4",
                  "--taxonomies", "ebay", "--sample", "8",
                  "--runs-dir", runs_dir)
        listing = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir", runs_dir))
        return listing[0]["run_id"]

    def test_watch_once_json_reports_progress(self, capsys, runs_dir,
                                              finished_run):
        snapshot = json.loads(self._run(
            capsys, "watch", finished_run, "--once", "--json",
            "--runs-dir", runs_dir))
        assert snapshot["status"] == "finished"
        assert snapshot["questions_done"] == \
            snapshot["questions_planned"] > 0
        assert snapshot["cells"][0]["complete"] is True

    def test_watch_once_dashboard_and_follow_alias(
            self, capsys, runs_dir, finished_run):
        frame = self._run(capsys, "watch", finished_run, "--once",
                          "--runs-dir", runs_dir)
        assert f"run {finished_run} [finished]" in frame
        followed = self._run(capsys, "runs", "show", finished_run,
                             "--follow", "--runs-dir", runs_dir)
        assert f"run {finished_run} finished" in followed

    def test_runs_list_shows_live_status(self, capsys, runs_dir,
                                         finished_run):
        listing = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir", runs_dir))
        assert listing[0]["status"] == "finished"

    def test_obs_history_lists_the_series(self, capsys, runs_dir,
                                          finished_run):
        table = self._run(capsys, "obs", "history", "--runs-dir",
                          runs_dir)
        assert finished_run in table and "accuracy" in table
        entries = json.loads(self._run(
            capsys, "obs", "history", "--json", "--last", "1",
            "--runs-dir", runs_dir))
        assert len(entries) == 1
        assert entries[0]["run_id"] == finished_run

    def test_obs_check_passes_and_gates(self, capsys, runs_dir,
                                        finished_run):
        out = self._run(capsys, "obs", "check", "--baseline",
                        finished_run, "--runs-dir", runs_dir)
        assert "PASS" in out
        # Inject a regressed entry and gate against the good one.
        registry = RunRegistry(runs_dir)
        good = latest_for(read_history(registry))
        bad = dataclasses.replace(
            good, run_id="regressed-01",
            accuracy=good.accuracy - 0.10,
            cell_accuracy={cell: acc - 0.10 for cell, acc
                           in good.cell_accuracy.items()})
        append_entry(bad, registry)
        out = self._run(capsys, "obs", "check", "--baseline",
                        finished_run, "--run", "regressed-01",
                        "--runs-dir", runs_dir, code=1)
        assert "FAIL" in out
        verdict = json.loads(self._run(
            capsys, "obs", "check", "--baseline", finished_run,
            "--run", "regressed-01", "--json", "--runs-dir",
            runs_dir, code=1))
        assert verdict["passed"] is False

    def test_obs_check_baseline_file_round_trip(self, capsys, tmp_path,
                                                runs_dir,
                                                finished_run):
        baseline = str(tmp_path / "baseline.json")
        self._run(capsys, "obs", "check", "--write-baseline",
                  baseline, "--runs-dir", runs_dir)
        out = self._run(capsys, "obs", "check", "--baseline-file",
                        baseline, "--runs-dir", runs_dir)
        assert "PASS" in out

    def test_obs_check_without_history_fails_loudly(self, capsys,
                                                    runs_dir):
        with pytest.raises(RunError):
            main(["obs", "check", "--baseline", "x",
                  "--runs-dir", runs_dir])


# ----------------------------------------------------------------------
# Concurrent readers (the serving layer's sharing contract)
# ----------------------------------------------------------------------
class TestConcurrentFollowers:
    """One run, many readers — the ``repro.serve`` hub's contract."""

    READERS = 6

    #: Snapshot fields that depend on the poll clock rather than the
    #: ledger contents.
    VOLATILE = ("ts", "elapsed_s", "throughput", "eta_s",
                "heartbeat_age_s", "progress_age_s")

    def _stable(self, snapshot: dict) -> dict:
        return {key: value for key, value in snapshot.items()
                if key not in self.VOLATILE}

    def test_one_shared_follower_polled_by_many_threads(self,
                                                        registry):
        request = RunRequest(**SMALL)
        run_id = create_run(request, registry=registry)
        follower = LedgerFollower(run_id, registry=registry)
        stop = threading.Event()
        errors: list[BaseException] = []
        polls = [0] * self.READERS

        def reader(slot: int) -> None:
            try:
                while not stop.is_set():
                    follower.poll()
                    polls[slot] += 1
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(self.READERS)]
        for thread in threads:
            thread.start()
        try:
            result = execute_run(request, registry=registry,
                                 run_id=run_id,
                                 resolve_model=slow_resolver(0.001))
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert all(count > 0 for count in polls)
        # The shared, heavily contended follower converges to the
        # exact post-hoc state.
        final = follower.poll()
        loaded = load_run(run_id, registry=registry)
        assert final.finished
        assert final.questions_done == sum(
            cell.metrics.n for cell in loaded.cells.values())
        assert final.correct == round(
            _weighted_accuracy(loaded) * final.questions_done)
        assert {cell.cell_id for cell in final.cells} == \
            {key.cell_id for key in loaded.cells}
        for cell in final.cells:
            assert cell.complete and cell.done == cell.expected

    def test_k_independent_followers_converge_identically(self,
                                                          registry):
        request = RunRequest(**SMALL)
        result = execute_run(request, registry=registry)
        followers = [LedgerFollower(result.run_id, registry=registry)
                     for _ in range(self.READERS)]
        snapshots: list[dict] = [None] * self.READERS
        errors: list[BaseException] = []

        def follow(slot: int) -> None:
            try:
                snapshots[slot] = followers[slot].poll().to_dict()
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=follow, args=(slot,))
                   for slot in range(self.READERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        stable = [self._stable(snapshot) for snapshot in snapshots]
        assert all(snapshot == stable[0] for snapshot in stable[1:])
        assert stable[0]["finished"] is True
        assert stable[0]["questions_done"] == result.evaluated
