"""Tests for the synthetic taxonomy generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.generators.base import (DEFAULT_LEVEL_CAP, generate_taxonomy,
                                   materialized_width)
from repro.generators.names import (NamePool, PhraseForge, WordForge,
                                    camel_case, title_case)
from repro.generators.registry import (ALL_SPECS, COMMON_KEYS,
                                       SPECIALIZED_KEYS, TAXONOMY_KEYS,
                                       build_taxonomy, get_spec)
from repro.generators.schema_org import camel_tail
from repro.taxonomy.validate import collect_problems

#: Exact Table 1 shapes the specs must carry.
_TABLE1 = {
    "ebay": (595, 3, 13),
    "amazon": (43814, 5, 41),
    "google": (5595, 5, 21),
    "schema": (1346, 6, 3),
    "acm_ccs": (2113, 5, 13),
    "geonames": (689, 2, 9),
    "glottolog": (11969, 6, 245),
    "icd10cm": (4523, 4, 22),
    "oae": (9547, 5, 181),
    "ncbi": (2190125, 7, 53),
}


class TestNameForging:
    def test_word_forge_deterministic(self):
        first = WordForge(random.Random(7)).word()
        second = WordForge(random.Random(7)).word()
        assert first == second

    def test_proper_is_capitalized(self):
        word = WordForge(random.Random(1)).proper()
        assert word[0].isupper()

    def test_suffix_applied(self):
        word = WordForge(random.Random(1)).word(suffix="ales")
        assert word.endswith("ales")

    def test_name_pool_guarantees_uniqueness(self):
        pool = NamePool()
        names = [pool.claim(lambda: "same") for _ in range(20)]
        assert len(set(names)) == 20

    def test_name_pool_contains(self):
        pool = NamePool()
        name = pool.claim(lambda: "x")
        assert name in pool

    def test_phrase_forge_unique_phrases(self):
        forge = PhraseForge(random.Random(3), ["pen"], ["red", "blue"])
        phrases = {forge.phrase() for _ in range(30)}
        assert len(phrases) == 30

    def test_phrase_forge_rejects_empty_vocab(self):
        with pytest.raises(ValueError):
            PhraseForge(random.Random(0), [], ["x"])

    def test_title_case(self):
        assert title_case("wireless headphones") == "Wireless Headphones"

    def test_camel_case(self):
        assert camel_case("trade", "action") == "TradeAction"

    def test_camel_tail(self):
        assert camel_tail("CompletedPaymentAction") == "PaymentAction"
        assert camel_tail("Thing") == "Thing"


class TestMaterializedWidth:
    def test_full_scale_respects_cap(self):
        assert materialized_width(100_000, 1.0, 20_000) == 20_000

    def test_small_levels_fully_materialized(self):
        assert materialized_width(13, 1.0, 20_000) == 13

    def test_scale_shrinks(self):
        assert materialized_width(1000, 0.1, 20_000) == 100

    def test_minimum_one_node(self):
        assert materialized_width(5, 0.0001, 20_000) == 1

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            materialized_width(10, 0.0, 100)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            materialized_width(10, 1.0, 0)


class TestSpecs:
    @pytest.mark.parametrize("key", TAXONOMY_KEYS)
    def test_spec_matches_table1(self, key):
        entities, levels, trees = _TABLE1[key]
        spec = get_spec(key)
        assert spec.num_entities == entities
        assert spec.num_levels == levels
        assert spec.num_trees == trees

    def test_ten_taxonomies_registered(self):
        assert len(ALL_SPECS) == 10

    def test_common_and_specialized_partition(self):
        assert set(COMMON_KEYS) | set(SPECIALIZED_KEYS) \
            == set(TAXONOMY_KEYS)
        assert not set(COMMON_KEYS) & set(SPECIALIZED_KEYS)

    def test_lookup_by_display_name(self):
        assert get_spec("NCBI").key == "ncbi"

    def test_unknown_key_raises(self):
        with pytest.raises(ReproError):
            get_spec("wordnet")


class TestGeneratedTaxonomies:
    @pytest.mark.parametrize("key", TAXONOMY_KEYS)
    def test_generated_taxonomy_is_valid(self, key):
        taxonomy = build_taxonomy(key)
        assert collect_problems(taxonomy) == []

    @pytest.mark.parametrize("key", TAXONOMY_KEYS)
    def test_shape_matches_spec_up_to_cap(self, key):
        spec = get_spec(key)
        taxonomy = build_taxonomy(key)
        assert taxonomy.num_trees == spec.num_trees
        assert taxonomy.num_levels == spec.num_levels
        for level, width in enumerate(spec.level_widths):
            assert taxonomy.level_width(level) \
                == min(width, DEFAULT_LEVEL_CAP)

    @pytest.mark.parametrize("key", TAXONOMY_KEYS)
    def test_names_are_unique(self, key):
        taxonomy = build_taxonomy(key)
        names = [node.name for node in taxonomy]
        assert len(names) == len(set(names))

    def test_generation_is_deterministic(self):
        spec = get_spec("ebay")
        first = generate_taxonomy(spec)
        second = generate_taxonomy(spec)
        assert [n.name for n in first] == [n.name for n in second]

    def test_scale_parameter_shrinks_output(self):
        spec = get_spec("glottolog")
        small = generate_taxonomy(spec, scale=0.1)
        assert len(small) < 0.2 * sum(
            min(w, DEFAULT_LEVEL_CAP) for w in spec.level_widths)

    def test_most_children_have_uncles(self, glottolog_taxonomy):
        # Hard-negative availability: the branching concentration must
        # leave the vast majority of children with at least one uncle.
        for level in range(1, glottolog_taxonomy.num_levels):
            children = glottolog_taxonomy.nodes_at_level(level)
            with_uncles = sum(
                1 for child in children
                if glottolog_taxonomy.uncles(child.node_id))
            assert with_uncles / len(children) > 0.75


class TestDomainFlavour:
    def test_ncbi_species_embed_genus(self, ncbi_taxonomy):
        species = ncbi_taxonomy.nodes_at_level(6)[:200]
        embedding = sum(
            1 for s in species
            if s.name.startswith(
                ncbi_taxonomy.parent(s.node_id).name + " "))
        assert embedding == len(species)

    def test_ncbi_orders_end_in_rank_suffix(self, ncbi_taxonomy):
        orders = ncbi_taxonomy.nodes_at_level(3)[:100]
        suffixed = sum(1 for o in orders
                       if o.name.endswith(("ales", "formes", "ida")))
        assert suffixed == len(orders)

    def test_oae_leaves_mostly_contain_parent_name(self):
        taxonomy = build_taxonomy("oae")
        leaves = taxonomy.nodes_at_level(4)
        containing = sum(
            1 for leaf in leaves
            if taxonomy.parent(leaf.node_id).name in leaf.name)
        assert containing / len(leaves) > 0.75

    def test_icd_deepest_level_extends_parent(self):
        taxonomy = build_taxonomy("icd10cm")
        entities = taxonomy.nodes_at_level(3)[:200]
        extending = sum(
            1 for e in entities
            if e.name.startswith(taxonomy.parent(e.node_id).name))
        assert extending == len(entities)

    def test_schema_names_are_camel_case(self):
        taxonomy = build_taxonomy("schema")
        for node in taxonomy.nodes_at_level(2)[:50]:
            assert " " not in node.name
            assert node.name[0].isupper()

    def test_glottolog_leaf_names_rarely_contain_parent(self):
        taxonomy = build_taxonomy("glottolog")
        leaves = taxonomy.nodes_at_level(5)
        containing = sum(
            1 for leaf in leaves
            if taxonomy.parent(leaf.node_id).name in leaf.name)
        assert containing / len(leaves) < 0.35
