"""Property-based tests for the shard planner's two invariants.

* every cell id :func:`repro.runs.driver.plan_cells` can emit parses
  back to the same :class:`CellKey` (the merge depends on this to
  rebuild typed results from ledger cell ids), and
* :func:`repro.dist.planner.partition_tasks` is a disjoint exact
  cover of its input for arbitrary task shapes and shard counts,
  and a pure function of them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.paper_tables import MODEL_ORDER, TAXONOMY_ORDER
from repro.llm.prompting import PromptSetting
from repro.runs.driver import CellKey, plan_cells
from repro.runs.request import RunRequest
from repro.dist.planner import ShardTask, partition_tasks


class _StubPools:
    """Stands in for TaxonomyPools: only ``question_levels`` is read
    by ``plan_cells`` (and only on per-level requests)."""

    def __init__(self, levels):
        self.question_levels = levels


def _subset(values):
    return st.lists(st.sampled_from(list(values)), min_size=1,
                    max_size=len(list(values)), unique=True)


run_requests = st.builds(
    RunRequest,
    dataset=st.sampled_from(["hard", "easy", "mcq"]),
    models=_subset(MODEL_ORDER).map(tuple),
    taxonomy_keys=_subset(TAXONOMY_ORDER).map(tuple),
    settings=_subset([s.value for s in PromptSetting]).map(tuple),
    sample_size=st.one_of(st.none(),
                          st.integers(min_value=1, max_value=60)),
    per_level=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(run_requests,
       st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                max_size=4))
def test_cell_key_parse_round_trips_every_planned_cell(request,
                                                       levels):
    pools = {key: _StubPools(sorted(set(levels)))
             for key in request.taxonomy_keys}
    cells = plan_cells(request, pools)
    assert cells, "every request plans at least one cell"
    assert len(set(cells)) == len(cells)
    for cell in cells:
        parsed = CellKey.parse(cell.cell_id)
        assert parsed == cell
        assert parsed.cell_id == cell.cell_id


@st.composite
def task_lists(draw):
    """Arbitrary single-cell task lists (full ranges, like the
    planner's input) over distinct synthetic cells."""
    sizes = draw(st.lists(st.integers(min_value=1, max_value=200),
                          min_size=1, max_size=12))
    return [ShardTask(cell=CellKey(model=f"m{index}",
                                   taxonomy_key="tax",
                                   dataset="hard",
                                   setting="zero-shot", level=None),
                      start=0, stop=size, n=size)
            for index, size in enumerate(sizes)]


@settings(max_examples=120, deadline=None)
@given(task_lists(), st.integers(min_value=1, max_value=24))
def test_partition_is_disjoint_exact_cover(tasks, shards):
    plan = partition_tasks(tasks, shards)
    assert len(plan) == shards
    covered = {task.cell.cell_id: set() for task in tasks}
    for shard in plan:
        for piece in shard:
            indices = set(piece.indices)
            assert not covered[piece.cell.cell_id] & indices, \
                "shards overlap"
            covered[piece.cell.cell_id] |= indices
    for task in tasks:
        assert covered[task.cell.cell_id] == set(task.indices), \
            "shards leave a hole"


@settings(max_examples=60, deadline=None)
@given(task_lists(), st.integers(min_value=1, max_value=24))
def test_partition_is_deterministic(tasks, shards):
    first = partition_tasks(tasks, shards)
    second = partition_tasks(list(tasks), shards)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(task_lists(), st.integers(min_value=2, max_value=8))
def test_partition_never_idles_a_shard_needlessly(tasks, shards):
    """No shard sits empty while another holds more than one chunk
    (the planner halves the largest chunks until K shards can eat)."""
    plan = partition_tasks(tasks, shards)
    total = sum(task.size for task in tasks)
    empty = sum(1 for shard in plan if not shard)
    if total >= shards:
        chunky = sum(1 for shard in plan if len(shard) > 1)
        assert empty == 0 or chunky == 0
