"""Tests for the taxonomy oracle, profiles and simulated models."""

from __future__ import annotations

import pytest

from repro.data.paper_tables import MODEL_ORDER
from repro.errors import UnknownModelError
from repro.llm.oracle import TaxonomyOracle, default_oracle
from repro.llm.parsing import parse_answer
from repro.llm.prompt_parsing import parse_prompt
from repro.llm.prompting import PromptSetting, build_prompt
from repro.llm.registry import (MODEL_NAMES, SERIES, all_models,
                                get_model, get_profile)
from repro.llm.rng import stable_choice, stable_index, unit_float
from repro.questions.model import (DatasetKind, QuestionKind,
                                   QuestionType)
from repro.questions.pools import default_pools
from repro.questions.templates import render_question


class TestHashRng:
    def test_unit_float_in_range(self):
        for i in range(200):
            value = unit_float("a", i)
            assert 0.0 <= value < 1.0

    def test_unit_float_deterministic(self):
        assert unit_float("x", 1, "y") == unit_float("x", 1, "y")

    def test_unit_float_sensitive_to_parts(self):
        assert unit_float("x", 1) != unit_float("x", 2)

    def test_unit_float_roughly_uniform(self):
        values = [unit_float("u", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert 0.47 < mean < 0.53

    def test_stable_index_bounds(self):
        for i in range(100):
            assert 0 <= stable_index(7, "k", i) < 7

    def test_stable_choice(self):
        items = ["a", "b", "c"]
        assert stable_choice(items, "s") in items
        assert stable_choice(items, "s") == stable_choice(items, "s")

    def test_stable_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            stable_choice([], "s")


class TestOracle:
    @pytest.fixture(scope="class")
    def oracle(self):
        return default_oracle()

    def _questions(self, kind, key="ebay"):
        pool = default_pools(key, sample_size=20).total_pool(
            DatasetKind.HARD if kind is QuestionKind.NEGATIVE_HARD
            else DatasetKind.EASY)
        return [q for q in pool.questions if q.kind is kind]

    def test_positive_resolution(self, oracle):
        for question in self._questions(QuestionKind.POSITIVE)[:10]:
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert resolution.kind is QuestionKind.POSITIVE
            assert resolution.truth

    def test_hard_negative_resolution(self, oracle):
        for question in self._questions(
                QuestionKind.NEGATIVE_HARD)[:10]:
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert resolution.kind is QuestionKind.NEGATIVE_HARD
            assert not resolution.truth

    def test_easy_negative_resolution(self, oracle):
        # Level-2 questions: at level 1 every easy negative is also an
        # uncle (parents are roots), so deeper levels are needed to see
        # the easy classification.
        questions = [q for q in self._questions(
            QuestionKind.NEGATIVE_EASY) if q.level == 2][:10]
        resolved_kinds = set()
        for question in questions:
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert not resolution.truth
            resolved_kinds.add(resolution.kind)
        # A random non-parent can coincidentally be an uncle; most are
        # classified easy.
        assert QuestionKind.NEGATIVE_EASY in resolved_kinds

    def test_mcq_resolution(self, oracle):
        pool = default_pools("ebay", sample_size=20).total_pool(
            DatasetKind.MCQ)
        for question in pool.questions[:10]:
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert resolution.qtype is QuestionType.MCQ
            assert resolution.correct_option == question.answer_index

    def test_unknown_concepts_resolve_to_none(self, oracle):
        parsed = parse_prompt(
            "Is Flibbertigibbet a type of Whatchamacallit? answer "
            "with (Yes/No/I don't know)")
        assert oracle.resolve(parsed) is None

    def test_shape_level_tracks_child_level(self, oracle):
        pool = default_pools("glottolog", sample_size=12)
        for level in pool.question_levels:
            question = pool.level_pool(
                level, DatasetKind.HARD).questions[0]
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution.shape_level == level - 1

    def test_custom_oracle_restricts_universe(self, toy_taxonomy):
        oracle = TaxonomyOracle({"toy": toy_taxonomy})
        parsed = parse_prompt(
            "Are Headphones products a type of Audio products? "
            "answer with (Yes/No/I don't know)")
        resolution = oracle.resolve(parsed)
        assert resolution is not None
        assert resolution.taxonomy_key == "toy"
        assert resolution.truth


class TestProfilesAndRegistry:
    def test_eighteen_models(self):
        assert len(MODEL_NAMES) == 18
        assert tuple(MODEL_NAMES) == MODEL_ORDER

    def test_unknown_model_rejected(self):
        with pytest.raises(UnknownModelError):
            get_profile("GPT-5")

    def test_series_cover_open_source_models(self):
        covered = {name for members in SERIES.values()
                   for name in members}
        assert covered == set(MODEL_NAMES) - {"LLMs4OL", "Claude-3"}

    def test_profile_cells_match_paper(self):
        profile = get_profile("GPT-4")
        assert profile.cell("hard", "ebay") == (0.921, 0.003)
        assert profile.cell("mcq", "ncbi") == (0.701, 0.009)

    def test_hard_negative_decomposition_respects_means(self):
        profile = get_profile("GPT-4")
        easy_a, _ = profile.cell("easy", "google")
        hard_a, _ = profile.cell("hard", "google")
        neg_a, _ = profile.kind_params(QuestionKind.NEGATIVE_HARD,
                                       "google")
        assert (easy_a + neg_a) / 2 == pytest.approx(hard_a, abs=1e-9)

    def test_conditional_accuracy_uses_latent_when_pinned(self):
        profile = get_profile("Llama-2-7B")
        assert profile.conditional_accuracy(0.0, 1.0) \
            == profile.latent_accuracy

    def test_fewshot_cuts_miss(self):
        profile = get_profile("Llama-2-7B")
        assert profile.miss_under(0.9, PromptSetting.FEW_SHOT) \
            < 0.2

    def test_cot_raises_miss(self):
        profile = get_profile("Vicuna-13B")
        assert profile.miss_under(0.4, PromptSetting.COT) > 0.4

    def test_zero_shot_identity(self):
        profile = get_profile("GPT-4")
        assert profile.miss_under(0.1, PromptSetting.ZERO_SHOT) == 0.1

    def test_get_model_cached(self):
        assert get_model("GPT-4") is get_model("GPT-4")

    def test_all_models_order(self):
        assert [m.name for m in all_models()] == list(MODEL_ORDER)


class TestSimulatedModel:
    def test_responses_are_deterministic(self, ebay_pools):
        model = get_model("GPT-4")
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        prompts = [render_question(q) for q in pool.questions[:20]]
        first = [model.generate(p) for p in prompts]
        second = [model.generate(p) for p in prompts]
        assert first == second

    def test_same_fact_consistent_across_settings(self, ebay_pools):
        # The "know" draw is setting-independent: a model that answers
        # a fact correctly zero-shot and also answers it few-shot gives
        # the same verdict.
        model = get_model("Flan-T5-11B")  # zero miss everywhere
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        for question in pool.questions[:20]:
            zero = parse_answer(model.generate(
                build_prompt(question, PromptSetting.ZERO_SHOT)),
                question)
            few = parse_answer(model.generate(
                build_prompt(question, PromptSetting.FEW_SHOT,
                             pool_questions=pool.questions)),
                question)
            assert zero is few

    def test_unknown_entities_get_idk(self):
        model = get_model("GPT-4")
        response = model.generate(
            "Is Zorblax a type of Quuxite? answer with "
            "(Yes/No/I don't know)")
        assert "don't know" in response

    def test_free_form_prompt_gets_idk(self):
        model = get_model("GPT-4")
        assert "know" in model.generate("What is a taxonomy?")

    def test_verbose_style_produces_sentences(self, ebay_pools):
        model = get_model("Vicuna-7B")  # verbose profile
        question = ebay_pools.total_pool(
            DatasetKind.HARD).questions[0]
        response = model.generate(render_question(question))
        assert response.endswith(".")
        assert len(response.split()) > 1

    def test_mcq_response_names_an_option(self, ebay_pools):
        model = get_model("GPT-4")
        question = ebay_pools.total_pool(DatasetKind.MCQ).questions[0]
        response = model.generate(render_question(question))
        answer = parse_answer(response, question)
        assert answer.value in "ABCD"

    def test_prompts_served_counter(self):
        model = get_model("Mistral")
        served = model.prompts_served
        model.generate("Is A a type of B? answer with "
                       "(Yes/No/I don't know)")
        assert model.prompts_served == served + 1

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            get_model("GPT-4").generate("  ")
