"""Artifact store: round-trip fidelity, invalidation, recovery.

The store's contract is that a warm load is indistinguishable from
regeneration: same question uids, same order, same MCQ options and
answer indices.  These tests pin that contract for every build path
(sequential, parallel workers, disk round-trip), plus the
cache-invalidation rules and the corrupted-artifact recovery path.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.generators.registry import get_spec
from repro.questions.generation import _sample_easy_negative
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools, generate_pools
from repro.store import (ArtifactStore, build_all_datasets,
                         decode_pools, encode_pools, spec_fingerprint)
from repro.store.codec import ArtifactDecodeError
from repro.store.fingerprint import SCHEMA_VERSION, code_fingerprint

SMALL_KEYS = ("ebay", "geonames", "schema")


def _assert_pools_equal(expected, actual):
    assert expected.taxonomy_key == actual.taxonomy_key
    assert expected.question_levels == actual.question_levels
    for kind in DatasetKind:
        left = expected.total_pool(kind).questions
        right = actual.total_pool(kind).questions
        assert left == right, kind


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Round-trip fidelity
# ----------------------------------------------------------------------
def test_codec_round_trip_is_lossless(store):
    pools = generate_pools("ebay", sample_size=20)
    fingerprint = store.fingerprint("ebay", 20)
    decoded = decode_pools(encode_pools(pools, fingerprint, 20, ""))
    _assert_pools_equal(pools, decoded)


def test_round_trip_preserves_mcq_options_and_answers(store):
    pools = generate_pools("schema", sample_size=15)
    decoded = decode_pools(
        encode_pools(pools, store.fingerprint("schema", 15), 15, ""))
    original = pools.total_pool(DatasetKind.MCQ).questions
    restored = decoded.total_pool(DatasetKind.MCQ).questions
    assert len(original) > 0
    for left, right in zip(original, restored):
        assert left.options == right.options
        assert left.answer_index == right.answer_index
        assert left.options[left.answer_index] == left.true_parent_name


def test_decoded_taxonomy_materializes_lazily(store):
    pools = generate_pools("ebay", sample_size=10)
    decoded = decode_pools(
        encode_pools(pools, store.fingerprint("ebay", 10), 10, ""))
    # Questions decode without touching the node graph...
    assert decoded._taxonomy is None
    # ...and forcing it reproduces the original structure.
    taxonomy = decoded.taxonomy
    assert decoded._taxonomy is taxonomy
    assert [node.node_id for node in taxonomy] == \
        [node.node_id for node in pools.taxonomy]
    assert taxonomy.num_levels == pools.taxonomy.num_levels
    for node in pools.taxonomy:
        twin = taxonomy.node(node.node_id)
        assert (twin.name, twin.level, twin.parent_id) == \
            (node.name, node.level, node.parent_id)


def test_store_round_trip_through_disk(store):
    direct = generate_pools("ebay", sample_size=20)
    built = store.get_or_build("ebay", sample_size=20)
    _assert_pools_equal(direct, built)
    assert store.stats.builds == 1
    warm = store.load("ebay", sample_size=20)
    _assert_pools_equal(direct, warm)
    assert store.stats.hits == 1


def test_parallel_sequential_and_store_loads_agree(store):
    sequential = {key: generate_pools(key, sample_size=12)
                  for key in SMALL_KEYS}
    parallel = build_all_datasets(SMALL_KEYS, sample_size=12, jobs=2,
                                  store=store, force=True)
    warm = build_all_datasets(SMALL_KEYS, sample_size=12, store=store)
    assert list(parallel) == list(SMALL_KEYS)
    for key in SMALL_KEYS:
        _assert_pools_equal(sequential[key], parallel[key])
        _assert_pools_equal(sequential[key], warm[key])
    assert store.stats.hits == len(SMALL_KEYS)


def test_build_pools_uses_explicit_store(store):
    built = build_pools("geonames", sample_size=10, store=store)
    assert store.stats.builds == 1
    again = build_pools("geonames", sample_size=10, store=store)
    _assert_pools_equal(built, again)
    assert store.stats.hits == 1


# ----------------------------------------------------------------------
# Fingerprints and invalidation
# ----------------------------------------------------------------------
def test_fingerprint_changes_with_request_and_schema():
    spec = get_spec("ebay")
    base = spec_fingerprint(spec, 20, "")
    assert spec_fingerprint(spec, 21, "") != base
    assert spec_fingerprint(spec, None, "") != base
    assert spec_fingerprint(spec, 20, "resample-1") != base
    assert spec_fingerprint(spec, 20, "",
                            schema_version=SCHEMA_VERSION + 1) != base
    assert spec_fingerprint(spec, 20, "", code="0" * 16) != base
    assert spec_fingerprint(get_spec("geonames"), 20, "") != base
    # Same request, same everything: stable across calls.
    assert spec_fingerprint(spec, 20, "") == base


def test_code_fingerprint_is_stable_and_hex():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 16
    int(first, 16)


def test_seed_change_lands_on_a_different_artifact(store):
    store.get_or_build("ebay", sample_size=10, seed="a")
    store.get_or_build("ebay", sample_size=10, seed="b")
    assert store.stats.builds == 2
    paths = {store.path_for("ebay", 10, seed) for seed in ("a", "b")}
    assert len(paths) == 2
    assert all(path.exists() for path in paths)


def test_schema_bump_invalidates_saved_artifact(store):
    store.get_or_build("ebay", sample_size=10)
    path = store.path_for("ebay", 10)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["schema"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ArtifactDecodeError):
        decode_pools(payload)
    assert store.load("ebay", sample_size=10) is None
    assert store.stats.invalid == 1
    assert not path.exists()


def test_corrupted_artifact_is_rebuilt_not_fatal(store):
    direct = store.get_or_build("ebay", sample_size=10)
    path = store.path_for("ebay", 10)
    path.write_text("{truncated", encoding="utf-8")
    rebuilt = store.get_or_build("ebay", sample_size=10)
    _assert_pools_equal(direct, rebuilt)
    assert store.stats.invalid == 1
    assert store.stats.builds == 2
    # The rewrite healed the artifact: next read is a clean hit.
    assert store.load("ebay", sample_size=10) is not None


def test_missing_question_column_is_a_decode_error(store):
    pools = generate_pools("geonames", sample_size=8)
    payload = encode_pools(pools, store.fingerprint("geonames", 8), 8, "")
    del payload["levels"][0]["positive"]
    with pytest.raises(ArtifactDecodeError):
        decode_pools(payload)


# ----------------------------------------------------------------------
# Pools and sampling fast paths
# ----------------------------------------------------------------------
def test_total_pool_is_cached_per_kind():
    pools = generate_pools("ebay", sample_size=10)
    assert pools.total_pool(DatasetKind.EASY) is \
        pools.total_pool(DatasetKind.EASY)
    assert pools.total_pool(DatasetKind.EASY) is not \
        pools.total_pool(DatasetKind.HARD)


def test_easy_negative_draw_is_uniform_and_excludes_parent(
        ebay_taxonomy):
    child = ebay_taxonomy.nodes_at_level(2)[0]
    candidates = ebay_taxonomy.nodes_at_level(1)
    rng = random.Random(7)
    counts = {node.node_id: 0 for node in candidates}
    draws = 200 * len(candidates)
    for _ in range(draws):
        picked = _sample_easy_negative(ebay_taxonomy, child, rng)
        counts[picked.node_id] += 1
    assert counts[child.parent_id] == 0
    others = [count for node_id, count in counts.items()
              if node_id != child.parent_id]
    assert min(others) > 0
    expected = draws / (len(candidates) - 1)
    assert max(others) < 2 * expected


def test_easy_negative_needs_two_parent_level_nodes(toy_taxonomy):
    # Level 1 has 3 nodes but level 0 has exactly 2 roots, so a level-1
    # child always has one alternative; a 1-root taxonomy would not.
    child = toy_taxonomy.nodes_at_level(1)[0]
    picked = _sample_easy_negative(toy_taxonomy, child,
                                   random.Random(0))
    assert picked is not None
    assert picked.node_id != child.parent_id
    assert picked.level == 0
