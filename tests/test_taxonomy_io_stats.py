"""Unit tests for taxonomy serialization and Table 1 statistics."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.io import (load_edge_tsv, load_json, save_edge_tsv,
                               save_json, taxonomy_from_dict,
                               taxonomy_to_dict)
from repro.taxonomy.node import Domain
from repro.taxonomy.stats import (branching_factors, compute_statistics)


class TestJsonRoundTrip:
    def test_round_trip_preserves_structure(self, toy_taxonomy):
        rebuilt = taxonomy_from_dict(taxonomy_to_dict(toy_taxonomy))
        assert len(rebuilt) == len(toy_taxonomy)
        assert rebuilt.num_levels == toy_taxonomy.num_levels
        assert rebuilt.num_trees == toy_taxonomy.num_trees
        assert ({n.name for n in rebuilt}
                == {n.name for n in toy_taxonomy})

    def test_round_trip_preserves_parenthood(self, toy_taxonomy):
        rebuilt = taxonomy_from_dict(taxonomy_to_dict(toy_taxonomy))
        for node in rebuilt:
            original = toy_taxonomy.node(node.node_id)
            assert node.parent_id == original.parent_id
            assert node.level == original.level

    def test_round_trip_preserves_metadata(self, toy_taxonomy):
        rebuilt = taxonomy_from_dict(taxonomy_to_dict(toy_taxonomy))
        assert rebuilt.name == toy_taxonomy.name
        assert rebuilt.domain is toy_taxonomy.domain
        assert rebuilt.concept_noun == toy_taxonomy.concept_noun

    def test_file_round_trip(self, toy_taxonomy, tmp_path):
        path = tmp_path / "toy.json"
        save_json(toy_taxonomy, path)
        rebuilt = load_json(path)
        assert len(rebuilt) == len(toy_taxonomy)

    def test_malformed_payload_rejected(self):
        with pytest.raises(TaxonomyError):
            taxonomy_from_dict({"name": "x"})

    def test_unknown_domain_rejected(self, toy_taxonomy):
        payload = taxonomy_to_dict(toy_taxonomy)
        payload["domain"] = "astrology"
        with pytest.raises(TaxonomyError):
            taxonomy_from_dict(payload)

    def test_dangling_parent_rejected(self, toy_taxonomy):
        payload = taxonomy_to_dict(toy_taxonomy)
        payload["nodes"][3]["parent"] = "ghost"
        with pytest.raises(TaxonomyError):
            taxonomy_from_dict(payload)


class TestEdgeTsv:
    def test_tsv_round_trip(self, toy_taxonomy, tmp_path):
        path = tmp_path / "toy.tsv"
        save_edge_tsv(toy_taxonomy, path)
        rebuilt = load_edge_tsv(path, "Toy", Domain.SHOPPING,
                                concept_noun="products")
        assert len(rebuilt) == len(toy_taxonomy)
        assert rebuilt.level_widths() == toy_taxonomy.level_widths()

    def test_bad_column_count_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tonly-two-fields\n")
        with pytest.raises(TaxonomyError):
            load_edge_tsv(path, "t", Domain.GENERAL)

    def test_blank_lines_skipped(self, toy_taxonomy, tmp_path):
        path = tmp_path / "toy.tsv"
        save_edge_tsv(toy_taxonomy, path)
        path.write_text(path.read_text() + "\n\n")
        rebuilt = load_edge_tsv(path, "Toy", Domain.SHOPPING)
        assert len(rebuilt) == len(toy_taxonomy)


class TestStatistics:
    def test_statistics_match_structure(self, toy_taxonomy):
        stats = compute_statistics(toy_taxonomy)
        assert stats.num_entities == 10
        assert stats.num_levels == 3
        assert stats.num_trees == 2
        assert stats.level_widths == (2, 3, 5)

    def test_widths_label_format(self, toy_taxonomy):
        assert compute_statistics(toy_taxonomy).widths_label == "2-3-5"

    def test_as_row_keys(self, toy_taxonomy):
        row = compute_statistics(toy_taxonomy).as_row()
        assert set(row) == {"domain", "taxonomy", "entities", "levels",
                            "trees", "widths"}

    def test_branching_factors(self, toy_taxonomy):
        factors = branching_factors(toy_taxonomy)
        assert factors == [3 / 2, 5 / 3]
